//! Timing-driven simulated-annealing placement.
//!
//! Blocks may only occupy fabric slots of their own kind (PEs on PE slots,
//! SMBs on SMB slots, CLBs on CLB slots). The cost function is
//! criticality-weighted half-perimeter wirelength (HPWL): every net's HPWL is
//! scaled by a weight derived from its traffic (`values_per_activation`), so
//! the annealer pulls the heavily used nets — the ones that set the routed
//! critical path — tighter than one-shot control nets.
//!
//! The engine is incremental: per-net bounding boxes are cached and a move
//! only re-evaluates the nets incident to the two swapped blocks (the
//! [`fpsa_mapper::NetIncidence`] index), so the cost of one move is
//! proportional to local fanout instead of netlist size. The cooling schedule
//! is adaptive in the VPR style — the cooling factor follows the measured
//! acceptance rate — and the whole trajectory is reported in a
//! [`PlacementQuality`] attached to the result.

use fpsa_arch::{BlockKind, Fabric, FabricDimensions};
use fpsa_mapper::{Net, Netlist, NetlistBlock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Placer tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacerConfig {
    /// Random seed (placement is deterministic for a given seed).
    pub seed: u64,
    /// Moves attempted per temperature step.
    pub moves_per_temperature: usize,
    /// Upper bound on temperature steps (the adaptive schedule usually
    /// freezes earlier).
    pub max_temperature_steps: usize,
    /// Initial temperature as a fraction of the initial cost.
    pub initial_temperature_fraction: f64,
    /// Weight of net criticality in the cost: a net carrying the peak traffic
    /// counts `1 + timing_weight` times its HPWL, a trafficless net once.
    pub timing_weight: f64,
}

impl PlacerConfig {
    /// A quality-oriented configuration (used for final results). The
    /// incremental engine's cheaper moves buy a larger budget per step than
    /// the seed annealer could afford in the same wall-clock.
    pub fn quality() -> Self {
        PlacerConfig {
            seed: 0xF95A,
            moves_per_temperature: 3000,
            max_temperature_steps: 60,
            initial_temperature_fraction: 0.05,
            timing_weight: 0.5,
        }
    }

    /// A fast configuration for tests and large netlists.
    pub fn fast() -> Self {
        PlacerConfig {
            seed: 0xF95A,
            moves_per_temperature: 300,
            max_temperature_steps: 20,
            initial_temperature_fraction: 0.05,
            timing_weight: 0.5,
        }
    }
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// One temperature step of the annealing trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealStep {
    /// Temperature during the step.
    pub temperature: f64,
    /// Fraction of attempted moves that were accepted, 0..=1.
    pub acceptance_rate: f64,
    /// Criticality-weighted cost at the end of the step.
    pub weighted_cost: f64,
}

/// The annealer's self-report: how the placement was reached.
///
/// Everything in here is deterministic for a given seed (no wall-clock), so
/// two placements of the same netlist compare equal field by field.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlacementQuality {
    /// Unweighted HPWL of the initial (pre-annealing) assignment.
    pub initial_wirelength: f64,
    /// Unweighted HPWL of the final placement.
    pub final_wirelength: f64,
    /// Total moves evaluated.
    pub moves_evaluated: u64,
    /// Total moves accepted.
    pub moves_accepted: u64,
    /// Whether the initial assignment was seeded from a prior placement
    /// (see [`WarmStart`]) instead of the cold slot-order assignment.
    pub warm_started: bool,
    /// Number of blocks that took their seed position (0 for a cold start).
    pub seeded_blocks: usize,
    /// Cost/acceptance trajectory, one entry per temperature step.
    pub steps: Vec<AnnealStep>,
}

impl PlacementQuality {
    /// Overall acceptance rate across the whole anneal, 0..=1.
    pub fn acceptance_rate(&self) -> f64 {
        if self.moves_evaluated == 0 {
            return 0.0;
        }
        self.moves_accepted as f64 / self.moves_evaluated as f64
    }

    /// Relative HPWL improvement over the initial assignment, 0..=1.
    pub fn improvement(&self) -> f64 {
        if self.initial_wirelength <= 0.0 {
            return 0.0;
        }
        1.0 - self.final_wirelength / self.initial_wirelength
    }
}

/// A placement: the slot coordinate of every netlist block, plus the quality
/// report of the anneal that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Fabric grid dimensions.
    pub dims: FabricDimensions,
    positions: Vec<(usize, usize)>,
    wirelength: f64,
    quality: PlacementQuality,
}

impl Placement {
    /// Slot coordinates per block (indexed by netlist block index).
    pub fn positions(&self) -> &[(usize, usize)] {
        &self.positions
    }

    /// The coordinate of one block.
    pub fn position(&self, block: usize) -> (usize, usize) {
        self.positions[block]
    }

    /// Total (unweighted) half-perimeter wirelength of the placement.
    pub fn wirelength(&self) -> f64 {
        self.wirelength
    }

    /// The annealing quality report.
    pub fn quality(&self) -> &PlacementQuality {
        &self.quality
    }
}

/// A prior placement offered to the annealer as a starting point.
///
/// Two flavours exist:
///
/// * **Near-miss seed** ([`WarmStart::from_placement`]): positions are
///   matched to the new netlist's blocks *by block identity*, so a donor
///   placement of an incrementally edited model seeds every surviving block;
///   new or moved blocks fall back to the cold assignment and a short,
///   low-temperature anneal polishes the result.
/// * **Exact seed** ([`WarmStart::exact_positions`]): positions are applied
///   *by block index* — callers assert the netlist is identical to the
///   donor's (same compile key) — and annealing is skipped entirely, so
///   deterministic routing re-derives the donor's physical design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStart {
    blocks: Vec<NetlistBlock>,
    positions: Vec<(usize, usize)>,
    exact: bool,
}

impl WarmStart {
    /// Capture a donor placement for identity-matched warm starting.
    pub fn from_placement(netlist: &Netlist, placement: &Placement) -> Self {
        WarmStart {
            blocks: netlist.blocks().to_vec(),
            positions: placement.positions().to_vec(),
            exact: false,
        }
    }

    /// An exact seed: `positions[i]` is block `i`'s final slot. Only valid
    /// when the netlist being placed is identical to the donor's.
    pub fn exact_positions(positions: Vec<(usize, usize)>) -> Self {
        WarmStart {
            blocks: Vec::new(),
            positions,
            exact: true,
        }
    }

    /// Whether this seed claims to be the donor's exact final placement.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// The seed positions, in donor block order.
    pub fn positions(&self) -> &[(usize, usize)] {
        &self.positions
    }

    /// The donor's blocks (empty for an exact positional seed).
    pub fn blocks(&self) -> &[NetlistBlock] {
        &self.blocks
    }
}

/// Cached bounding box of one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NetBox {
    min_r: usize,
    max_r: usize,
    min_c: usize,
    max_c: usize,
}

impl NetBox {
    fn of(positions: &[(usize, usize)], net: &Net) -> Self {
        let (mut min_r, mut max_r, mut min_c, mut max_c) = {
            let (r, c) = positions[net.source];
            (r, r, c, c)
        };
        for &s in &net.sinks {
            let (r, c) = positions[s];
            min_r = min_r.min(r);
            max_r = max_r.max(r);
            min_c = min_c.min(c);
            max_c = max_c.max(c);
        }
        NetBox {
            min_r,
            max_r,
            min_c,
            max_c,
        }
    }

    fn hpwl(&self) -> f64 {
        (self.max_r - self.min_r) as f64 + (self.max_c - self.min_c) as f64
    }
}

/// Mutable annealing state shared by the cooling sweeps and the final
/// zero-temperature quench.
struct AnnealState<'a> {
    nets: &'a [Net],
    incidence: &'a fpsa_mapper::NetIncidence,
    weights: &'a [f64],
    positions: &'a mut Vec<(usize, usize)>,
    boxes: &'a mut Vec<NetBox>,
    weighted_cost: &'a mut f64,
    swappable: &'a [&'a Vec<usize>],
    /// Blocks eligible for swapping (their kind has at least two members),
    /// so move proposals are proportional to block counts per kind.
    movable: &'a [usize],
    /// Block index → index into `swappable` of its kind group.
    group_of: &'a [usize],
    /// Stamp-based dedup of affected nets: O(1) per net instead of
    /// sort+dedup per move.
    stamp: Vec<u64>,
    move_id: u64,
    affected: Vec<usize>,
    new_boxes: Vec<NetBox>,
}

impl AnnealState<'_> {
    /// One sweep of up to `moves` attempted swaps at `temperature`
    /// (0 = pure greedy descent). Records the step into `quality` and
    /// returns its acceptance rate.
    fn sweep(
        &mut self,
        temperature: f64,
        moves: usize,
        rng: &mut StdRng,
        quality: &mut PlacementQuality,
    ) -> f64 {
        let mut attempted = 0u64;
        let mut accepted = 0u64;
        for _ in 0..moves {
            // Proposals are proportional to block counts per kind: `a` is a
            // uniformly random movable block, `b` a partner of its kind —
            // either uniformly random, or (for a fraction of moves) the
            // sampled partner closest to the centroid of `a`'s nets, which
            // steers the anneal instead of waiting for lucky swaps.
            let a = self.movable[rng.gen_range(0..self.movable.len())];
            let members = self.swappable[self.group_of[a]];
            let guided = !self.incidence.nets_of(a).is_empty() && rng.gen::<f64>() < 0.2;
            let b = if guided {
                let nets_of_a = self.incidence.nets_of(a);
                let mut ideal_r = 0.0;
                let mut ideal_c = 0.0;
                for &n in nets_of_a {
                    let bx = &self.boxes[n];
                    ideal_r += (bx.min_r + bx.max_r) as f64 / 2.0;
                    ideal_c += (bx.min_c + bx.max_c) as f64 / 2.0;
                }
                ideal_r /= nets_of_a.len() as f64;
                ideal_c /= nets_of_a.len() as f64;
                let mut best = a;
                let mut best_distance = f64::INFINITY;
                for _ in 0..8 {
                    let candidate = members[rng.gen_range(0..members.len())];
                    if candidate == a {
                        continue;
                    }
                    let (r, c) = self.positions[candidate];
                    let distance = (r as f64 - ideal_r).abs() + (c as f64 - ideal_c).abs();
                    if distance < best_distance {
                        best_distance = distance;
                        best = candidate;
                    }
                }
                best
            } else {
                members[rng.gen_range(0..members.len())]
            };
            if a == b {
                continue;
            }
            attempted += 1;
            self.move_id += 1;

            self.affected.clear();
            for &n in self
                .incidence
                .nets_of(a)
                .iter()
                .chain(self.incidence.nets_of(b))
            {
                if self.stamp[n] != self.move_id {
                    self.stamp[n] = self.move_id;
                    self.affected.push(n);
                }
            }

            self.positions.swap(a, b);
            self.new_boxes.clear();
            let mut delta = 0.0;
            for &n in &self.affected {
                let nb = NetBox::of(self.positions, &self.nets[n]);
                delta += self.weights[n] * (nb.hpwl() - self.boxes[n].hpwl());
                self.new_boxes.push(nb);
            }

            let accept = delta <= 0.0
                || (temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp());
            if accept {
                accepted += 1;
                *self.weighted_cost += delta;
                for (&n, &nb) in self.affected.iter().zip(&self.new_boxes) {
                    self.boxes[n] = nb;
                }
            } else {
                self.positions.swap(a, b);
            }
        }

        let acceptance_rate = if attempted == 0 {
            0.0
        } else {
            accepted as f64 / attempted as f64
        };
        quality.moves_evaluated += attempted;
        quality.moves_accepted += accepted;
        quality.steps.push(AnnealStep {
            temperature,
            acceptance_rate,
            weighted_cost: *self.weighted_cost,
        });
        acceptance_rate
    }
}

/// The simulated-annealing placer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placer {
    config: PlacerConfig,
}

impl Placer {
    /// Create a placer.
    pub fn new(config: PlacerConfig) -> Self {
        Placer { config }
    }

    /// Place a netlist onto a fabric from a cold start.
    ///
    /// # Panics
    ///
    /// Panics if the fabric has fewer slots of some kind than the netlist
    /// needs.
    pub fn place(&self, netlist: &Netlist, fabric: &Fabric) -> Placement {
        self.place_seeded(netlist, fabric, None)
    }

    /// Place a netlist onto a fabric, optionally seeding the annealer from a
    /// prior placement.
    ///
    /// With a near-miss [`WarmStart`], blocks present in the donor keep
    /// their donor slots, the rest take the cold assignment, and a short
    /// low-temperature anneal (1/8th of the cold step budget at 1/50th of
    /// the cold starting temperature) plus the usual greedy quench polishes
    /// the seams; the best placement seen is the one returned, so a warm
    /// start never ends worse than its seed. With an exact seed covering
    /// every block, annealing is skipped entirely and the seed *is* the
    /// placement.
    ///
    /// # Panics
    ///
    /// Panics if the fabric has fewer slots of some kind than the netlist
    /// needs.
    pub fn place_seeded(
        &self,
        netlist: &Netlist,
        fabric: &Fabric,
        warm: Option<&WarmStart>,
    ) -> Placement {
        let dims = fabric.dims;
        let kind_of = |b: &NetlistBlock| match b {
            NetlistBlock::Pe { .. } => BlockKind::Pe,
            NetlistBlock::Smb { .. } => BlockKind::Smb,
            NetlistBlock::Clb { .. } => BlockKind::Clb,
        };

        // Seed pass: adopt donor positions that are legal on this fabric
        // (inside the grid, on a real slot, not claimed twice). Near-miss
        // seeds match donor blocks to this netlist's blocks by identity;
        // exact seeds apply positions by index.
        const UNPLACED: (usize, usize) = (usize::MAX, usize::MAX);
        let mut positions: Vec<(usize, usize)> = vec![UNPLACED; netlist.len()];
        let mut taken: std::collections::HashSet<(usize, usize)> = Default::default();
        let mut seeded_blocks = 0usize;
        if let Some(warm) = warm {
            let slot_coords: std::collections::HashSet<(usize, usize)> = BlockKind::all()
                .iter()
                .flat_map(|&k| fabric.slots_of(k))
                .map(|s| dims.coord(s))
                .collect();
            let mut claim = |i: usize,
                             pos: (usize, usize),
                             positions: &mut Vec<(usize, usize)>,
                             seeded: &mut usize| {
                if slot_coords.contains(&pos) && taken.insert(pos) {
                    positions[i] = pos;
                    *seeded += 1;
                }
            };
            if warm.exact && warm.blocks.is_empty() {
                if warm.positions.len() == netlist.len() {
                    for (i, &pos) in warm.positions.iter().enumerate() {
                        claim(i, pos, &mut positions, &mut seeded_blocks);
                    }
                }
            } else {
                let donor: std::collections::HashMap<&NetlistBlock, (usize, usize)> = warm
                    .blocks
                    .iter()
                    .zip(warm.positions.iter().copied())
                    .collect();
                for (i, block) in netlist.blocks().iter().enumerate() {
                    if let Some(&pos) = donor.get(block) {
                        claim(i, pos, &mut positions, &mut seeded_blocks);
                    }
                }
            }
        }

        // Cold assignment for whatever the seed did not cover: blocks of
        // each kind take the remaining slots of that kind in index order;
        // SMB/CLB overflow falls back to spare PE slots (physically those
        // slots would be configured as the needed kind).
        let mut free: std::collections::HashMap<BlockKind, Vec<usize>> = BlockKind::all()
            .iter()
            .map(|&k| {
                let slots: Vec<usize> = fabric
                    .slots_of(k)
                    .into_iter()
                    .filter(|&s| !taken.contains(&dims.coord(s)))
                    .rev()
                    .collect();
                (k, slots)
            })
            .collect();
        for (i, block) in netlist.blocks().iter().enumerate() {
            if positions[i] != UNPLACED {
                continue;
            }
            let kind = kind_of(block);
            let slot = free
                .get_mut(&kind)
                .and_then(Vec::pop)
                .or_else(|| free.get_mut(&BlockKind::Pe).and_then(Vec::pop))
                .or_else(|| free.get_mut(&BlockKind::Smb).and_then(Vec::pop))
                .or_else(|| free.get_mut(&BlockKind::Clb).and_then(Vec::pop))
                .expect("fabric must have at least as many slots as the netlist has blocks");
            positions[i] = dims.coord(slot);
        }

        // The net→block incidence index drives incremental move evaluation.
        let incidence = netlist.incidence();
        let nets = netlist.nets();

        // Criticality weights: nets carrying more values per activation set
        // the routed critical path, so their wirelength counts for more.
        let max_traffic = nets
            .iter()
            .map(|n| n.values_per_activation)
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let weights: Vec<f64> = nets
            .iter()
            .map(|n| {
                1.0 + self.config.timing_weight * (n.values_per_activation as f64 / max_traffic)
            })
            .collect();

        // Cached per-net bounding boxes and the weighted cost they imply.
        let mut boxes: Vec<NetBox> = nets.iter().map(|n| NetBox::of(&positions, n)).collect();
        let mut weighted_cost: f64 = boxes.iter().zip(&weights).map(|(b, w)| w * b.hpwl()).sum();
        let initial_wirelength: f64 = boxes.iter().map(NetBox::hpwl).sum();

        // Group block indices by kind so that swaps stay kind-compatible.
        // A BTreeMap keeps the iteration order deterministic, which keeps the
        // whole placement deterministic for a given seed.
        let mut by_kind: std::collections::BTreeMap<BlockKind, Vec<usize>> = Default::default();
        for (i, b) in netlist.blocks().iter().enumerate() {
            by_kind.entry(kind_of(b)).or_default().push(i);
        }
        let swappable: Vec<&Vec<usize>> = by_kind.values().filter(|v| v.len() >= 2).collect();
        let mut group_of = vec![usize::MAX; netlist.len()];
        let mut movable: Vec<usize> = Vec::new();
        for (g, members) in swappable.iter().enumerate() {
            for &block in members.iter() {
                group_of[block] = g;
                movable.push(block);
            }
        }
        movable.sort_unstable();

        // Warm-start schedule: an exact full seed needs no moves at all; a
        // near-miss seed is already near the donor's optimum, so the anneal
        // only has to polish the seams — 1/8th of the cold step budget at
        // 1/50th of the cold starting temperature (hot enough to shake the
        // re-assigned blocks loose, cold enough not to scramble the seed).
        let warm_started = seeded_blocks > 0;
        let exact_seed = warm_started
            && warm.map(|w| w.exact).unwrap_or(false)
            && seeded_blocks == netlist.len();
        let (max_steps, temperature_fraction) = if exact_seed {
            (0, 0.0)
        } else if warm_started {
            (
                (self.config.max_temperature_steps / 8).max(2),
                self.config.initial_temperature_fraction * 0.02,
            )
        } else {
            (
                self.config.max_temperature_steps,
                self.config.initial_temperature_fraction,
            )
        };

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut temperature = (weighted_cost * temperature_fraction).max(1.0);
        let mut quality = PlacementQuality {
            initial_wirelength,
            warm_started,
            seeded_blocks,
            ..Default::default()
        };

        // A warm-started anneal must never hand back something worse than
        // its seed: the low-temperature schedule still accepts uphill moves,
        // so track the best placement seen per sweep (by unweighted HPWL)
        // and restore it if the final state regressed. Cold anneals keep
        // their exact historical behavior.
        let mut best: Option<(f64, Vec<(usize, usize)>)> =
            (warm_started && !exact_seed).then(|| (initial_wirelength, positions.clone()));

        let mut state = AnnealState {
            nets,
            incidence: &incidence,
            weights: &weights,
            positions: &mut positions,
            boxes: &mut boxes,
            weighted_cost: &mut weighted_cost,
            swappable: &swappable,
            movable: &movable,
            group_of: &group_of,
            stamp: vec![0; nets.len()],
            move_id: 0,
            affected: Vec::new(),
            new_boxes: Vec::new(),
        };

        if !movable.is_empty() && max_steps > 0 {
            for _ in 0..max_steps {
                let acceptance_rate = state.sweep(
                    temperature,
                    self.config.moves_per_temperature,
                    &mut rng,
                    &mut quality,
                );
                if let Some((best_len, best_pos)) = best.as_mut() {
                    let len: f64 = state.boxes.iter().map(NetBox::hpwl).sum();
                    if len < *best_len {
                        *best_len = len;
                        best_pos.clone_from(state.positions);
                    }
                }

                // Adaptive cooling (VPR): cool slowly through the productive
                // mid-range of acceptance rates, fast outside it.
                temperature *= match acceptance_rate {
                    r if r > 0.96 => 0.5,
                    r if r > 0.80 => 0.9,
                    r if r > 0.15 => 0.95,
                    _ => 0.8,
                };
                // Freeze-out: once the temperature is far below the typical
                // per-net cost, no hill climb can be accepted any more.
                if temperature < 0.005 * *state.weighted_cost / nets.len().max(1) as f64 {
                    break;
                }
            }
            // Zero-temperature quench: pure-greedy descent sweeps squeeze
            // out the improving moves the frozen schedule left, repeated
            // until a whole sweep stops finding any.
            for _ in 0..8 {
                let before = *state.weighted_cost;
                state.sweep(
                    0.0,
                    self.config.moves_per_temperature,
                    &mut rng,
                    &mut quality,
                );
                if *state.weighted_cost >= before - 1e-9 {
                    break;
                }
                if let Some((best_len, best_pos)) = best.as_mut() {
                    let len: f64 = state.boxes.iter().map(NetBox::hpwl).sum();
                    if len < *best_len {
                        *best_len = len;
                        best_pos.clone_from(state.positions);
                    }
                }
            }
        }

        // Report the exact final wirelength (unweighted, recomputed from
        // scratch so float drift from incremental updates cannot leak out).
        let mut final_wirelength: f64 = nets.iter().map(|n| NetBox::of(&positions, n).hpwl()).sum();
        if let Some((_, best_pos)) = best {
            let best_len: f64 = nets.iter().map(|n| NetBox::of(&best_pos, n).hpwl()).sum();
            if best_len < final_wirelength {
                positions = best_pos;
                final_wirelength = best_len;
            }
        }
        quality.final_wirelength = final_wirelength;

        Placement {
            dims,
            positions,
            wirelength: final_wirelength,
            quality,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_arch::ArchitectureConfig;
    use fpsa_mapper::{AllocationPolicy, Mapper};
    use fpsa_nn::zoo;
    use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};

    fn lenet_netlist() -> Netlist {
        let graph = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(&zoo::lenet())
            .unwrap();
        Mapper::new(64, AllocationPolicy::DuplicationDegree(1))
            .map(&graph)
            .netlist
    }

    #[test]
    fn every_block_gets_a_unique_slot() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let mut seen: Vec<(usize, usize)> = placement.positions().to_vec();
        let before = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(before, seen.len(), "blocks must not share slots");
        assert_eq!(before, netlist.len());
    }

    #[test]
    fn annealing_does_not_increase_wirelength_vs_initial() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let mut no_anneal = PlacerConfig::fast();
        no_anneal.max_temperature_steps = 0;
        let initial = Placer::new(no_anneal).place(&netlist, &fabric);
        let annealed = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        assert!(
            annealed.wirelength() <= initial.wirelength(),
            "annealed {} vs initial {}",
            annealed.wirelength(),
            initial.wirelength()
        );
        // The quality report agrees with the two measurements.
        assert_eq!(annealed.quality().initial_wirelength, initial.wirelength());
        assert_eq!(annealed.quality().final_wirelength, annealed.wirelength());
        assert!(annealed.quality().improvement() >= 0.0);
    }

    #[test]
    fn placement_is_deterministic_for_a_seed() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let a = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let b = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        assert_eq!(a, b);
    }

    #[test]
    fn positions_stay_inside_the_grid() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        for &(r, c) in placement.positions() {
            assert!(r < placement.dims.rows);
            assert!(c < placement.dims.cols);
        }
    }

    #[test]
    fn quality_records_the_annealing_trajectory() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let quality = placement.quality();
        assert!(!quality.steps.is_empty());
        // Cooling steps plus the final zero-temperature quench sweeps.
        assert!(quality.steps.len() <= PlacerConfig::fast().max_temperature_steps + 8);
        assert_eq!(
            quality.steps.last().unwrap().temperature,
            0.0,
            "the trajectory ends with the greedy quench"
        );
        for step in &quality.steps {
            assert!(step.temperature >= 0.0);
            assert!((0.0..=1.0).contains(&step.acceptance_rate));
            assert!(step.weighted_cost >= 0.0);
        }
        // Temperatures never rise; they strictly decrease while positive
        // (the quench sweeps all sit at zero).
        for pair in quality.steps.windows(2) {
            assert!(pair[1].temperature <= pair[0].temperature);
            if pair[1].temperature > 0.0 {
                assert!(pair[1].temperature < pair[0].temperature);
            }
        }
        // The trajectory ends no higher than it started.
        assert!(
            quality.steps.last().unwrap().weighted_cost
                <= quality.steps.first().unwrap().weighted_cost
        );
        assert!(quality.moves_evaluated > 0);
        assert!((0.0..=1.0).contains(&quality.acceptance_rate()));
    }

    #[test]
    fn exact_seed_reproduces_the_donor_placement_with_zero_moves() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let placer = Placer::new(PlacerConfig::fast());
        let donor = placer.place(&netlist, &fabric);
        let seed = WarmStart::exact_positions(donor.positions().to_vec());
        let seeded = placer.place_seeded(&netlist, &fabric, Some(&seed));
        assert_eq!(seeded.positions(), donor.positions());
        assert_eq!(seeded.wirelength(), donor.wirelength());
        assert_eq!(seeded.quality().moves_evaluated, 0);
        assert!(seeded.quality().warm_started);
        assert_eq!(seeded.quality().seeded_blocks, netlist.len());
    }

    #[test]
    fn warm_start_is_legal_and_cheaper_than_cold() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let placer = Placer::new(PlacerConfig::fast());
        let cold = placer.place(&netlist, &fabric);
        let seed = WarmStart::from_placement(&netlist, &cold);
        let warm = placer.place_seeded(&netlist, &fabric, Some(&seed));
        // Legal: every block on a unique in-bounds slot.
        let mut seen = warm.positions().to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), netlist.len());
        for &(r, c) in warm.positions() {
            assert!(r < warm.dims.rows && c < warm.dims.cols);
        }
        // Cheaper: the cut schedule evaluates at most half the cold moves,
        // and the near-optimal seed cannot lose wirelength.
        assert!(warm.quality().warm_started);
        assert!(
            warm.quality().moves_evaluated <= cold.quality().moves_evaluated / 2,
            "warm {} vs cold {} moves",
            warm.quality().moves_evaluated,
            cold.quality().moves_evaluated
        );
        assert!(warm.wirelength() <= cold.wirelength());
    }

    #[test]
    fn warm_start_from_an_edited_netlist_seeds_surviving_blocks() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len() + 4);
        let placer = Placer::new(PlacerConfig::fast());
        let donor = placer.place(&netlist, &fabric);
        // "Edit" the model: append four fresh PE blocks the donor never saw.
        let mut blocks = netlist.blocks().to_vec();
        for i in 0..4 {
            blocks.push(NetlistBlock::Pe {
                group: 10_000 + i,
                duplicate: 0,
            });
        }
        let edited = Netlist::from_parts("edited", blocks, netlist.nets().to_vec());
        let seed = WarmStart::from_placement(&netlist, &donor);
        let warm = placer.place_seeded(&edited, &fabric, Some(&seed));
        assert_eq!(warm.quality().seeded_blocks, netlist.len());
        let mut seen = warm.positions().to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), edited.len(), "no slot is claimed twice");
    }

    #[test]
    fn quality_settings_match_or_beat_fast_settings() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let fast = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let quality = Placer::new(PlacerConfig::quality()).place(&netlist, &fabric);
        assert!(
            quality.wirelength() <= fast.wirelength() * 1.05,
            "quality {} should not lose to fast {}",
            quality.wirelength(),
            fast.wirelength()
        );
    }

    #[test]
    fn a_chain_of_blocks_reaches_minimal_wirelength() {
        use fpsa_mapper::Net;
        // Four PEs in a chain on a fabric with >= 4 PE slots: the optimal
        // placement puts neighbours on adjacent slots, HPWL = 3.
        let blocks = (0..4)
            .map(|i| NetlistBlock::Pe {
                group: i,
                duplicate: 0,
            })
            .collect();
        let nets = (0..3)
            .map(|i| Net {
                source: i,
                sinks: vec![i + 1],
                values_per_activation: 8,
            })
            .collect();
        let netlist = Netlist::from_parts("chain", blocks, nets);
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), 4);
        let placement = Placer::new(PlacerConfig::quality()).place(&netlist, &fabric);
        assert_eq!(
            placement.wirelength(),
            3.0,
            "the annealer should find the optimal chain embedding"
        );
    }

    #[test]
    fn timing_weight_pulls_critical_nets_tighter() {
        use fpsa_mapper::Net;
        // Two nets from one hub: one carries 64 values per activation, the
        // other 1. Under a strong timing weight the heavy net's HPWL must not
        // exceed the light net's.
        let blocks = (0..12)
            .map(|i| NetlistBlock::Pe {
                group: i,
                duplicate: 0,
            })
            .collect();
        let mut nets = vec![
            Net {
                source: 0,
                sinks: vec![1],
                values_per_activation: 64,
            },
            Net {
                source: 0,
                sinks: vec![2],
                values_per_activation: 1,
            },
        ];
        // Background nets keep the anneal non-trivial.
        for i in 3..11 {
            nets.push(Net {
                source: i,
                sinks: vec![i + 1],
                values_per_activation: 4,
            });
        }
        let netlist = Netlist::from_parts("weighted", blocks, nets);
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let mut config = PlacerConfig::quality();
        config.timing_weight = 4.0;
        let placement = Placer::new(config).place(&netlist, &fabric);
        let dist = |a: usize, b: usize| {
            placement
                .dims
                .manhattan(placement.position(a), placement.position(b))
        };
        assert!(
            dist(0, 1) <= dist(0, 2),
            "critical net spans {} but non-critical spans {}",
            dist(0, 1),
            dist(0, 2)
        );
    }
}
