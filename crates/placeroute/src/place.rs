//! Simulated-annealing placement.
//!
//! Blocks may only occupy fabric slots of their own kind (PEs on PE slots,
//! SMBs on SMB slots, CLBs on CLB slots). The cost function is the classic
//! half-perimeter wirelength (HPWL) over all nets; moves swap two blocks of
//! the same kind or move a block to a free compatible slot, and are accepted
//! with the Metropolis criterion under a geometric cooling schedule.

use fpsa_arch::{BlockKind, Fabric, FabricDimensions};
use fpsa_mapper::{Netlist, NetlistBlock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Placer tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacerConfig {
    /// Random seed (placement is deterministic for a given seed).
    pub seed: u64,
    /// Moves attempted per temperature step.
    pub moves_per_temperature: usize,
    /// Number of temperature steps.
    pub temperature_steps: usize,
    /// Initial temperature as a fraction of the initial cost.
    pub initial_temperature_fraction: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
}

impl PlacerConfig {
    /// A quality-oriented configuration (used for final results).
    pub fn quality() -> Self {
        PlacerConfig {
            seed: 0xF95A,
            moves_per_temperature: 2000,
            temperature_steps: 60,
            initial_temperature_fraction: 0.05,
            cooling: 0.9,
        }
    }

    /// A fast configuration for tests and large netlists.
    pub fn fast() -> Self {
        PlacerConfig {
            seed: 0xF95A,
            moves_per_temperature: 300,
            temperature_steps: 20,
            initial_temperature_fraction: 0.05,
            cooling: 0.85,
        }
    }
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// A placement: the slot coordinate of every netlist block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Fabric grid dimensions.
    pub dims: FabricDimensions,
    positions: Vec<(usize, usize)>,
    cost: f64,
}

impl Placement {
    /// Slot coordinates per block (indexed by netlist block index).
    pub fn positions(&self) -> &[(usize, usize)] {
        &self.positions
    }

    /// The coordinate of one block.
    pub fn position(&self, block: usize) -> (usize, usize) {
        self.positions[block]
    }

    /// Total half-perimeter wirelength of the placement.
    pub fn wirelength(&self) -> f64 {
        self.cost
    }
}

/// The simulated-annealing placer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placer {
    config: PlacerConfig,
}

impl Placer {
    /// Create a placer.
    pub fn new(config: PlacerConfig) -> Self {
        Placer { config }
    }

    /// Place a netlist onto a fabric.
    ///
    /// # Panics
    ///
    /// Panics if the fabric has fewer slots of some kind than the netlist
    /// needs.
    pub fn place(&self, netlist: &Netlist, fabric: &Fabric) -> Placement {
        let dims = fabric.dims;
        let kind_of = |b: &NetlistBlock| match b {
            NetlistBlock::Pe { .. } => BlockKind::Pe,
            NetlistBlock::Smb { .. } => BlockKind::Smb,
            NetlistBlock::Clb { .. } => BlockKind::Clb,
        };

        // Initial assignment: blocks of each kind take the slots of that kind
        // in index order; SMB/CLB overflow falls back to spare PE slots
        // (physically those slots would be configured as the needed kind).
        let mut free: std::collections::HashMap<BlockKind, Vec<usize>> = BlockKind::all()
            .iter()
            .map(|&k| (k, fabric.slots_of(k).into_iter().rev().collect()))
            .collect();
        let mut positions: Vec<(usize, usize)> = Vec::with_capacity(netlist.len());
        for block in netlist.blocks() {
            let kind = kind_of(block);
            let slot = free
                .get_mut(&kind)
                .and_then(Vec::pop)
                .or_else(|| free.get_mut(&BlockKind::Pe).and_then(Vec::pop))
                .or_else(|| free.get_mut(&BlockKind::Smb).and_then(Vec::pop))
                .or_else(|| free.get_mut(&BlockKind::Clb).and_then(Vec::pop))
                .expect("fabric must have at least as many slots as the netlist has blocks");
            positions.push(dims.coord(slot));
        }

        // Nets incident to each block, for incremental cost updates.
        let mut nets_of_block: Vec<Vec<usize>> = vec![Vec::new(); netlist.len()];
        for (i, net) in netlist.nets().iter().enumerate() {
            nets_of_block[net.source].push(i);
            for &s in &net.sinks {
                nets_of_block[s].push(i);
            }
        }

        let hpwl = |positions: &[(usize, usize)], net: &fpsa_mapper::Net| -> f64 {
            let mut min_r = usize::MAX;
            let mut max_r = 0usize;
            let mut min_c = usize::MAX;
            let mut max_c = 0usize;
            for &b in std::iter::once(&net.source).chain(net.sinks.iter()) {
                let (r, c) = positions[b];
                min_r = min_r.min(r);
                max_r = max_r.max(r);
                min_c = min_c.min(c);
                max_c = max_c.max(c);
            }
            (max_r - min_r) as f64 + (max_c - min_c) as f64
        };
        let total_cost = |positions: &[(usize, usize)]| -> f64 {
            netlist.nets().iter().map(|n| hpwl(positions, n)).sum()
        };

        let mut cost = total_cost(&positions);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut temperature = (cost * self.config.initial_temperature_fraction).max(1.0);

        // Group block indices by kind so that swaps stay kind-compatible.
        // A BTreeMap keeps the iteration order deterministic, which keeps the
        // whole placement deterministic for a given seed.
        let mut by_kind: std::collections::BTreeMap<BlockKind, Vec<usize>> = Default::default();
        for (i, b) in netlist.blocks().iter().enumerate() {
            by_kind.entry(kind_of(b)).or_default().push(i);
        }

        for _ in 0..self.config.temperature_steps {
            for _ in 0..self.config.moves_per_temperature {
                // Pick a kind with at least two blocks and swap two of them.
                let kinds: Vec<&BlockKind> = by_kind
                    .iter()
                    .filter(|(_, v)| v.len() >= 2)
                    .map(|(k, _)| k)
                    .collect();
                if kinds.is_empty() {
                    break;
                }
                let kind = *kinds[rng.gen_range(0..kinds.len())];
                let members = &by_kind[&kind];
                let a = members[rng.gen_range(0..members.len())];
                let b = members[rng.gen_range(0..members.len())];
                if a == b {
                    continue;
                }
                // Incremental cost over the affected nets only.
                let mut affected: Vec<usize> = nets_of_block[a]
                    .iter()
                    .chain(nets_of_block[b].iter())
                    .copied()
                    .collect();
                affected.sort_unstable();
                affected.dedup();
                let before: f64 = affected
                    .iter()
                    .map(|&n| hpwl(&positions, &netlist.nets()[n]))
                    .sum();
                positions.swap(a, b);
                let after: f64 = affected
                    .iter()
                    .map(|&n| hpwl(&positions, &netlist.nets()[n]))
                    .sum();
                let delta = after - before;
                let accept =
                    delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature.max(1e-9)).exp();
                if accept {
                    cost += delta;
                } else {
                    positions.swap(a, b);
                }
            }
            temperature *= self.config.cooling;
        }

        Placement {
            dims,
            positions,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_arch::ArchitectureConfig;
    use fpsa_mapper::{AllocationPolicy, Mapper};
    use fpsa_nn::zoo;
    use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};

    fn lenet_netlist() -> Netlist {
        let graph = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(&zoo::lenet())
            .unwrap();
        Mapper::new(64, AllocationPolicy::DuplicationDegree(1))
            .map(&graph)
            .netlist
    }

    #[test]
    fn every_block_gets_a_unique_slot() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let mut seen: Vec<(usize, usize)> = placement.positions().to_vec();
        let before = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(before, seen.len(), "blocks must not share slots");
        assert_eq!(before, netlist.len());
    }

    #[test]
    fn annealing_does_not_increase_wirelength_vs_initial() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let mut no_anneal = PlacerConfig::fast();
        no_anneal.temperature_steps = 0;
        let initial = Placer::new(no_anneal).place(&netlist, &fabric);
        let annealed = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        assert!(
            annealed.wirelength() <= initial.wirelength(),
            "annealed {} vs initial {}",
            annealed.wirelength(),
            initial.wirelength()
        );
    }

    #[test]
    fn placement_is_deterministic_for_a_seed() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let a = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let b = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        assert_eq!(a, b);
    }

    #[test]
    fn positions_stay_inside_the_grid() {
        let netlist = lenet_netlist();
        let fabric = Fabric::with_pe_count(ArchitectureConfig::fpsa(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        for &(r, c) in placement.positions() {
            assert!(r < placement.dims.rows);
            assert!(c < placement.dims.cols);
        }
    }
}
