//! Timing analysis of a routed design.
//!
//! The routed trees combined with the routing-architecture delay model give a
//! **per-connection delay profile**: one delay per (net, sink) connection,
//! not just a single critical-hop scalar. The critical path (the slowest
//! connection) becomes the communication term of the pipeline clock — in
//! FPSA each transferred bit must traverse it once per cycle, so the
//! per-value communication latency is `bits_per_value × critical_delay` —
//! while the profile's mean feeds latency estimates and its quantiles
//! describe how balanced the routed fabric is.

use crate::route::RoutingResult;
use fpsa_arch::RoutingArchitecture;
use serde::{Deserialize, Serialize};

/// The timing summary of a routed netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Delay of every (net, sink) connection in ns, in routed order.
    pub connection_delays_ns: Vec<f64>,
    /// Longest connection in block hops.
    pub critical_hops: usize,
    /// Delay of the critical connection in ns.
    pub critical_delay_ns: f64,
    /// Mean over the per-connection delays in ns (not the delay of the
    /// rounded mean hop count — fractional hop averages stay fractional).
    pub average_delay_ns: f64,
    /// Whether the design routed within the channel capacity.
    pub routable: bool,
}

impl TimingReport {
    /// Analyze a routing result under a routing architecture.
    pub fn analyze(routing: &RoutingResult, arch: &RoutingArchitecture) -> Self {
        let connection_delays_ns: Vec<f64> = routing
            .connection_hops
            .iter()
            .map(|&hops| arch.path_delay_ns(hops))
            .collect();
        let critical_hops = routing.critical_hops();
        let average_delay_ns = if connection_delays_ns.is_empty() {
            arch.path_delay_ns(0)
        } else {
            connection_delays_ns.iter().sum::<f64>() / connection_delays_ns.len() as f64
        };
        TimingReport {
            critical_hops,
            critical_delay_ns: arch.path_delay_ns(critical_hops),
            average_delay_ns,
            connection_delays_ns,
            routable: routing.is_routable(),
        }
    }

    /// Per-value communication latency when values are serialized over
    /// `bits_per_value` bits (spike counts use n bits, spike trains 2^n).
    pub fn value_transfer_ns(&self, bits_per_value: u64) -> f64 {
        self.critical_delay_ns * bits_per_value as f64
    }

    /// The `q`-quantile (0..=1) of the per-connection delay profile, in ns.
    /// Returns the critical delay for an empty profile.
    pub fn delay_quantile_ns(&self, q: f64) -> f64 {
        if self.connection_delays_ns.is_empty() {
            return self.critical_delay_ns;
        }
        let mut sorted = self.connection_delays_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routing_with_hops(hops: Vec<usize>) -> RoutingResult {
        RoutingResult {
            connection_hops: hops,
            peak_channel_occupancy: 10,
            channel_width: 512,
            ..Default::default()
        }
    }

    #[test]
    fn critical_delay_uses_the_longest_connection() {
        let arch = RoutingArchitecture::fpsa_default();
        let report = TimingReport::analyze(&routing_with_hops(vec![3, 50, 10]), &arch);
        assert_eq!(report.critical_hops, 50);
        assert!((report.critical_delay_ns - arch.path_delay_ns(50)).abs() < 1e-12);
        assert!(report.average_delay_ns <= report.critical_delay_ns);
        assert!(report.routable);
    }

    #[test]
    fn average_delay_is_the_mean_of_the_profile_not_a_rounded_hop_count() {
        // Regression: hop counts [1, 2] average 1.5 hops; the old
        // implementation rounded that to path_delay_ns(2). The average delay
        // must be the mean over per-connection delays instead.
        let arch = RoutingArchitecture::fpsa_default();
        let report = TimingReport::analyze(&routing_with_hops(vec![1, 2]), &arch);
        let expected = (arch.path_delay_ns(1) + arch.path_delay_ns(2)) / 2.0;
        assert!(
            (report.average_delay_ns - expected).abs() < 1e-12,
            "average {} vs mean of profile {}",
            report.average_delay_ns,
            expected
        );
        let rounded = arch.path_delay_ns(2);
        assert!(
            (report.average_delay_ns - rounded).abs() > 1e-3,
            "average must not quantize to the rounded hop count"
        );
    }

    #[test]
    fn profile_has_one_delay_per_connection() {
        let arch = RoutingArchitecture::fpsa_default();
        let report = TimingReport::analyze(&routing_with_hops(vec![3, 7, 11, 2]), &arch);
        assert_eq!(report.connection_delays_ns.len(), 4);
        for (delay, hops) in report.connection_delays_ns.iter().zip([3usize, 7, 11, 2]) {
            assert!((delay - arch.path_delay_ns(hops)).abs() < 1e-12);
        }
        assert!((report.delay_quantile_ns(0.0) - arch.path_delay_ns(2)).abs() < 1e-12);
        assert!((report.delay_quantile_ns(1.0) - arch.path_delay_ns(11)).abs() < 1e-12);
    }

    #[test]
    fn spike_trains_cost_more_transfer_time_than_counts() {
        let arch = RoutingArchitecture::fpsa_default();
        let report = TimingReport::analyze(&routing_with_hops(vec![40]), &arch);
        let counts = report.value_transfer_ns(6);
        let trains = report.value_transfer_ns(64);
        assert!((trains / counts - 64.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn figure7_shape_spike_count_vs_train_latencies() {
        // With a routed critical path of a few tens of hops, 6-bit counts
        // land near tens of ns and 64-bit trains near several hundred ns —
        // the FP-PRIME (59.4 ns) vs FPSA (633.9 ns) relationship of Figure 7.
        let arch = RoutingArchitecture::fpsa_default();
        let report = TimingReport::analyze(&routing_with_hops(vec![68]), &arch);
        let counts = report.value_transfer_ns(6);
        let trains = report.value_transfer_ns(64);
        assert!(counts > 20.0 && counts < 120.0, "counts {counts}");
        assert!(trains > 300.0 && trains < 1200.0, "trains {trains}");
    }

    #[test]
    fn unroutable_designs_are_flagged() {
        let arch = RoutingArchitecture::fpsa_default();
        let mut routing = routing_with_hops(vec![5]);
        routing.peak_channel_occupancy = 1000;
        let report = TimingReport::analyze(&routing, &arch);
        assert!(!report.routable);
    }

    #[test]
    fn empty_profiles_degrade_to_the_zero_hop_delay() {
        let arch = RoutingArchitecture::fpsa_default();
        let report = TimingReport::analyze(&routing_with_hops(vec![]), &arch);
        assert!((report.average_delay_ns - arch.path_delay_ns(0)).abs() < 1e-12);
        assert_eq!(report.critical_hops, 0);
    }
}
