//! Timing analysis of a routed design.
//!
//! The routed hop counts combined with the routing-architecture delay model
//! give the per-connection wire delay. The critical path (the slowest
//! connection) becomes the communication term of the pipeline clock: in FPSA
//! each transferred bit must traverse it once per cycle, so the per-value
//! communication latency is `bits_per_value x critical_delay`.

use crate::route::RoutingResult;
use fpsa_arch::RoutingArchitecture;
use serde::{Deserialize, Serialize};

/// The timing summary of a routed netlist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Longest connection in block hops.
    pub critical_hops: usize,
    /// Delay of the critical connection in ns.
    pub critical_delay_ns: f64,
    /// Average connection delay in ns.
    pub average_delay_ns: f64,
    /// Whether the design routed within the channel capacity.
    pub routable: bool,
}

impl TimingReport {
    /// Analyze a routing result under a routing architecture.
    pub fn analyze(routing: &RoutingResult, arch: &RoutingArchitecture) -> Self {
        let critical_hops = routing.critical_hops();
        TimingReport {
            critical_hops,
            critical_delay_ns: arch.path_delay_ns(critical_hops),
            average_delay_ns: arch.path_delay_ns(routing.average_hops().round() as usize),
            routable: routing.is_routable(),
        }
    }

    /// Per-value communication latency when values are serialized over
    /// `bits_per_value` bits (spike counts use n bits, spike trains 2^n).
    pub fn value_transfer_ns(&self, bits_per_value: u64) -> f64 {
        self.critical_delay_ns * bits_per_value as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routing_with_hops(hops: Vec<usize>) -> RoutingResult {
        RoutingResult {
            connection_hops: hops,
            peak_channel_occupancy: 10,
            channel_width: 512,
            detoured_connections: 0,
            ..Default::default()
        }
    }

    #[test]
    fn critical_delay_uses_the_longest_connection() {
        let arch = RoutingArchitecture::fpsa_default();
        let report = TimingReport::analyze(&routing_with_hops(vec![3, 50, 10]), &arch);
        assert_eq!(report.critical_hops, 50);
        assert!((report.critical_delay_ns - arch.path_delay_ns(50)).abs() < 1e-12);
        assert!(report.average_delay_ns <= report.critical_delay_ns);
        assert!(report.routable);
    }

    #[test]
    fn spike_trains_cost_more_transfer_time_than_counts() {
        let arch = RoutingArchitecture::fpsa_default();
        let report = TimingReport::analyze(&routing_with_hops(vec![40]), &arch);
        let counts = report.value_transfer_ns(6);
        let trains = report.value_transfer_ns(64);
        assert!((trains / counts - 64.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn figure7_shape_spike_count_vs_train_latencies() {
        // With a routed critical path of a few tens of hops, 6-bit counts
        // land near tens of ns and 64-bit trains near several hundred ns —
        // the FP-PRIME (59.4 ns) vs FPSA (633.9 ns) relationship of Figure 7.
        let arch = RoutingArchitecture::fpsa_default();
        let report = TimingReport::analyze(&routing_with_hops(vec![68]), &arch);
        let counts = report.value_transfer_ns(6);
        let trains = report.value_transfer_ns(64);
        assert!(counts > 20.0 && counts < 120.0, "counts {counts}");
        assert!(trains > 300.0 && trains < 1200.0, "trains {trains}");
    }

    #[test]
    fn unroutable_designs_are_flagged() {
        let arch = RoutingArchitecture::fpsa_default();
        let mut routing = routing_with_hops(vec![5]);
        routing.peak_channel_occupancy = 1000;
        let report = TimingReport::analyze(&routing, &arch);
        assert!(!report.routable);
    }
}
