//! Placement and routing for the FPSA fabric.
//!
//! The last step of the FPSA software stack (Section 5.3 of the paper) places
//! the function-block netlist onto physical fabric slots and configures the
//! connection and switch boxes so that every net gets a dedicated path. The
//! paper adopts the mature FPGA tool-chain approach: simulated-annealing
//! placement and shortest-path (Dijkstra) routing that minimizes the critical
//! path.
//!
//! * [`place`] — simulated-annealing placer over kind-compatible fabric
//!   slots, minimizing half-perimeter wirelength.
//! * [`route`] — congestion-aware router: single-bend paths when channels
//!   have room, Dijkstra detours when they do not.
//! * [`timing`] — critical-path and average-delay analysis of a routed
//!   design, the quantity that becomes the communication term of the
//!   pipeline clock.

pub mod place;
pub mod route;
pub mod timing;

pub use place::{Placement, Placer, PlacerConfig};
pub use route::{Router, RoutingResult};
pub use timing::TimingReport;

use fpsa_arch::{ArchitectureConfig, Fabric};
use fpsa_mapper::Netlist;

/// Run the full place-and-route flow for a netlist on an architecture.
///
/// Builds a fabric just large enough for the netlist, places it, routes it
/// and reports timing.
pub fn place_and_route(
    netlist: &Netlist,
    config: &ArchitectureConfig,
    placer_config: PlacerConfig,
) -> (Placement, RoutingResult, TimingReport) {
    let stats = netlist.stats();
    // Size the fabric so that every block (PEs, SMBs and CLBs) has a slot.
    let fabric = Fabric::with_pe_count(config.clone(), netlist.len().max(stats.pe_count).max(1));
    let placement = Placer::new(placer_config).place(netlist, &fabric);
    let routing = Router::new(config.routing).route(netlist, &placement);
    let timing = TimingReport::analyze(&routing, &config.routing);
    (placement, routing, timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_mapper::{AllocationPolicy, Mapper};
    use fpsa_nn::zoo;
    use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};

    #[test]
    fn full_flow_runs_on_lenet() {
        let graph = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(&zoo::lenet())
            .unwrap();
        let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(1)).map(&graph);
        let config = ArchitectureConfig::fpsa();
        let (placement, routing, timing) =
            place_and_route(&mapping.netlist, &config, PlacerConfig::fast());
        assert_eq!(placement.positions().len(), mapping.netlist.len());
        assert_eq!(routing.routed_nets(), mapping.netlist.nets().len());
        assert!(timing.critical_delay_ns > 0.0);
        assert!(
            timing.critical_delay_ns < 100.0,
            "critical path should be nanoseconds"
        );
    }
}
