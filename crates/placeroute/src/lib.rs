//! The timing-driven physical-design engine for the FPSA fabric.
//!
//! The last step of the FPSA software stack (Section 5.3 of the paper) places
//! the function-block netlist onto physical fabric slots and configures the
//! connection and switch boxes so that every net gets a dedicated path. The
//! engine mirrors the mature FPGA tool-chain the paper adopts (mrVPR):
//!
//! * [`place`] — incremental simulated-annealing placer: cached per-net
//!   bounding boxes, criticality-weighted HPWL, adaptive cooling, and a
//!   [`PlacementQuality`] trajectory report.
//! * [`route`] — PathFinder negotiated-congestion router: iterative
//!   rip-up-and-reroute with history + present-congestion costs, per-net
//!   multicast routing trees, parallel route waves, and a
//!   minimum-channel-width search.
//! * [`timing`] — per-connection delay profiles of the routed design; the
//!   critical connection becomes the communication term of the pipeline
//!   clock.

pub mod place;
pub mod route;
pub mod timing;

pub use place::{AnnealStep, Placement, PlacementQuality, Placer, PlacerConfig, WarmStart};
pub use route::{Orientation, RouteEdge, Router, RouterConfig, RoutingResult, RoutingTree};
pub use timing::TimingReport;

use fpsa_arch::{ArchitectureConfig, Fabric};
use fpsa_mapper::Netlist;

/// The fabric a netlist needs: sized so that every block (PEs, SMBs and
/// CLBs) has a slot. This is the single sizing policy shared by the
/// standalone flow below and the compile pipeline's PlaceRoute stage.
pub fn fabric_for(netlist: &Netlist, config: &ArchitectureConfig) -> Fabric {
    let stats = netlist.stats();
    Fabric::with_pe_count(config.clone(), netlist.len().max(stats.pe_count).max(1))
}

/// Run the full place-and-route flow for a netlist on an architecture with
/// explicit placer and router configurations.
///
/// Builds a fabric just large enough for the netlist, places it, routes it
/// with PathFinder negotiation and reports timing.
pub fn place_and_route_with(
    netlist: &Netlist,
    config: &ArchitectureConfig,
    placer_config: PlacerConfig,
    router_config: RouterConfig,
) -> (Placement, RoutingResult, TimingReport) {
    let fabric = fabric_for(netlist, config);
    let placement = Placer::new(placer_config).place(netlist, &fabric);
    let routing = Router::with_config(config.routing, router_config).route(netlist, &placement);
    let timing = TimingReport::analyze(&routing, &config.routing);
    (placement, routing, timing)
}

/// [`place_and_route_with`] under the default negotiated router.
pub fn place_and_route(
    netlist: &Netlist,
    config: &ArchitectureConfig,
    placer_config: PlacerConfig,
) -> (Placement, RoutingResult, TimingReport) {
    place_and_route_with(netlist, config, placer_config, RouterConfig::negotiated())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_mapper::{AllocationPolicy, Mapper};
    use fpsa_nn::zoo;
    use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};

    #[test]
    fn full_flow_runs_on_lenet() {
        let graph = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(&zoo::lenet())
            .unwrap();
        let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(1)).map(&graph);
        let config = ArchitectureConfig::fpsa();
        let (placement, routing, timing) =
            place_and_route(&mapping.netlist, &config, PlacerConfig::fast());
        assert_eq!(placement.positions().len(), mapping.netlist.len());
        assert_eq!(routing.routed_nets(), mapping.netlist.nets().len());
        assert!(timing.critical_delay_ns > 0.0);
        assert!(
            timing.critical_delay_ns < 100.0,
            "critical path should be nanoseconds"
        );
        assert_eq!(
            timing.connection_delays_ns.len(),
            mapping.netlist.connection_count()
        );
    }
}
