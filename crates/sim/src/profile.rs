//! Executor profiling hooks: per-opcode retired-instruction and
//! sparsity-skip counters for the bytecode dispatch loop.
//!
//! The hooks are **compiled out entirely** unless the crate is built with
//! the `obs-profile` feature — the dispatch loop carries zero extra
//! instructions in a default build, which is what lets the obs overhead
//! bench pin the telemetry tax on the untraced hot path. With the feature
//! on, recording is additionally gated behind a runtime sampling flag
//! ([`set_sampling`]): counters accumulate into plain per-call registers
//! ([`SkipTally`]) and flush to the global atomics once per instruction,
//! so even a sampled run adds one relaxed `fetch_add` per retired
//! instruction, not per element.
//!
//! Counter semantics:
//!
//! * **retired** — executions of each opcode, counted per sample (a batch
//!   of `b` samples retires every instruction `b` times, matching the
//!   sequential execution it is bit-identical to).
//! * **skipped** — crossbar rows elided by the run-time sparsity skip in
//!   the MAC gather loops (a row whose activation is exactly zero never
//!   reaches the MAC kernel). In the sample-blocked batch kernels a row is
//!   skipped only when *all* samples in the group are zero, so batch skip
//!   counts are legitimately lower than sequential ones for the same
//!   inputs.

use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of bytecode opcodes ([`OPCODE_NAMES`] is index-aligned with
/// `Inst::opcode`).
pub const NUM_OPCODES: usize = 19;

/// Display names, index-aligned with `Inst::opcode`.
pub const OPCODE_NAMES: [&str; NUM_OPCODES] = [
    "CopyF",
    "RescaleI",
    "RescaleI2",
    "DenseF",
    "DenseI",
    "ConvF",
    "ConvI",
    "ReduceF",
    "ReduceI",
    "AvgPoolF",
    "AvgPoolI",
    "GapF",
    "GapI",
    "MaxPoolF",
    "MaxPoolI",
    "MaxFwdF",
    "MaxFwdI",
    "EltwiseF",
    "EltwiseI",
];

/// Opcode indices of the four MAC instructions, for flush sites that do not
/// hold an `Inst` (the batch gather kernels).
pub(crate) const OP_DENSE_F: usize = 3;
pub(crate) const OP_DENSE_I: usize = 4;
pub(crate) const OP_CONV_F: usize = 5;
pub(crate) const OP_CONV_I: usize = 6;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static RETIRED: [AtomicU64; NUM_OPCODES] = [ZERO; NUM_OPCODES];
static SKIPPED: [AtomicU64; NUM_OPCODES] = [ZERO; NUM_OPCODES];
static SAMPLING: AtomicBool = AtomicBool::new(false);

/// Turn runtime sampling on or off. A no-op without the `obs-profile`
/// feature (the hooks it would gate are not compiled in).
pub fn set_sampling(enabled: bool) {
    SAMPLING.store(enabled, Ordering::Relaxed);
}

/// Whether the runtime sampling flag is set (regardless of whether the
/// `obs-profile` hooks are compiled in).
pub fn sampling_enabled() -> bool {
    SAMPLING.load(Ordering::Relaxed)
}

/// Whether the profiling hooks are compiled into this build.
pub const fn compiled_in() -> bool {
    cfg!(feature = "obs-profile")
}

/// Zero both counter banks (the sampling flag is left untouched).
pub fn reset() {
    for c in RETIRED.iter().chain(SKIPPED.iter()) {
        c.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of both counter banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Per-opcode retired instruction counts.
    pub retired: [u64; NUM_OPCODES],
    /// Per-opcode sparsity-skipped crossbar rows.
    pub skipped: [u64; NUM_OPCODES],
}

impl ProfileSnapshot {
    /// Total retired instructions across all opcodes.
    pub fn total_retired(&self) -> u64 {
        self.retired.iter().sum()
    }

    /// Total sparsity-skipped rows across all opcodes.
    pub fn total_skipped(&self) -> u64 {
        self.skipped.iter().sum()
    }

    /// `(name, retired, skipped)` rows for every opcode that recorded
    /// anything, in opcode order.
    pub fn rows(&self) -> Vec<(&'static str, u64, u64)> {
        (0..NUM_OPCODES)
            .filter(|&i| self.retired[i] != 0 || self.skipped[i] != 0)
            .map(|i| (OPCODE_NAMES[i], self.retired[i], self.skipped[i]))
            .collect()
    }
}

/// Read both counter banks.
pub fn snapshot() -> ProfileSnapshot {
    let mut s = ProfileSnapshot {
        retired: [0; NUM_OPCODES],
        skipped: [0; NUM_OPCODES],
    };
    for i in 0..NUM_OPCODES {
        s.retired[i] = RETIRED[i].load(Ordering::Relaxed);
        s.skipped[i] = SKIPPED[i].load(Ordering::Relaxed);
    }
    s
}

/// Count `n` retirements of `op`. Compiled out without `obs-profile`.
#[inline(always)]
#[allow(unused_variables)]
pub(crate) fn retire(op: usize, n: u64) {
    #[cfg(feature = "obs-profile")]
    if SAMPLING.load(Ordering::Relaxed) {
        RETIRED[op].fetch_add(n, Ordering::Relaxed);
    }
}

/// A per-instruction sparsity-skip tally: a plain register counter with
/// `obs-profile`, a zero-sized no-op otherwise, so gather loops can call
/// [`SkipTally::hit`] per elided row without touching the atomics (or,
/// without the feature, without emitting any code at all).
#[derive(Default)]
pub(crate) struct SkipTally {
    #[cfg(feature = "obs-profile")]
    n: u64,
}

impl SkipTally {
    #[inline(always)]
    pub fn new() -> SkipTally {
        SkipTally::default()
    }

    /// Record one sparsity-elided row.
    #[inline(always)]
    pub fn hit(&mut self) {
        #[cfg(feature = "obs-profile")]
        {
            self.n += 1;
        }
    }

    /// Fold the tally into the global bank for `op` (one relaxed
    /// `fetch_add`, and only when sampling is on and something was elided).
    #[inline(always)]
    #[allow(unused_variables)]
    pub fn flush(self, op: usize) {
        #[cfg(feature = "obs-profile")]
        if self.n != 0 && SAMPLING.load(Ordering::Relaxed) {
            SKIPPED[op].fetch_add(self.n, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counter banks and sampling flag are process-global, so the tests
    // that mutate them must not interleave.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn snapshot_roundtrip_and_reset() {
        let _g = LOCK.lock().unwrap();
        reset();
        set_sampling(true);
        retire(OP_DENSE_F, 3);
        let mut t = SkipTally::new();
        t.hit();
        t.hit();
        t.flush(OP_DENSE_F);
        let s = snapshot();
        if compiled_in() {
            assert_eq!(s.retired[OP_DENSE_F], 3);
            assert_eq!(s.skipped[OP_DENSE_F], 2);
            assert_eq!(s.rows(), vec![("DenseF", 3, 2)]);
        } else {
            assert_eq!(s.total_retired(), 0);
            assert_eq!(s.total_skipped(), 0);
            assert!(s.rows().is_empty());
        }
        set_sampling(false);
        reset();
        assert_eq!(snapshot().total_retired(), 0);
    }

    #[cfg(feature = "obs-profile")]
    #[test]
    fn sampling_flag_gates_recording() {
        let _g = LOCK.lock().unwrap();
        reset();
        set_sampling(false);
        retire(OP_CONV_F, 10);
        let mut t = SkipTally::new();
        t.hit();
        t.flush(OP_CONV_F);
        assert_eq!(snapshot().total_retired(), 0);
        assert_eq!(snapshot().total_skipped(), 0);
    }
}
