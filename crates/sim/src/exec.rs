//! The compiled-model execution engine.
//!
//! Everything upstream of this module validates the compile pipeline
//! *structurally* — schedules satisfy their constraints, netlists connect,
//! routes converge. This engine closes the numeric loop: it takes the
//! artifacts of a compiled model (synthesized core-op graph, mapped
//! allocation + schedule + netlist) and actually *computes the network's
//! outputs on the simulated fabric*, so compilation can be differentially
//! tested against the golden-model reference of `fpsa_nn::reference`.
//!
//! # How a sample executes: bind → lower → execute
//!
//! 1. [`Executor::bind`] resolves every core-op group into a `TileProgram`:
//!    its crossbar weight matrix (sliced by `fpsa_synthesis::weights`, then
//!    realized exactly / quantized / programmed onto noisy simulated cells —
//!    one realization **per PE duplicate**, because every physical crossbar
//!    is programmed separately, all packed row-major into one shared weight
//!    slab), its gather geometry (dense rows, im2col convolution windows,
//!    pooling stencils) and its scatter target.
//!    Binding also *verifies the physical artifacts*: schedule entries must
//!    start strictly after every producer (buffered edges strictly after the
//!    producer finishes), and every core-graph edge must be backed by nets
//!    in the mapper's netlist (producer PE → consumer PE duplicates, or
//!    producer → SMB → consumer for buffered edges).
//! 2. Binding then **lowers** the programs ([`crate::lower`]) into a flat
//!    bytecode stream ([`crate::bytecode`]): every buffer becomes a fixed
//!    region of two flat arena slabs, every instruction carries preresolved
//!    absolute offsets, and structurally-zero crossbar rows are dropped.
//! 3. [`Executor::run`] is a single dispatch loop over that stream — no
//!    per-element op dispatch, no hash lookups, no shape math — with
//!    run-time skipping of exactly-zero activations. Outputs are
//!    bit-identical to the retired interpreter (kept behind the
//!    `shadow-interp` feature purely as the differential cross-check —
//!    see [`Executor::run_checked`]): per-accumulator f64/i64 term order is
//!    preserved, and sparsity only removes terms that are exactly zero.
//! 4. Batches fan out sample-parallel over rayon ([`Executor::run_batch`]).
//!    All weight realization (including noise) happens at bind time, so
//!    execution is pure and results are bit-identical for any thread count
//!    or batch chunking.
//! 5. Long-lived callers (the serving engine of `fpsa_serve`) bind once and
//!    keep an [`ExecArena`] per replica: [`Executor::run_into`] and
//!    [`Executor::run_batch_into`] reuse the arena's two flat slabs, whose
//!    peak demand is precomputed by lowering — reservation is O(1) per run
//!    and the steady-state hot path performs no scratch allocation.
//!
//! # Numeric domains ([`Precision`])
//!
//! * [`Precision::Float`] — f32 tile weights straight from the parameters,
//!   f64 accumulation, f32 at node boundaries: matches the float reference
//!   within summation-order tolerance (see DESIGN.md for the bound).
//! * [`Precision::QuantizedWeights`] — weights round-tripped through the
//!   8-bit [`Quantizer`] per layer; bit-for-bit the quantizer's reference
//!   values, float math otherwise.
//! * [`Precision::Integer`] — full integer-code execution on a calibrated
//!   [`QuantizationPlan`]: 8-bit weight codes, 6-bit activation codes, i64
//!   accumulation. Integer addition is associative, so tiling and transport
//!   cannot perturb results: outputs match
//!   `Reference::quantized_forward` **bit for bit**.
//! * [`Precision::Noisy`] — quantized weights programmed onto simulated
//!   ReRAM cells ([`WeightScheme`] + [`CellVariation`]), seeded per PE by
//!   the repository convention (`seeds::derive(seed, STREAM_PE_NOISE,
//!   pe_index(group, duplicate))`).

use crate::bytecode::{LowerStats, Lowered, Region};
use crate::lower::{self, LowerCtx};
use fpsa_device::variation::{CellVariation, WeightScheme};
use fpsa_mapper::{Mapping, NetlistBlock};
#[cfg(feature = "shadow-interp")]
use fpsa_nn::quant::rescale_code;
use fpsa_nn::quant::{quantize_code, Quantizer};
use fpsa_nn::reference::{self, InputView, QuantizationPlan};
#[cfg(feature = "shadow-interp")]
use fpsa_nn::reference::{pooled_window_real, requantize_mac};
use fpsa_nn::seeds;
use fpsa_nn::{ComputationalGraph, GraphParameters, NnError, NodeId, Operator, TensorShape};
use fpsa_obs::{SpanId, Tracer};
use fpsa_synthesis::{weights, CoreOpGraph, CoreOpKind, GroupId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The numeric domain a bound executor computes in.
#[derive(Debug, Clone, PartialEq)]
pub enum Precision {
    /// Full-precision f32 weights, f64 accumulation.
    Float,
    /// Weights round-tripped through the per-layer 8-bit quantizer
    /// (`Quantizer::weights_8bit(layer range)`), float math otherwise.
    QuantizedWeights,
    /// Integer-code execution on a calibrated plan; bit-for-bit against the
    /// quantized golden reference.
    Integer(QuantizationPlan),
    /// Quantized weights programmed onto simulated noisy cells, one
    /// independent realization per PE duplicate.
    Noisy {
        /// Cell composition scheme (splice or add).
        scheme: WeightScheme,
        /// Per-cell programming variation.
        variation: CellVariation,
        /// Base seed; per-PE RNGs derive from it via
        /// `seeds::derive(seed, STREAM_PE_NOISE, pe_index(group, dup))`.
        seed: u64,
    },
}

/// Why binding or execution failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The source graph is malformed (propagated from `fpsa_nn`).
    Graph(NnError),
    /// The model uses a construct the engine cannot evaluate numerically.
    Unsupported {
        /// What was encountered.
        reason: String,
    },
    /// Compiled artifacts disagree with the graph/parameters they are bound
    /// against.
    ModelMismatch {
        /// What disagreed.
        reason: String,
    },
    /// The schedule executes a consumer no later than one of its producers.
    ScheduleOrder {
        /// Producing group.
        producer: GroupId,
        /// Consuming group.
        consumer: GroupId,
    },
    /// A core-graph edge has no backing nets in the netlist.
    MissingTransport {
        /// Producing group.
        from: GroupId,
        /// Consuming group.
        to: GroupId,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Graph(e) => write!(f, "graph error: {e}"),
            ExecError::Unsupported { reason } => write!(f, "unsupported construct: {reason}"),
            ExecError::ModelMismatch { reason } => write!(f, "model mismatch: {reason}"),
            ExecError::ScheduleOrder { producer, consumer } => write!(
                f,
                "schedule orders consumer group {consumer} no later than its producer {producer}"
            ),
            ExecError::MissingTransport { from, to } => write!(
                f,
                "netlist carries no nets for core-graph edge {from} -> {to}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<NnError> for ExecError {
    fn from(e: NnError) -> Self {
        ExecError::Graph(e)
    }
}

fn mismatch(reason: impl Into<String>) -> ExecError {
    ExecError::ModelMismatch {
        reason: reason.into(),
    }
}

/// Geometry of a convolution gather.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConvGeom {
    pub kernel: usize,
    pub stride: usize,
    pub padding: usize,
    pub ih: usize,
    pub iw: usize,
}

/// Geometry of a pooling gather.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PoolGeom {
    pub kernel: usize,
    pub stride: usize,
    pub ih: usize,
    pub iw: usize,
}

/// How one tile computes.
#[derive(Debug, Clone)]
pub(crate) enum ProgramKind {
    /// Dense VMM tile: rows `[row_offset, row_offset + rows)` of the node's
    /// flat input, one weight column per output.
    Dense,
    /// Convolution VMM tile: rows gathered through im2col windows.
    Conv(ConvGeom),
    /// Partial-sum reduction: sums slices of its predecessor tiles' raw
    /// accumulations. `(pred, pred_cols, slice_offset)` per source.
    Reduce(Vec<(GroupId, usize, usize)>),
    /// Average pooling over `kernel × kernel` windows for the tile's channel
    /// block.
    AvgPool(PoolGeom),
    /// Global average pooling over the full spatial extent.
    GlobalAvgPool {
        /// Spatial window (h · w).
        window: usize,
    },
    /// Max-pool construct stage 1: window maxima, handed to stage 2.
    MaxStage1(PoolGeom),
    /// Max-pool construct stage 2: forwards its stage-1 tile's values.
    MaxStage2 {
        /// The paired stage-1 group.
        source: GroupId,
    },
    /// Element-wise addition across the node's inputs; one resolved view per
    /// input (kept separate because, in integer mode, each side rescales
    /// from its own gather step exactly like the reference).
    Eltwise(Vec<InputView>),
}

/// One bound, executable tile.
#[derive(Debug, Clone)]
pub(crate) struct TileProgram {
    pub group: GroupId,
    pub node: NodeId,
    pub kind: ProgramKind,
    pub relu: bool,
    /// Whether this tile scatters into its node's activation buffer
    /// (otherwise it produces partial values consumed by another tile).
    pub writes_output: bool,
    /// Output positions of the node (spatial size, 1 for feature vectors);
    /// equals the group's reuse degree.
    pub positions: usize,
    /// Tile output width (`cols`) and channel/feature offset (`col_offset`).
    pub cols: usize,
    pub col_offset: usize,
    /// Dense/conv row span within the node's logical input.
    pub rows: usize,
    pub row_offset: usize,
    /// Float weight realizations as `(offset, len)` spans of the lowered
    /// weight slab, one per PE duplicate (length 1 when all duplicates share
    /// the exact same matrix; empty spans in Integer precision).
    pub w_f: Vec<(u32, u32)>,
    /// Integer weight code span (Integer precision only; always shared).
    pub w_q: (u32, u32),
    pub duplicates: u64,
}

/// Per-node geometry shared by the node's tiles.
#[derive(Debug, Clone)]
pub(crate) struct NodeInfo {
    pub view: InputView,
    pub elements: usize,
    pub positions: usize,
    /// Integer-mode steps (1.0 placeholders outside Integer precision).
    pub gather_step: f64,
    pub out_step: f64,
    pub weight_step: f64,
}

/// An epoch-stamped buffer pool: one growable buffer per slot, with validity
/// tracked per execution epoch. Interpreter-only — the bytecode path replaced
/// per-buffer bookkeeping with two flat slabs whose layout lowering fixed.
#[cfg(feature = "shadow-interp")]
#[derive(Debug, Default)]
struct Slab<T> {
    bufs: Vec<Vec<T>>,
    stamp: Vec<u64>,
}

#[cfg(feature = "shadow-interp")]
impl<T: Copy + Default> Slab<T> {
    fn ensure(&mut self, slots: usize) {
        if self.bufs.len() < slots {
            self.bufs.resize_with(slots, Vec::new);
            self.stamp.resize(slots, 0);
        }
    }

    /// Claim a slot for `epoch` as an empty buffer (capacity retained).
    fn claim(&mut self, slot: usize, epoch: u64) -> &mut Vec<T> {
        self.stamp[slot] = epoch;
        let buf = &mut self.bufs[slot];
        buf.clear();
        buf
    }

    /// Claim a slot for `epoch`, zero-filled to `len`.
    fn claim_zeroed(&mut self, slot: usize, len: usize, epoch: u64) {
        let buf = self.claim(slot, epoch);
        buf.resize(len, T::default());
    }

    /// Whether the slot was written during `epoch`.
    fn live(&self, slot: usize, epoch: u64) -> bool {
        self.stamp.get(slot).copied() == Some(epoch)
    }

    fn get(&self, slot: usize, epoch: u64) -> Option<&[T]> {
        self.live(slot, epoch).then(|| self.bufs[slot].as_slice())
    }

    fn get_mut(&mut self, slot: usize, epoch: u64) -> Option<&mut [T]> {
        self.live(slot, epoch)
            .then(|| self.bufs[slot].as_mut_slice())
    }
}

/// Reusable execution scratch for one executor replica.
///
/// The bytecode executor needs exactly two flat slabs per numeric domain —
/// the value slab (node activations, gathers, element-wise sides) and the
/// partial slab (raw tile accumulations) — whose peak demand lowering
/// precomputed ([`crate::bytecode`]). Reserving them is therefore O(1) per
/// run: one length check against the lowered `val_len`/`part_len`, then a
/// memset. After warm-up the steady-state hot path
/// ([`Executor::run_into`] / [`Executor::run_batch_into`]) performs **zero
/// scratch allocation** — the "bind once, serve forever" contract the
/// serving engine builds on: one arena per replica, reused for every batch.
///
/// An arena can even be reused across *different* executors: every run
/// re-reserves and re-zeroes the slab prefix it needs, so nothing can leak
/// between models or batches.
#[derive(Debug, Default)]
pub struct ExecArena {
    /// Bytecode value slab, float domains.
    val_f: Vec<f32>,
    /// Bytecode partial slab, float domains.
    part_f: Vec<f64>,
    /// Bytecode value slab, integer domain.
    val_i: Vec<i64>,
    /// Bytecode partial slab, integer domain.
    part_i: Vec<i64>,
    /// Kernel scratch: per-position row lists + output accumulator rows.
    mac: crate::bytecode::MacScratch,
    #[cfg(feature = "shadow-interp")]
    epoch: u64,
    #[cfg(feature = "shadow-interp")]
    node_f: Slab<f32>,
    #[cfg(feature = "shadow-interp")]
    gather_f: Slab<f32>,
    #[cfg(feature = "shadow-interp")]
    partial_f: Slab<f64>,
    #[cfg(feature = "shadow-interp")]
    node_i: Slab<i64>,
    #[cfg(feature = "shadow-interp")]
    gather_i: Slab<i64>,
    #[cfg(feature = "shadow-interp")]
    partial_i: Slab<i64>,
    #[cfg(feature = "shadow-interp")]
    acc_f: Vec<f64>,
    #[cfg(feature = "shadow-interp")]
    acc_i: Vec<i64>,
    #[cfg(feature = "shadow-interp")]
    eltwise_f: Vec<Vec<f32>>,
    #[cfg(feature = "shadow-interp")]
    eltwise_i: Vec<Vec<i64>>,
}

impl ExecArena {
    /// A fresh, empty arena; buffers grow on first use and are kept after.
    pub fn new() -> Self {
        ExecArena::default()
    }
}

/// Reserve a bytecode slab at `len` elements, zero-filled. Capacity is
/// retained across runs, so the steady state is a pure memset: no allocation.
/// Whole-slab zeroing is what gives scatter targets their zeroed baseline
/// (the interpreter's `claim_zeroed`) before any instruction writes them.
fn grab<T: Copy + Default>(buf: &mut Vec<T>, len: usize) -> &mut [T] {
    if buf.len() < len {
        buf.resize(len, T::default());
    }
    let s = &mut buf[..len];
    s.fill(T::default());
    s
}

/// The compiled-model executor: bound tile programs lowered to bytecode.
#[derive(Debug)]
pub struct Executor {
    programs: Vec<TileProgram>,
    #[cfg(feature = "shadow-interp")]
    nodes: Vec<Option<NodeInfo>>,
    graph_len: usize,
    #[cfg(feature = "shadow-interp")]
    group_count: usize,
    input: Option<(NodeId, usize)>,
    #[cfg(feature = "shadow-interp")]
    output_view: InputView,
    #[cfg(feature = "shadow-interp")]
    output_steps: Vec<f64>,
    precision_integer: bool,
    activation_levels: i64,
    node_steps: Vec<f64>,
    /// Widest tile output row (sizes the shadow arena's accumulator row).
    #[cfg(feature = "shadow-interp")]
    max_cols: usize,
    /// The lowered bytecode artifact every run dispatches over.
    lowered: Lowered,
    /// Output segments: value-slab region + integer dequantization step.
    out_regions: Vec<(Region, f64)>,
}

impl Executor {
    /// Bind compiled artifacts to numeric parameters, realizing tile weights
    /// in the chosen precision and verifying schedule order and net
    /// transport.
    ///
    /// # Errors
    ///
    /// * [`ExecError::Graph`] — malformed source graph;
    /// * [`ExecError::Unsupported`] — constructs without numeric semantics
    ///   (grouped convolutions share one weight tile across channel groups);
    /// * [`ExecError::ModelMismatch`] — artifacts disagree with the graph or
    ///   parameters;
    /// * [`ExecError::ScheduleOrder`] / [`ExecError::MissingTransport`] —
    ///   invalid compiled artifacts.
    pub fn bind(
        graph: &ComputationalGraph,
        params: &GraphParameters,
        core: &CoreOpGraph,
        mapping: &Mapping,
        precision: &Precision,
    ) -> Result<Executor, ExecError> {
        Self::bind_with_noise_offset(graph, params, core, mapping, precision, 0)
    }

    /// [`Executor::bind`] with the group index of [`Precision::Noisy`]'s
    /// per-PE seed derivation shifted by `noise_group_offset`.
    ///
    /// This is the executor-chaining hook of the multi-fabric sharder: each
    /// pipeline stage re-synthesizes its subgraph, so its group ids restart
    /// at zero, but the physical crossbars it models are the *same* ones the
    /// unsharded compilation would program. Binding stage `k` with the
    /// number of groups synthesized for earlier stages as the offset makes
    /// every PE draw exactly the noise realization it draws in the unsharded
    /// bind (`seeds::pe_index(offset + local_gid, dup)`), which is what lets
    /// the sharded determinism suite demand bit-identical Noisy outputs.
    /// The offset is ignored by the noise-free precisions.
    ///
    /// # Errors
    ///
    /// Mirrors [`Executor::bind`].
    pub fn bind_with_noise_offset(
        graph: &ComputationalGraph,
        params: &GraphParameters,
        core: &CoreOpGraph,
        mapping: &Mapping,
        precision: &Precision,
        noise_group_offset: usize,
    ) -> Result<Executor, ExecError> {
        let tracer = Tracer::global();
        let span = if tracer.enabled() {
            tracer.enter_with(
                "bind",
                "exec",
                tracer.now_us(),
                SpanId::NONE,
                &[("groups", core.len() as i64)],
            )
        } else {
            fpsa_obs::Span::DISABLED
        };
        let result = Self::bind_inner(graph, params, core, mapping, precision, noise_group_offset);
        if !span.id.is_none() {
            let ts = tracer.now_us();
            if result.is_err() {
                tracer.record(&span, "failed", 1, ts);
            }
            tracer.exit(&span, ts);
        }
        result
    }

    /// The untraced body of [`Executor::bind_with_noise_offset`].
    fn bind_inner(
        graph: &ComputationalGraph,
        params: &GraphParameters,
        core: &CoreOpGraph,
        mapping: &Mapping,
        precision: &Precision,
        noise_group_offset: usize,
    ) -> Result<Executor, ExecError> {
        let shapes = graph.infer_shapes()?;
        verify_schedule_order(core, mapping)?;
        verify_transport(core, mapping)?;

        let plan = match precision {
            Precision::Integer(plan) => {
                if plan.weight_range.len() != graph.len()
                    || plan.activation_range.len() != graph.len()
                {
                    return Err(mismatch("quantization plan covers a different graph"));
                }
                Some(plan)
            }
            _ => None,
        };

        // Per-node geometry for every node that produced groups.
        let mut nodes: Vec<Option<NodeInfo>> = vec![None; graph.len()];
        let mut node_kinds: HashMap<NodeId, HashSet<CoreOpKind>> = HashMap::new();
        for g in core.groups() {
            node_kinds.entry(g.source_node).or_default().insert(g.kind);
        }
        for (&node_id, _) in node_kinds.iter() {
            let node = graph.node(node_id)?;
            let out_shape = *shapes
                .get(&node_id)
                .ok_or_else(|| mismatch("missing shape"))?;
            let view = reference::resolve_view(graph, &shapes, &node.inputs)?;
            let (h, w) = out_shape.spatial();
            let positions = match out_shape {
                TensorShape::Features(_) => 1,
                TensorShape::Chw { .. } => h * w,
            };
            let (gather_step, out_step, weight_step) = match plan {
                Some(p) => (
                    p.gather_step(&view),
                    p.activation_step(node_id),
                    p.weight_step(node_id),
                ),
                None => (1.0, 1.0, 1.0),
            };
            nodes[node_id] = Some(NodeInfo {
                view,
                elements: out_shape.elements(),
                positions,
                gather_step,
                out_step,
                weight_step,
            });
        }

        // Which nodes keep their VMM tiles as partials (a reduction follows).
        let reduced_nodes: HashSet<NodeId> = core
            .groups()
            .iter()
            .filter(|g| g.kind == CoreOpKind::Reduction)
            .map(|g| g.source_node)
            .collect();

        let wlevels = Quantizer::weights_8bit(1.0).positive_levels();
        // Per-node |w|max cache: scanning a layer's weights once per *tile*
        // is quadratic (VGG16's fc6 alone is 25k tiles × 102M weights), and
        // only the quantizing precisions need the range at all.
        let mut weight_ranges: HashMap<NodeId, f32> = HashMap::new();
        let mut wslab_f: Vec<f32> = Vec::new();
        let mut wslab_q: Vec<i64> = Vec::new();
        let mut programs = Vec::with_capacity(core.len());
        let order = schedule_order(mapping);
        for &gid in &order {
            let g = &core.groups()[gid];
            let node = graph.node(g.source_node)?;
            let info = nodes[g.source_node]
                .as_ref()
                .ok_or_else(|| mismatch(format!("group {} has no node info", g.name)))?;
            // Report grouped convolutions as the documented unsupported
            // construct before any structural cross-check can trip over
            // their doubled reuse degree with a less actionable error.
            if let Operator::Conv2d { groups, .. } = &node.op {
                if *groups != 1 && g.kind == CoreOpKind::Vmm {
                    return Err(ExecError::Unsupported {
                        reason: format!(
                            "grouped convolution {} shares one weight tile across {} channel groups",
                            node.name, groups
                        ),
                    });
                }
            }
            if g.reuse_degree != info.positions as u64 {
                return Err(mismatch(format!(
                    "group {} reuse degree {} != node output positions {}",
                    g.name, g.reuse_degree, info.positions
                )));
            }
            let duplicates = mapping.allocation.per_group.get(gid).copied().unwrap_or(1);
            // Functional output width when it differs from the structural
            // tile width (max-pool stage-1 constructs).
            let mut functional_cols: Option<usize> = None;

            let (kind, writes_output, has_weights) = match (g.kind, &node.op) {
                (CoreOpKind::Vmm, Operator::Linear { .. }) => (
                    ProgramKind::Dense,
                    !reduced_nodes.contains(&g.source_node),
                    true,
                ),
                (
                    CoreOpKind::Vmm,
                    Operator::Conv2d {
                        groups,
                        kernel,
                        stride,
                        padding,
                        ..
                    },
                ) => {
                    if *groups != 1 {
                        return Err(ExecError::Unsupported {
                            reason: format!(
                                "grouped convolution {} shares one weight tile across {} channel groups",
                                node.name, groups
                            ),
                        });
                    }
                    let in_node = node
                        .inputs
                        .first()
                        .ok_or_else(|| mismatch("convolution without input"))?;
                    let (ih, iw) = shapes[in_node].spatial();
                    (
                        ProgramKind::Conv(ConvGeom {
                            kernel: *kernel,
                            stride: *stride,
                            padding: *padding,
                            ih,
                            iw,
                        }),
                        !reduced_nodes.contains(&g.source_node),
                        true,
                    )
                }
                (CoreOpKind::Reduction, _) => {
                    let mut sources = Vec::new();
                    for pred in core.predecessors(gid) {
                        let p = &core.groups()[pred];
                        if p.source_node != g.source_node {
                            return Err(mismatch(format!(
                                "reduction {} fed by foreign group {}",
                                g.name, p.name
                            )));
                        }
                        let slice = g
                            .col_offset
                            .checked_sub(p.col_offset)
                            .filter(|s| s + g.cols <= p.cols)
                            .ok_or_else(|| {
                                mismatch(format!(
                                    "reduction {} does not slice its partial tile {}",
                                    g.name, p.name
                                ))
                            })?;
                        sources.push((pred, p.cols, slice));
                    }
                    if sources.is_empty() {
                        return Err(mismatch(format!("reduction {} has no sources", g.name)));
                    }
                    (ProgramKind::Reduce(sources), true, false)
                }
                (CoreOpKind::Pooling, Operator::AvgPool2d { kernel, stride }) => {
                    let in_node = node.inputs.first().ok_or_else(|| mismatch("pool input"))?;
                    let (ih, iw) = shapes[in_node].spatial();
                    (
                        ProgramKind::AvgPool(PoolGeom {
                            kernel: *kernel,
                            stride: *stride,
                            ih,
                            iw,
                        }),
                        true,
                        false,
                    )
                }
                (CoreOpKind::Pooling, Operator::GlobalAvgPool) => {
                    let in_node = node.inputs.first().ok_or_else(|| mismatch("gap input"))?;
                    let (ih, iw) = shapes[in_node].spatial();
                    (ProgramKind::GlobalAvgPool { window: ih * iw }, true, false)
                }
                (CoreOpKind::Pooling, Operator::MaxPool2d { kernel, stride }) => {
                    // Stage 2 tiles have a same-node pooling predecessor.
                    let stage1 = core
                        .predecessors(gid)
                        .into_iter()
                        .find(|&p| core.groups()[p].source_node == g.source_node);
                    match stage1 {
                        Some(source) => (ProgramKind::MaxStage2 { source }, true, false),
                        None => {
                            // The construct's structural width is 2·block
                            // (the approximation MLP), but its functional
                            // output is the paired stage-2 tile's block of
                            // window maxima.
                            let stage2 = core
                                .successors(gid)
                                .into_iter()
                                .find(|&s| core.groups()[s].source_node == g.source_node)
                                .ok_or_else(|| {
                                    mismatch(format!(
                                        "max-pool stage-1 tile {} has no stage-2 consumer",
                                        g.name
                                    ))
                                })?;
                            functional_cols = Some(core.groups()[stage2].cols);
                            let in_node =
                                node.inputs.first().ok_or_else(|| mismatch("pool input"))?;
                            let (ih, iw) = shapes[in_node].spatial();
                            (
                                ProgramKind::MaxStage1(PoolGeom {
                                    kernel: *kernel,
                                    stride: *stride,
                                    ih,
                                    iw,
                                }),
                                false,
                                false,
                            )
                        }
                    }
                }
                (CoreOpKind::Eltwise, Operator::Add) => {
                    let mut views = Vec::new();
                    for &input in &node.inputs {
                        views.push(reference::resolve_view(graph, &shapes, &[input])?);
                    }
                    (ProgramKind::Eltwise(views), true, false)
                }
                (kind, op) => {
                    return Err(mismatch(format!(
                        "group {} of kind {:?} does not match operator {}",
                        g.name,
                        kind,
                        op.mnemonic()
                    )));
                }
            };

            // Realize the tile's weight matrix per precision.
            let (weights_f, weights_q) = if has_weights {
                let layer = params
                    .weights(g.source_node)
                    .ok_or_else(|| mismatch(format!("node {} has no parameters", node.name)))?;
                let input_dim = weights::weight_input_dim(&node.op)
                    .ok_or_else(|| mismatch("weighted group on weight-free operator"))?;
                if !weights::tile_fits(g, layer, input_dim) {
                    return Err(mismatch(format!(
                        "tile {} exceeds the parameters of node {}",
                        g.name, node.name
                    )));
                }
                let exact = weights::vmm_tile_matrix(g, layer, input_dim);
                let mut range = || {
                    *weight_ranges
                        .entry(g.source_node)
                        .or_insert_with(|| params.max_abs_weight(g.source_node).max(1e-6))
                };
                match precision {
                    Precision::Float => (vec![exact], Vec::new()),
                    Precision::QuantizedWeights => {
                        let q = Quantizer::weights_8bit(range());
                        (
                            vec![exact.iter().map(|&w| q.round_trip(w)).collect()],
                            Vec::new(),
                        )
                    }
                    Precision::Integer(plan) => {
                        let wstep = plan.weight_step(g.source_node);
                        let codes = exact
                            .iter()
                            .map(|&w| quantize_code(f64::from(w), wstep, wlevels))
                            .collect();
                        // Integer execution reads only the codes; keeping
                        // the float tiles too would double the bound
                        // model's weight memory for nothing.
                        (vec![Vec::new()], codes)
                    }
                    Precision::Noisy {
                        scheme,
                        variation,
                        seed,
                    } => {
                        let range = range();
                        let q = Quantizer::weights_8bit(range);
                        let per_dup = (0..duplicates)
                            .map(|dup| {
                                let mut rng = StdRng::seed_from_u64(seeds::derive(
                                    *seed,
                                    seeds::STREAM_PE_NOISE,
                                    seeds::pe_index(noise_group_offset + gid, dup),
                                ));
                                exact
                                    .iter()
                                    .map(|&w| {
                                        let rt = q.round_trip(w);
                                        let normalized = f64::from(rt) / f64::from(range);
                                        let realized = scheme.realize_signed_weight(
                                            normalized, *variation, &mut rng,
                                        );
                                        (realized * f64::from(range)) as f32
                                    })
                                    .collect()
                            })
                            .collect();
                        (per_dup, Vec::new())
                    }
                }
            } else {
                (vec![Vec::new()], Vec::new())
            };

            // Pack the realizations into the shared weight slabs; the program
            // keeps only `(offset, len)` spans.
            let mut w_f = Vec::with_capacity(weights_f.len());
            for m in weights_f {
                let off = u32::try_from(wslab_f.len())
                    .map_err(|_| mismatch("float weight slab exceeds u32 range"))?;
                let len = u32::try_from(m.len())
                    .map_err(|_| mismatch("weight tile exceeds u32 range"))?;
                wslab_f.extend_from_slice(&m);
                w_f.push((off, len));
            }
            let w_q = {
                let off = u32::try_from(wslab_q.len())
                    .map_err(|_| mismatch("integer weight slab exceeds u32 range"))?;
                let len = u32::try_from(weights_q.len())
                    .map_err(|_| mismatch("weight tile exceeds u32 range"))?;
                wslab_q.extend_from_slice(&weights_q);
                (off, len)
            };

            programs.push(TileProgram {
                group: gid,
                node: g.source_node,
                kind,
                relu: g.relu,
                writes_output,
                positions: info.positions,
                cols: functional_cols.unwrap_or(g.cols),
                col_offset: g.col_offset,
                rows: g.rows,
                row_offset: g.row_offset,
                w_f,
                w_q,
                duplicates: duplicates.max(1),
            });
        }

        let outputs = graph.outputs();
        let [output] = outputs[..] else {
            return Err(mismatch(format!(
                "execution needs one output node, got {outputs:?}"
            )));
        };
        let output_view = reference::resolve_view(graph, &shapes, &[output])?;
        let input_nodes: Vec<(NodeId, usize)> = graph
            .nodes()
            .iter()
            .filter_map(|n| match n.op {
                Operator::Input { shape } => Some((n.id, shape.elements())),
                _ => None,
            })
            .collect();
        let [input] = input_nodes[..] else {
            return Err(mismatch(format!(
                "execution needs one input node, got {}",
                input_nodes.len()
            )));
        };
        let (output_steps, node_steps, activation_levels) = match plan {
            Some(p) => (
                output_view
                    .iter()
                    .map(|s| p.activation_step(s.source))
                    .collect(),
                (0..graph.len()).map(|n| p.activation_step(n)).collect(),
                p.activation_levels(),
            ),
            None => (vec![1.0; output_view.len()], vec![1.0; graph.len()], 0),
        };

        #[cfg(feature = "shadow-interp")]
        let max_cols = programs.iter().map(|p| p.cols).max().unwrap_or(0);
        // Lower the bound programs into the bytecode stream the runs
        // dispatch over (see `crate::lower`); the weight slabs move into the
        // lowered artifact.
        let mut lowered = lower::lower(LowerCtx {
            programs: &programs,
            nodes: &nodes,
            graph_len: graph.len(),
            input,
            node_steps: &node_steps,
            integer: plan.is_some(),
            wslab_f,
            wslab_q,
        })?;
        // Pick the MAC kernel family once per bind; the dispatch loops just
        // match on the stored selector.
        lowered.simd = crate::kernels::Simd::detect();
        let out_regions = output_view
            .iter()
            .zip(&output_steps)
            .map(|(segment, &step)| {
                lowered.node_regions[segment.source]
                    .map(|region| (region, step))
                    .ok_or_else(|| mismatch("output node never executed"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Executor {
            programs,
            #[cfg(feature = "shadow-interp")]
            nodes,
            graph_len: graph.len(),
            #[cfg(feature = "shadow-interp")]
            group_count: core.len(),
            input: Some(input),
            #[cfg(feature = "shadow-interp")]
            output_view,
            #[cfg(feature = "shadow-interp")]
            output_steps,
            precision_integer: plan.is_some(),
            activation_levels,
            node_steps,
            #[cfg(feature = "shadow-interp")]
            max_cols,
            lowered,
            out_regions,
        })
    }

    /// Whether the executor runs in the integer-code domain.
    pub fn is_integer(&self) -> bool {
        self.precision_integer
    }

    /// The realized float weight matrix of a group's duplicate (`None` for
    /// weight-free tiles, and in [`Precision::Integer`] where only the
    /// codes are kept) — lets tests pin the realization bit for bit.
    pub fn tile_weights(&self, group: GroupId, duplicate: u64) -> Option<&[f32]> {
        self.programs
            .iter()
            .find(|p| p.group == group)
            .map(|p| {
                let (off, len) = p.w_f[(duplicate as usize) % p.w_f.len()];
                &self.lowered.wslab_f[off as usize..(off + len) as usize]
            })
            .filter(|w| !w.is_empty())
    }

    /// Human-readable disassembly of the first `limit` lowered bytecode
    /// instructions — the debug window into what [`Executor::bind`] compiled.
    pub fn disassemble(&self, limit: usize) -> String {
        self.lowered.disassemble(limit)
    }

    /// What lowering did to this model: instruction and row-run counts,
    /// structural sparsity skips, view aliasing, and flat slab sizes.
    pub fn lowering_stats(&self) -> &LowerStats {
        &self.lowered.stats
    }

    /// A fresh scratch arena sized for this executor (see [`ExecArena`]).
    pub fn arena(&self) -> ExecArena {
        ExecArena::new()
    }

    /// The element count the graph's input node expects.
    pub fn input_len(&self) -> Option<usize> {
        self.input.map(|(_, len)| len)
    }

    /// Execute one sample, returning the network logits.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ModelMismatch`] when the input length is wrong.
    pub fn run(&self, input: &[f32]) -> Result<Vec<f32>, ExecError> {
        let tracer = Tracer::global();
        let span = if tracer.enabled() {
            tracer.enter("exec.run", "exec", tracer.now_us(), SpanId::NONE)
        } else {
            fpsa_obs::Span::DISABLED
        };
        let mut arena = ExecArena::new();
        let mut out = Vec::new();
        let result = self.run_into(input, &mut arena, &mut out);
        if !span.id.is_none() {
            let ts = tracer.now_us();
            if result.is_err() {
                tracer.record(&span, "failed", 1, ts);
            }
            tracer.exit(&span, ts);
        }
        result.map(|()| out)
    }

    /// Execute one sample into `out`, reusing `arena` for all scratch.
    ///
    /// Bit-identical to [`Executor::run`] (which is this call on a throwaway
    /// arena); the arena only changes where the intermediates live, never the
    /// arithmetic. `out` is cleared and refilled, retaining its capacity.
    ///
    /// # Errors
    ///
    /// Mirrors [`Executor::run`].
    pub fn run_into(
        &self,
        input: &[f32],
        arena: &mut ExecArena,
        out: &mut Vec<f32>,
    ) -> Result<(), ExecError> {
        out.clear();
        if self.precision_integer {
            self.run_integer_bc(input, arena)?;
        } else {
            self.run_float_bc(input, arena)?;
        }
        self.extract_output(arena, out);
        Ok(())
    }

    /// Copy the output nodes' lowered regions into `out` (dequantizing codes
    /// in the integer domain).
    fn extract_output(&self, arena: &ExecArena, out: &mut Vec<f32>) {
        if self.precision_integer {
            self.output_from_i(&arena.val_i, out);
        } else {
            self.output_from_f(&arena.val_f, out);
        }
    }

    /// Extract the float output segments from one value slab.
    fn output_from_f(&self, vals: &[f32], out: &mut Vec<f32>) {
        out.clear();
        for &(region, _) in &self.out_regions {
            out.extend_from_slice(&vals[region.range()]);
        }
    }

    /// Extract + dequantize the integer output segments from one value slab.
    fn output_from_i(&self, vals: &[i64], out: &mut Vec<f32>) {
        out.clear();
        for &(region, step) in &self.out_regions {
            out.extend(
                vals[region.range()]
                    .iter()
                    .map(|&c| (c as f64 * step) as f32),
            );
        }
    }

    /// Dispatch the float bytecode stream over the arena's flat slabs.
    fn run_float_bc(&self, input: &[f32], arena: &mut ExecArena) -> Result<(), ExecError> {
        let in_node = self.checked_input_node(input)?;
        let region = self.lowered.node_regions[in_node].expect("input region is lowered");
        let vals = grab(&mut arena.val_f, self.lowered.val_len);
        let parts = grab(&mut arena.part_f, self.lowered.part_len);
        vals[region.range()].copy_from_slice(input);
        self.lowered.exec_float(vals, parts, &mut arena.mac);
        Ok(())
    }

    /// Dispatch the integer bytecode stream: quantize the sample into the
    /// input node's region, then run the code-domain stream.
    fn run_integer_bc(&self, input: &[f32], arena: &mut ExecArena) -> Result<(), ExecError> {
        let in_node = self.checked_input_node(input)?;
        let region = self.lowered.node_regions[in_node].expect("input region is lowered");
        let step = self.node_steps[in_node];
        let alevels = self.activation_levels;
        let vals = grab(&mut arena.val_i, self.lowered.val_len);
        let parts = grab(&mut arena.part_i, self.lowered.part_len);
        for (dst, &v) in vals[region.range()].iter_mut().zip(input) {
            *dst = quantize_code(f64::from(v), step, alevels);
        }
        self.lowered
            .exec_integer(vals, parts, alevels, &mut arena.mac);
        Ok(())
    }

    /// Execute a batch of samples sequentially on one replica's arena,
    /// writing into `outputs` (resized to the batch, element capacity
    /// recycled). This is the serving engine's hot path: after warm-up the
    /// call performs zero scratch allocation, and results are bit-identical
    /// to per-sample [`Executor::run`] calls.
    ///
    /// Parallelism is deliberately left to the caller (one arena serves one
    /// thread); the rayon-backed [`Executor::run_batch`] fans out
    /// sample-parallel instead.
    ///
    /// # Errors
    ///
    /// The first per-sample error, if any; `outputs` is then truncated to
    /// the samples that completed, so it can never expose stale results
    /// from a previous batch.
    pub fn run_batch_into(
        &self,
        inputs: &[Vec<f32>],
        arena: &mut ExecArena,
        outputs: &mut Vec<Vec<f32>>,
    ) -> Result<(), ExecError> {
        let tracer = Tracer::global();
        if !tracer.enabled() {
            return self.run_batch_into_untraced(inputs, arena, outputs);
        }
        let span = tracer.enter_with(
            "exec.batch",
            "exec",
            tracer.now_us(),
            SpanId::NONE,
            &[("batch", inputs.len() as i64)],
        );
        let result = self.run_batch_into_untraced(inputs, arena, outputs);
        let ts = tracer.now_us();
        if result.is_err() {
            tracer.record(&span, "failed", 1, ts);
        }
        tracer.exit(&span, ts);
        result
    }

    /// [`Executor::run_batch_into`] minus the span bracket: the telemetry
    /// A/B baseline the obs overhead bench compares against. Not part of
    /// the public API contract.
    #[doc(hidden)]
    pub fn run_batch_into_untraced(
        &self,
        inputs: &[Vec<f32>],
        arena: &mut ExecArena,
        outputs: &mut Vec<Vec<f32>>,
    ) -> Result<(), ExecError> {
        // The instruction-major fast path needs every sample validated up
        // front; a batch with a malformed sample (or a single sample) takes
        // the sequential path, which preserves the documented truncation
        // contract exactly.
        let all_valid = inputs.iter().all(|i| self.checked_input_node(i).is_ok());
        if inputs.len() < 2 || !all_valid {
            outputs.resize_with(inputs.len(), Vec::new);
            for (i, input) in inputs.iter().enumerate() {
                if let Err(e) = self.run_into(input, arena, &mut outputs[i]) {
                    outputs.truncate(i);
                    return Err(e);
                }
            }
            return Ok(());
        }

        // Weight-stationary batch execution: all samples' slabs are laid out
        // back to back and the stream runs instruction-major, so each weight
        // tile streams from memory once per batch instead of once per
        // sample. Per-sample arithmetic and ordering are untouched —
        // bit-identical to sequential `run_into` calls.
        let b = inputs.len();
        let in_node = self.checked_input_node(&inputs[0])?;
        let region = self.lowered.node_regions[in_node].expect("input region is lowered");
        let (val_len, part_len) = (self.lowered.val_len, self.lowered.part_len);
        outputs.resize_with(b, Vec::new);
        if self.precision_integer {
            let step = self.node_steps[in_node];
            let alevels = self.activation_levels;
            let vals = grab(&mut arena.val_i, b * val_len);
            let parts = grab(&mut arena.part_i, b * part_len);
            for (s, input) in inputs.iter().enumerate() {
                let dst = s * val_len + region.off as usize;
                for (dst, &v) in vals[dst..dst + region.len as usize].iter_mut().zip(input) {
                    *dst = quantize_code(f64::from(v), step, alevels);
                }
            }
            self.lowered
                .exec_integer_batch(vals, parts, b, alevels, &mut arena.mac);
            for (s, out) in outputs.iter_mut().enumerate() {
                self.output_from_i(&arena.val_i[s * val_len..(s + 1) * val_len], out);
            }
        } else {
            let vals = grab(&mut arena.val_f, b * val_len);
            let parts = grab(&mut arena.part_f, b * part_len);
            for (s, input) in inputs.iter().enumerate() {
                let dst = s * val_len + region.off as usize;
                vals[dst..dst + region.len as usize].copy_from_slice(input);
            }
            self.lowered
                .exec_float_batch(vals, parts, b, &mut arena.mac);
            for (s, out) in outputs.iter_mut().enumerate() {
                self.output_from_f(&arena.val_f[s * val_len..(s + 1) * val_len], out);
            }
        }
        Ok(())
    }

    /// Execute one sample in the integer domain, returning the output codes
    /// (for bit-for-bit comparison with the quantized reference).
    ///
    /// # Errors
    ///
    /// [`ExecError::Unsupported`] outside [`Precision::Integer`].
    pub fn run_codes(&self, input: &[f32]) -> Result<Vec<i64>, ExecError> {
        if !self.precision_integer {
            return Err(ExecError::Unsupported {
                reason: "run_codes requires Precision::Integer".into(),
            });
        }
        let mut arena = ExecArena::new();
        self.run_integer_bc(input, &mut arena)?;
        let mut out = Vec::new();
        for &(region, _) in &self.out_regions {
            out.extend_from_slice(&arena.val_i[region.range()]);
        }
        Ok(out)
    }

    /// Execute one sample and return per-node activation buffers (dequantized
    /// in integer mode) — the hook for per-layer differential comparison.
    ///
    /// # Errors
    ///
    /// Mirrors [`Executor::run`].
    pub fn run_nodes(&self, input: &[f32]) -> Result<Vec<Option<Vec<f32>>>, ExecError> {
        let mut arena = ExecArena::new();
        if self.precision_integer {
            self.run_integer_bc(input, &mut arena)?;
            Ok((0..self.graph_len)
                .map(|node| {
                    self.lowered.node_regions[node].map(|region| {
                        arena.val_i[region.range()]
                            .iter()
                            .map(|&c| (c as f64 * self.node_steps[node]) as f32)
                            .collect()
                    })
                })
                .collect())
        } else {
            self.run_float_bc(input, &mut arena)?;
            Ok((0..self.graph_len)
                .map(|node| {
                    self.lowered.node_regions[node]
                        .map(|region| arena.val_f[region.range()].to_vec())
                })
                .collect())
        }
    }

    /// Execute one sample on the retired interpreter (the shadow reference
    /// the bytecode stream is differentially checked against).
    ///
    /// # Errors
    ///
    /// Mirrors [`Executor::run`].
    #[cfg(feature = "shadow-interp")]
    pub fn run_interpreted(&self, input: &[f32]) -> Result<Vec<f32>, ExecError> {
        let mut out = Vec::new();
        self.run_interpreted_into(input, &mut ExecArena::new(), &mut out)?;
        Ok(out)
    }

    /// [`Executor::run_interpreted`] with a caller-owned arena: the
    /// interpreter exactly as the pre-bytecode `run_into` hot path ran it,
    /// bind- and allocation-amortized. This is the baseline the forward-pass
    /// speedup bench measures the bytecode stream against.
    ///
    /// # Errors
    ///
    /// Same surface as [`Executor::run_into`].
    #[cfg(feature = "shadow-interp")]
    pub fn run_interpreted_into(
        &self,
        input: &[f32],
        arena: &mut ExecArena,
        out: &mut Vec<f32>,
    ) -> Result<(), ExecError> {
        out.clear();
        if self.precision_integer {
            self.run_integer_arena(input, arena)?;
        } else {
            self.run_float_arena(input, arena)?;
        }
        out.extend_from_slice(&self.interpreted_output(arena)?);
        Ok(())
    }

    /// Gather the interpreter arena's output nodes (dequantized in the
    /// integer domain) — the pre-bytecode `run_into` extraction.
    #[cfg(feature = "shadow-interp")]
    fn interpreted_output(&self, arena: &ExecArena) -> Result<Vec<f32>, ExecError> {
        let mut out = Vec::new();
        if self.precision_integer {
            for (segment, &step) in self.output_view.iter().zip(&self.output_steps) {
                let codes = arena
                    .node_i
                    .get(segment.source, arena.epoch)
                    .ok_or_else(|| mismatch("output node never executed"))?;
                out.extend(codes.iter().map(|&c| (c as f64 * step) as f32));
            }
        } else {
            for segment in &self.output_view {
                out.extend_from_slice(
                    arena
                        .node_f
                        .get(segment.source, arena.epoch)
                        .ok_or_else(|| mismatch("output node never executed"))?,
                );
            }
        }
        Ok(out)
    }

    /// Execute one sample on **both** the bytecode stream and the shadow
    /// interpreter, asserting bit-identical activations for every lowered
    /// node (`f32` bit patterns / `i64` codes) and bit-identical outputs,
    /// then return the bytecode output. This is the differential suite's
    /// cross-check: it is what lets the repo keep exactly one production
    /// executor.
    ///
    /// # Panics
    ///
    /// Panics when any node buffer or output diverges — a lowering bug.
    ///
    /// # Errors
    ///
    /// Mirrors [`Executor::run`].
    #[cfg(feature = "shadow-interp")]
    pub fn run_checked(&self, input: &[f32]) -> Result<Vec<f32>, ExecError> {
        let mut bc = ExecArena::new();
        let mut shadow = ExecArena::new();
        if self.precision_integer {
            self.run_integer_bc(input, &mut bc)?;
            self.run_integer_arena(input, &mut shadow)?;
            for node in 0..self.graph_len {
                let Some(region) = self.lowered.node_regions[node] else {
                    continue;
                };
                let got = &bc.val_i[region.range()];
                let want = shadow
                    .node_i
                    .get(node, shadow.epoch)
                    .ok_or_else(|| mismatch("interpreter skipped a lowered node"))?;
                assert_eq!(
                    got, want,
                    "bytecode diverged from the interpreter at node {node}"
                );
            }
        } else {
            self.run_float_bc(input, &mut bc)?;
            self.run_float_arena(input, &mut shadow)?;
            for node in 0..self.graph_len {
                let Some(region) = self.lowered.node_regions[node] else {
                    continue;
                };
                let got = &bc.val_f[region.range()];
                let want = shadow
                    .node_f
                    .get(node, shadow.epoch)
                    .ok_or_else(|| mismatch("interpreter skipped a lowered node"))?;
                assert_eq!(got.len(), want.len(), "node {node} length diverged");
                for (i, (g, w)) in got.iter().zip(want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "bytecode diverged from the interpreter at node {node}[{i}]: {g} vs {w}"
                    );
                }
            }
        }
        let mut out = Vec::new();
        self.extract_output(&bc, &mut out);
        let interpreted = self.interpreted_output(&shadow)?;
        assert_eq!(out.len(), interpreted.len(), "output length diverged");
        for (i, (g, w)) in out.iter().zip(&interpreted).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "output[{i}] diverged: {g} vs {w}");
        }
        Ok(out)
    }

    /// Execute a batch of samples in parallel (rayon), preserving order.
    /// Weight noise is realized at bind time and per-sample execution is
    /// pure, so results are bit-identical to running samples sequentially,
    /// for any thread count or chunking.
    ///
    /// # Errors
    ///
    /// The first per-sample error, if any.
    pub fn run_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ExecError> {
        let results: Vec<Result<Vec<f32>, ExecError>> =
            inputs.par_iter().map(|x| self.run(x)).collect();
        results.into_iter().collect()
    }

    /// Classification accuracy over a labelled sample set (argmax of logits).
    ///
    /// # Errors
    ///
    /// Propagates per-sample execution errors.
    pub fn accuracy(&self, samples: &[Vec<f32>], labels: &[usize]) -> Result<f64, ExecError> {
        if samples.is_empty() {
            return Ok(0.0);
        }
        let outputs = self.run_batch(samples)?;
        let correct = outputs
            .iter()
            .zip(labels)
            .filter(|(logits, &label)| fpsa_nn::mlp::argmax(logits) == label)
            .count();
        Ok(correct as f64 / samples.len() as f64)
    }

    /// Float-domain execution of all tile programs in schedule order, into
    /// the arena's epoch-stamped buffers.
    ///
    /// The Dense/Conv inner loops run column-major over the accumulator row
    /// (`for r { for c { acc[c] += w[r][c] * x[r] } }`): each output's f64
    /// accumulator still receives its terms in exactly the same `r` order as
    /// the classic `for c { for r { .. } }` nesting, so results are
    /// bit-identical — but the weight matrix is now read contiguously, which
    /// is what makes the serving hot path fast.
    #[cfg(feature = "shadow-interp")]
    fn run_float_arena(&self, input: &[f32], arena: &mut ExecArena) -> Result<(), ExecError> {
        arena.epoch += 1;
        let epoch = arena.epoch;
        let ExecArena {
            node_f,
            gather_f,
            partial_f,
            acc_f,
            eltwise_f,
            ..
        } = arena;
        node_f.ensure(self.graph_len);
        gather_f.ensure(self.graph_len);
        partial_f.ensure(self.group_count);
        acc_f.resize(self.max_cols, 0.0);

        let in_node = self.checked_input_node(input)?;
        node_f.claim(in_node, epoch).extend_from_slice(input);

        for prog in &self.programs {
            let info = self.nodes[prog.node].as_ref().expect("bound node info");
            if needs_gather(&prog.kind) && !gather_f.live(prog.node, epoch) {
                let dst = gather_f.claim(prog.node, epoch);
                dst.reserve(info.view.iter().map(|s| s.elements).sum());
                for segment in &info.view {
                    dst.extend_from_slice(
                        node_f
                            .get(segment.source, epoch)
                            .ok_or_else(|| mismatch("producer executed after consumer"))?,
                    );
                }
            }
            let positions = prog.positions;
            if prog.writes_output {
                if !node_f.live(prog.node, epoch) {
                    node_f.claim_zeroed(prog.node, info.elements, epoch);
                }
            } else {
                partial_f.claim_zeroed(prog.group, positions * prog.cols, epoch);
            }
            // Element-wise tiles read each Add side once per program.
            if let ProgramKind::Eltwise(views) = &prog.kind {
                if eltwise_f.len() < views.len() {
                    eltwise_f.resize_with(views.len(), Vec::new);
                }
                for (side, view) in eltwise_f.iter_mut().zip(views) {
                    side.clear();
                    for segment in view {
                        side.extend_from_slice(
                            node_f
                                .get(segment.source, epoch)
                                .ok_or_else(|| mismatch("producer executed after consumer"))?,
                        );
                    }
                }
            }

            let acc = &mut acc_f[..prog.cols];
            for p in 0..positions {
                match &prog.kind {
                    ProgramKind::Dense => {
                        let x = gather_f.get(prog.node, epoch).expect("gathered input");
                        let w = self.interp_weights(prog, p);
                        acc.fill(0.0);
                        for r in 0..prog.rows {
                            let xv = f64::from(x[prog.row_offset + r]);
                            let row = &w[r * prog.cols..(r + 1) * prog.cols];
                            for (a, &wv) in acc.iter_mut().zip(row) {
                                *a += f64::from(wv) * xv;
                            }
                        }
                    }
                    ProgramKind::Conv(geom) => {
                        let x = gather_f.get(prog.node, epoch).expect("gathered input");
                        let w = self.interp_weights(prog, p);
                        let (oy, ox) = (p / out_w(geom), p % out_w(geom));
                        acc.fill(0.0);
                        for r in 0..prog.rows {
                            if let Some(idx) = conv_input_index(geom, prog.row_offset + r, oy, ox) {
                                let xv = f64::from(x[idx]);
                                let row = &w[r * prog.cols..(r + 1) * prog.cols];
                                for (a, &wv) in acc.iter_mut().zip(row) {
                                    *a += f64::from(wv) * xv;
                                }
                            }
                        }
                    }
                    ProgramKind::Reduce(sources) => {
                        for (c, a) in acc.iter_mut().enumerate() {
                            let mut sum = 0.0f64;
                            for &(pred, pred_cols, slice) in sources {
                                sum += partial_f.get(pred, epoch).ok_or_else(|| {
                                    mismatch("reduction ran before its partial tiles")
                                })?[p * pred_cols + slice + c];
                            }
                            *a = sum;
                        }
                    }
                    ProgramKind::AvgPool(geom) => {
                        let x = gather_f.get(prog.node, epoch).expect("gathered input");
                        let ow = out_w_pool(geom);
                        let (oy, ox) = (p / ow, p % ow);
                        for (c, a) in acc.iter_mut().enumerate() {
                            let channel = prog.col_offset + c;
                            let mut sum = 0.0f64;
                            for ky in 0..geom.kernel {
                                for kx in 0..geom.kernel {
                                    sum += f64::from(
                                        x[channel * geom.ih * geom.iw
                                            + (oy * geom.stride + ky) * geom.iw
                                            + ox * geom.stride
                                            + kx],
                                    );
                                }
                            }
                            *a = sum / (geom.kernel * geom.kernel) as f64;
                        }
                    }
                    ProgramKind::GlobalAvgPool { window } => {
                        let x = gather_f.get(prog.node, epoch).expect("gathered input");
                        for (c, a) in acc.iter_mut().enumerate() {
                            let channel = prog.col_offset + c;
                            let sum: f64 = (0..*window)
                                .map(|i| f64::from(x[channel * window + i]))
                                .sum();
                            *a = sum / *window as f64;
                        }
                    }
                    ProgramKind::MaxStage1(geom) => {
                        let x = gather_f.get(prog.node, epoch).expect("gathered input");
                        let ow = out_w_pool(geom);
                        let (oy, ox) = (p / ow, p % ow);
                        for (c, a) in acc.iter_mut().enumerate() {
                            let channel = prog.col_offset + c;
                            let mut max = f64::NEG_INFINITY;
                            for ky in 0..geom.kernel {
                                for kx in 0..geom.kernel {
                                    max = max.max(f64::from(
                                        x[channel * geom.ih * geom.iw
                                            + (oy * geom.stride + ky) * geom.iw
                                            + ox * geom.stride
                                            + kx],
                                    ));
                                }
                            }
                            *a = max;
                        }
                    }
                    ProgramKind::MaxStage2 { source } => {
                        let stage1 = partial_f
                            .get(*source, epoch)
                            .ok_or_else(|| mismatch("max-pool stage 2 ran before stage 1"))?;
                        for (c, a) in acc.iter_mut().enumerate() {
                            *a = stage1[p * prog.cols + c];
                        }
                    }
                    ProgramKind::Eltwise(views) => {
                        for (c, a) in acc.iter_mut().enumerate() {
                            let channel = prog.col_offset + c;
                            let mut sum = 0.0f64;
                            for x in &eltwise_f[..views.len()] {
                                sum += f64::from(x[channel * positions + p]);
                            }
                            *a = sum;
                        }
                    }
                }
                // Scatter the accumulator row (fused ReLU at output
                // boundaries), exactly like the pre-arena store path.
                if prog.writes_output {
                    let buf = node_f.get_mut(prog.node, epoch).expect("allocated output");
                    for (c, &a) in acc.iter().enumerate() {
                        let a = if prog.relu { a.max(0.0) } else { a };
                        buf[(prog.col_offset + c) * positions + p] = a as f32;
                    }
                } else {
                    let out = partial_f
                        .get_mut(prog.group, epoch)
                        .expect("allocated partial");
                    for (c, &a) in acc.iter().enumerate() {
                        out[p * prog.cols + c] = a;
                    }
                }
            }
        }
        Ok(())
    }

    /// Integer-domain execution (see module docs; bit-for-bit against the
    /// quantized reference), into the arena's epoch-stamped buffers.
    #[cfg(feature = "shadow-interp")]
    fn run_integer_arena(&self, input: &[f32], arena: &mut ExecArena) -> Result<(), ExecError> {
        let alevels = self.activation_levels;
        arena.epoch += 1;
        let epoch = arena.epoch;
        let ExecArena {
            node_i,
            gather_i,
            partial_i,
            acc_i,
            eltwise_i,
            ..
        } = arena;
        node_i.ensure(self.graph_len);
        gather_i.ensure(self.graph_len);
        partial_i.ensure(self.group_count);
        acc_i.resize(self.max_cols, 0);

        let in_node = self.checked_input_node(input)?;
        let step = self.node_steps[in_node];
        let buf = node_i.claim(in_node, epoch);
        buf.extend(
            input
                .iter()
                .map(|&v| quantize_code(f64::from(v), step, alevels)),
        );

        for prog in &self.programs {
            let info = self.nodes[prog.node].as_ref().expect("bound node info");
            if needs_gather(&prog.kind) && !gather_i.live(prog.node, epoch) {
                // Gather the node's logical input codes at the view's gather
                // step — exactly the reference's rule.
                let dst = gather_i.claim(prog.node, epoch);
                for segment in &info.view {
                    let step = self.node_steps[segment.source];
                    let codes = node_i
                        .get(segment.source, epoch)
                        .ok_or_else(|| mismatch("producer executed after consumer"))?;
                    dst.extend(
                        codes
                            .iter()
                            .map(|&c| rescale_code(c, step, info.gather_step, alevels)),
                    );
                }
            }
            let positions = prog.positions;
            if prog.writes_output {
                if !node_i.live(prog.node, epoch) {
                    node_i.claim_zeroed(prog.node, info.elements, epoch);
                }
            } else {
                partial_i.claim_zeroed(prog.group, positions * prog.cols, epoch);
            }
            // Element-wise tiles: gather each Add side once, already
            // rescaled from the side's own gather step to the node's —
            // the reference's exact double-rescale composition.
            if let ProgramKind::Eltwise(views) = &prog.kind {
                if eltwise_i.len() < views.len() {
                    eltwise_i.resize_with(views.len(), Vec::new);
                }
                for (side, view) in eltwise_i.iter_mut().zip(views) {
                    side.clear();
                    let sstep = side_gather_step(&self.node_steps, view);
                    for segment in view {
                        let step = self.node_steps[segment.source];
                        let codes = node_i
                            .get(segment.source, epoch)
                            .ok_or_else(|| mismatch("producer executed after consumer"))?;
                        side.extend(codes.iter().map(|&c| {
                            let gathered = rescale_code(c, step, sstep, alevels);
                            rescale_code(gathered, sstep, info.gather_step, alevels)
                        }));
                    }
                }
            }

            // MAC-producing tiles requantize on store; the other kinds
            // compute their final code (or raw partial value) directly.
            let mac_store = matches!(
                prog.kind,
                ProgramKind::Dense | ProgramKind::Conv(_) | ProgramKind::Reduce(_)
            );
            let acc = &mut acc_i[..prog.cols];
            for p in 0..positions {
                match &prog.kind {
                    ProgramKind::Dense => {
                        let x = gather_i.get(prog.node, epoch).expect("gathered input");
                        let wq = self.interp_weights_q(prog);
                        acc.fill(0);
                        for r in 0..prog.rows {
                            let xv = x[prog.row_offset + r];
                            let row = &wq[r * prog.cols..(r + 1) * prog.cols];
                            for (a, &wv) in acc.iter_mut().zip(row) {
                                *a += wv * xv;
                            }
                        }
                    }
                    ProgramKind::Conv(geom) => {
                        let x = gather_i.get(prog.node, epoch).expect("gathered input");
                        let wq = self.interp_weights_q(prog);
                        let (oy, ox) = (p / out_w(geom), p % out_w(geom));
                        acc.fill(0);
                        for r in 0..prog.rows {
                            if let Some(idx) = conv_input_index(geom, prog.row_offset + r, oy, ox) {
                                let xv = x[idx];
                                let row = &wq[r * prog.cols..(r + 1) * prog.cols];
                                for (a, &wv) in acc.iter_mut().zip(row) {
                                    *a += wv * xv;
                                }
                            }
                        }
                    }
                    ProgramKind::Reduce(sources) => {
                        for (c, a) in acc.iter_mut().enumerate() {
                            let mut sum = 0i64;
                            for &(pred, pred_cols, slice) in sources {
                                sum += partial_i.get(pred, epoch).ok_or_else(|| {
                                    mismatch("reduction ran before its partial tiles")
                                })?[p * pred_cols + slice + c];
                            }
                            *a = sum;
                        }
                    }
                    ProgramKind::AvgPool(geom) => {
                        let x = gather_i.get(prog.node, epoch).expect("gathered input");
                        let ow = out_w_pool(geom);
                        let (oy, ox) = (p / ow, p % ow);
                        for (c, a) in acc.iter_mut().enumerate() {
                            let channel = prog.col_offset + c;
                            let real = pooled_window_real(
                                x,
                                channel,
                                oy,
                                ox,
                                geom.kernel,
                                geom.stride,
                                geom.ih,
                                geom.iw,
                                info.gather_step,
                                false,
                            );
                            *a = quantize_code(real, info.out_step, alevels);
                        }
                    }
                    ProgramKind::GlobalAvgPool { window } => {
                        let x = gather_i.get(prog.node, epoch).expect("gathered input");
                        for (c, a) in acc.iter_mut().enumerate() {
                            let channel = prog.col_offset + c;
                            let sum: i64 = (0..*window).map(|i| x[channel * window + i]).sum();
                            let real = sum as f64 * info.gather_step / *window as f64;
                            *a = quantize_code(real, info.out_step, alevels);
                        }
                    }
                    ProgramKind::MaxStage1(geom) => {
                        let x = gather_i.get(prog.node, epoch).expect("gathered input");
                        let ow = out_w_pool(geom);
                        let (oy, ox) = (p / ow, p % ow);
                        for (c, a) in acc.iter_mut().enumerate() {
                            let channel = prog.col_offset + c;
                            let mut max = i64::MIN;
                            for ky in 0..geom.kernel {
                                for kx in 0..geom.kernel {
                                    max = max.max(
                                        x[channel * geom.ih * geom.iw
                                            + (oy * geom.stride + ky) * geom.iw
                                            + ox * geom.stride
                                            + kx],
                                    );
                                }
                            }
                            *a = max;
                        }
                    }
                    ProgramKind::MaxStage2 { source } => {
                        let stage1 = partial_i
                            .get(*source, epoch)
                            .ok_or_else(|| mismatch("max-pool stage 2 ran before stage 1"))?;
                        for (c, a) in acc.iter_mut().enumerate() {
                            // Identical composition to the reference's
                            // max-pool path: real value, then requantize.
                            let real = stage1[p * prog.cols + c] as f64 * info.gather_step;
                            *a = quantize_code(real, info.out_step, alevels);
                        }
                    }
                    ProgramKind::Eltwise(views) => {
                        for (c, a) in acc.iter_mut().enumerate() {
                            let channel = prog.col_offset + c;
                            let mut sum = 0i64;
                            for x in &eltwise_i[..views.len()] {
                                sum += x[channel * positions + p];
                            }
                            let sum = if prog.relu { sum.max(0) } else { sum };
                            *a = rescale_code(sum, info.gather_step, info.out_step, alevels);
                        }
                    }
                }
                if prog.writes_output {
                    let buf = node_i.get_mut(prog.node, epoch).expect("allocated output");
                    for (c, &a) in acc.iter().enumerate() {
                        let code = if mac_store {
                            requantize_mac(
                                a,
                                info.weight_step,
                                info.gather_step,
                                prog.relu,
                                info.out_step,
                                alevels,
                            )
                        } else {
                            a
                        };
                        buf[(prog.col_offset + c) * positions + p] = code;
                    }
                } else {
                    // Partial tiles keep the raw accumulation (MAC partials
                    // awaiting a reduction, stage-1 window maxima).
                    let out = partial_i
                        .get_mut(prog.group, epoch)
                        .expect("allocated partial");
                    for (c, &a) in acc.iter().enumerate() {
                        out[p * prog.cols + c] = a;
                    }
                }
            }
        }
        Ok(())
    }

    /// The float weight matrix instance `i` of a tile executes on (the
    /// interpreter's per-position duplicate selection, reading the slab).
    #[cfg(feature = "shadow-interp")]
    fn interp_weights(&self, prog: &TileProgram, instance: usize) -> &[f32] {
        let dup = (instance as u64 % prog.duplicates) as usize;
        let (off, len) = prog.w_f[dup % prog.w_f.len()];
        &self.lowered.wslab_f[off as usize..(off + len) as usize]
    }

    /// A tile's integer weight codes (shared across duplicates).
    #[cfg(feature = "shadow-interp")]
    fn interp_weights_q(&self, prog: &TileProgram) -> &[i64] {
        let (off, len) = prog.w_q;
        &self.lowered.wslab_q[off as usize..(off + len) as usize]
    }

    /// The graph's single input node, after validating the sample length.
    fn checked_input_node(&self, input: &[f32]) -> Result<NodeId, ExecError> {
        let (node, len) = self.input_node()?;
        if input.len() != len {
            return Err(mismatch(format!(
                "input has {} elements, graph expects {}",
                input.len(),
                len
            )));
        }
        Ok(node)
    }

    /// `(node id, element count)` of the graph's single input node: every
    /// tile view ultimately reads from it, and the executor records it as
    /// the node every view segment may reference without a producing tile.
    fn input_node(&self) -> Result<(NodeId, usize), ExecError> {
        self.input
            .ok_or_else(|| mismatch("graph has no input node"))
    }
}

/// Views gather the node's logical input for these kinds.
#[cfg(feature = "shadow-interp")]
fn needs_gather(kind: &ProgramKind) -> bool {
    matches!(
        kind,
        ProgramKind::Dense
            | ProgramKind::Conv(_)
            | ProgramKind::AvgPool(_)
            | ProgramKind::GlobalAvgPool { .. }
            | ProgramKind::MaxStage1(_)
    )
}

/// Output width of a convolution node (positions are row-major `oy * ow + ox`).
#[cfg(feature = "shadow-interp")]
fn out_w(geom: &ConvGeom) -> usize {
    (geom.iw + 2 * geom.padding - geom.kernel) / geom.stride + 1
}

/// Output width of a pooling node.
#[cfg(feature = "shadow-interp")]
fn out_w_pool(geom: &PoolGeom) -> usize {
    (geom.iw - geom.kernel) / geom.stride + 1
}

/// The im2col input index of one (absolute row, output position), or `None`
/// for zero padding. Rows are `(channel * k + ky) * k + kx`.
#[cfg(feature = "shadow-interp")]
fn conv_input_index(geom: &ConvGeom, row: usize, oy: usize, ox: usize) -> Option<usize> {
    let k = geom.kernel;
    let channel = row / (k * k);
    let rem = row % (k * k);
    let (ky, kx) = (rem / k, rem % k);
    let y = (oy * geom.stride + ky) as isize - geom.padding as isize;
    let x = (ox * geom.stride + kx) as isize - geom.padding as isize;
    if y < 0 || x < 0 || y >= geom.ih as isize || x >= geom.iw as isize {
        return None;
    }
    Some(channel * geom.ih * geom.iw + y as usize * geom.iw + x as usize)
}

/// The gather step of one Add side's view — mirrors
/// `QuantizationPlan::gather_step` using the executor's cached steps.
pub(crate) fn side_gather_step(node_steps: &[f64], view: &InputView) -> f64 {
    view.iter()
        .map(|s| node_steps[s.source])
        .fold(f64::MIN_POSITIVE, f64::max)
}

/// Tile execution order: schedule entries sorted by start cycle (ties broken
/// by group id, though a valid schedule has none across dependencies).
fn schedule_order(mapping: &Mapping) -> Vec<GroupId> {
    let mut order: Vec<GroupId> = mapping.schedule.entries.iter().map(|e| e.group).collect();
    order.sort_by_key(|&g| {
        (
            mapping
                .schedule
                .entry(g)
                .map(|e| e.start_cycle)
                .unwrap_or(0),
            g,
        )
    });
    order
}

/// Every dependency must execute strictly before its consumer under the
/// start-cycle interpretation the executor uses, and buffered edges must not
/// overlap their producer at all.
fn verify_schedule_order(core: &CoreOpGraph, mapping: &Mapping) -> Result<(), ExecError> {
    let schedule = &mapping.schedule;
    let buffered: HashSet<(GroupId, GroupId)> = schedule.buffered_edges.iter().copied().collect();
    for &(u, v) in core.edges() {
        let (Some(pu), Some(pv)) = (schedule.entry(u), schedule.entry(v)) else {
            return Err(mismatch(format!(
                "schedule misses entries for edge {u}->{v}"
            )));
        };
        let ordered = if buffered.contains(&(u, v)) {
            pv.start_cycle > pu.end_cycle
        } else {
            pv.start_cycle > pu.start_cycle
        };
        if !ordered {
            return Err(ExecError::ScheduleOrder {
                producer: u,
                consumer: v,
            });
        }
    }
    Ok(())
}

/// Every core-graph edge must be carried by netlist nets: direct PE→PE nets
/// covering every consumer duplicate (round-robin over producer duplicates),
/// or producer→SMB→consumer nets for buffered edges.
fn verify_transport(core: &CoreOpGraph, mapping: &Mapping) -> Result<(), ExecError> {
    let netlist = &mapping.netlist;
    let mut pe_block: HashMap<(GroupId, u64), usize> = HashMap::new();
    let mut smb_block: HashMap<(GroupId, GroupId), usize> = HashMap::new();
    for (i, block) in netlist.blocks().iter().enumerate() {
        match *block {
            NetlistBlock::Pe { group, duplicate } => {
                pe_block.insert((group, duplicate), i);
            }
            NetlistBlock::Smb { from, to } => {
                smb_block.insert((from, to), i);
            }
            NetlistBlock::Clb { .. } => {}
        }
    }
    let connections: HashSet<(usize, usize)> = netlist
        .nets()
        .iter()
        .flat_map(|net| net.sinks.iter().map(move |&s| (net.source, s)))
        .collect();
    let buffered: HashSet<(GroupId, GroupId)> =
        mapping.schedule.buffered_edges.iter().copied().collect();

    for &(u, v) in core.edges() {
        let du = mapping.allocation.per_group.get(u).copied().unwrap_or(1);
        let dv = mapping.allocation.per_group.get(v).copied().unwrap_or(1);
        let missing = || ExecError::MissingTransport { from: u, to: v };
        if buffered.contains(&(u, v)) {
            let &smb = smb_block.get(&(u, v)).ok_or_else(missing)?;
            for d in 0..du {
                let &pe = pe_block.get(&(u, d)).ok_or_else(missing)?;
                if !connections.contains(&(pe, smb)) {
                    return Err(missing());
                }
            }
            for d in 0..dv {
                let &pe = pe_block.get(&(v, d)).ok_or_else(missing)?;
                if !connections.contains(&(smb, pe)) {
                    return Err(missing());
                }
            }
        } else {
            for d in 0..dv {
                let &src = pe_block.get(&(u, d % du)).ok_or_else(missing)?;
                let &dst = pe_block.get(&(v, d)).ok_or_else(missing)?;
                if !connections.contains(&(src, dst)) {
                    return Err(missing());
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_mapper::{AllocationPolicy, Mapper};
    use fpsa_nn::reference::Reference;
    use fpsa_nn::zoo;
    use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn compile(graph: &ComputationalGraph, duplication: u64) -> (CoreOpGraph, Mapping) {
        let core = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(graph)
            .expect("zoo models synthesize");
        let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(duplication)).map(&core);
        (core, mapping)
    }

    fn samples(graph: &ComputationalGraph, n: usize) -> Vec<Vec<f32>> {
        let len = graph
            .nodes()
            .iter()
            .find_map(|node| match node.op {
                Operator::Input { shape } => Some(shape.elements()),
                _ => None,
            })
            .expect("graph has an input");
        (0..n)
            .map(|i| {
                let mut rng =
                    StdRng::seed_from_u64(seeds::derive(42, seeds::STREAM_SAMPLES, i as u64));
                (0..len).map(|_| rng.gen_range(0.0f32..1.0)).collect()
            })
            .collect()
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f64 {
        assert_eq!(a.len(), b.len(), "output lengths differ");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (f64::from(x) - f64::from(y)).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn float_execution_matches_reference_on_every_tiny_model() {
        for graph in zoo::differential_suite() {
            let params = GraphParameters::seeded(&graph, 7);
            let (core, mapping) = compile(&graph, 1);
            let exec = Executor::bind(&graph, &params, &core, &mapping, &Precision::Float)
                .unwrap_or_else(|e| panic!("{}: {e}", graph.name));
            let reference = Reference::new(&graph, &params).unwrap();
            for x in samples(&graph, 3) {
                let got = exec.run(&x).unwrap();
                let want = reference.logits(&x).unwrap();
                let diff = max_abs_diff(&got, &want);
                assert!(diff < 1e-4, "{}: max abs diff {diff}", graph.name);
            }
        }
    }

    #[test]
    fn duplicated_mappings_compute_the_same_function() {
        let graph = zoo::tiny_cnn();
        let params = GraphParameters::seeded(&graph, 3);
        let (core, mapping) = compile(&graph, 8);
        assert!(mapping.allocation.total_pes() > core.len());
        let exec = Executor::bind(&graph, &params, &core, &mapping, &Precision::Float).unwrap();
        let reference = Reference::new(&graph, &params).unwrap();
        let x = &samples(&graph, 1)[0];
        let diff = max_abs_diff(&exec.run(x).unwrap(), &reference.logits(x).unwrap());
        assert!(diff < 1e-4, "max abs diff {diff}");
    }

    #[test]
    fn integer_execution_is_bit_identical_to_the_quantized_reference() {
        for graph in zoo::differential_suite() {
            let params = GraphParameters::seeded(&graph, 11);
            let inputs = samples(&graph, 3);
            let plan = QuantizationPlan::calibrate(&graph, &params, &inputs).unwrap();
            let (core, mapping) = compile(&graph, 1);
            let exec = Executor::bind(
                &graph,
                &params,
                &core,
                &mapping,
                &Precision::Integer(plan.clone()),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", graph.name));
            let reference = Reference::new(&graph, &params).unwrap();
            for x in &inputs {
                let got = exec.run_codes(x).unwrap();
                let want = reference.quantized_logits(&plan, x).unwrap();
                assert_eq!(got, want, "{}: integer codes diverged", graph.name);
            }
        }
    }

    #[test]
    fn quantized_weights_match_the_quantizer_reference_bit_for_bit() {
        let graph = zoo::tiny_wide_mlp();
        let params = GraphParameters::seeded(&graph, 5);
        let (core, mapping) = compile(&graph, 1);
        let exec = Executor::bind(
            &graph,
            &params,
            &core,
            &mapping,
            &Precision::QuantizedWeights,
        )
        .unwrap();
        for g in core.groups().iter().filter(|g| g.kind == CoreOpKind::Vmm) {
            let bound = exec.tile_weights(g.id, 0).expect("VMM tiles carry weights");
            let layer = params.weights(g.source_node).unwrap();
            let input_dim =
                weights::weight_input_dim(&graph.node(g.source_node).unwrap().op).unwrap();
            let exact = weights::vmm_tile_matrix(g, layer, input_dim);
            let q = Quantizer::weights_8bit(params.max_abs_weight(g.source_node).max(1e-6));
            for (b, e) in bound.iter().zip(&exact) {
                assert_eq!(*b, q.round_trip(*e), "weight realization diverged");
            }
        }
    }

    #[test]
    fn batched_execution_is_bit_identical_to_sequential() {
        let graph = zoo::tiny_cnn();
        let params = GraphParameters::seeded(&graph, 1);
        let (core, mapping) = compile(&graph, 2);
        let exec = Executor::bind(&graph, &params, &core, &mapping, &Precision::Float).unwrap();
        let inputs = samples(&graph, 8);
        let batched = exec.run_batch(&inputs).unwrap();
        let sequential: Vec<Vec<f32>> = inputs.iter().map(|x| exec.run(x).unwrap()).collect();
        assert_eq!(batched, sequential);
        // And chunked halves agree with the full batch (thread-count proxy).
        let (a, b) = inputs.split_at(3);
        let mut chunked = exec.run_batch(a).unwrap();
        chunked.extend(exec.run_batch(b).unwrap());
        assert_eq!(batched, chunked);
    }

    #[test]
    fn noisy_execution_is_seed_deterministic_and_ideal_noise_is_exact() {
        let graph = zoo::tiny_mlp();
        let params = GraphParameters::seeded(&graph, 2);
        let (core, mapping) = compile(&graph, 1);
        let noisy = |seed: u64, variation: CellVariation| {
            Executor::bind(
                &graph,
                &params,
                &core,
                &mapping,
                &Precision::Noisy {
                    scheme: WeightScheme::fpsa_add(),
                    variation,
                    seed,
                },
            )
            .unwrap()
        };
        let x = &samples(&graph, 1)[0];
        let a = noisy(9, CellVariation::measured()).run(x).unwrap();
        let b = noisy(9, CellVariation::measured()).run(x).unwrap();
        let c = noisy(10, CellVariation::measured()).run(x).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same realization");
        assert_ne!(a, c, "different seeds must program different cells");
        // Ideal devices realize the scheme's noiseless decode: outputs stay
        // within the quantization-error envelope of the float reference.
        let ideal = noisy(0, CellVariation::ideal()).run(x).unwrap();
        let reference = Reference::new(&graph, &params).unwrap();
        let diff = max_abs_diff(&ideal, &reference.logits(x).unwrap());
        assert!(diff < 0.05, "ideal-noise diff {diff} too large");
    }

    #[test]
    fn tampered_netlist_is_rejected_as_missing_transport() {
        let graph = zoo::tiny_mlp();
        let params = GraphParameters::seeded(&graph, 0);
        let (core, mut mapping) = compile(&graph, 1);
        // Drop the last PE→PE net.
        let blocks = mapping.netlist.blocks().to_vec();
        let mut nets = mapping.netlist.nets().to_vec();
        let dropped = nets
            .iter()
            .rposition(|n| {
                mapping.netlist.blocks()[n.source].is_pe()
                    && n.sinks.iter().all(|&s| mapping.netlist.blocks()[s].is_pe())
            })
            .expect("tiny MLP has PE→PE nets");
        nets.remove(dropped);
        mapping.netlist = fpsa_mapper::Netlist::from_parts("tampered", blocks, nets);
        let err = Executor::bind(&graph, &params, &core, &mapping, &Precision::Float).unwrap_err();
        assert!(matches!(err, ExecError::MissingTransport { .. }), "{err}");
    }

    #[test]
    fn tampered_schedule_is_rejected_as_order_violation() {
        let graph = zoo::tiny_mlp();
        let params = GraphParameters::seeded(&graph, 0);
        let (core, mut mapping) = compile(&graph, 1);
        // Force a consumer to start at cycle 0, tied with its producer.
        let consumer = core.edges()[0].1;
        mapping.schedule.entries[consumer].start_cycle = 0;
        let err = Executor::bind(&graph, &params, &core, &mapping, &Precision::Float).unwrap_err();
        assert!(matches!(err, ExecError::ScheduleOrder { .. }), "{err}");
    }

    /// The three numeric regimes the reuse tests cycle through.
    fn reuse_precisions(graph: &ComputationalGraph, inputs: &[Vec<f32>]) -> Vec<Precision> {
        let params = GraphParameters::seeded(graph, 13);
        let plan = QuantizationPlan::calibrate(graph, &params, inputs).unwrap();
        vec![
            Precision::Float,
            Precision::Integer(plan),
            Precision::Noisy {
                scheme: WeightScheme::fpsa_add(),
                variation: CellVariation::measured(),
                seed: 0xBEEF,
            },
        ]
    }

    #[test]
    fn arena_reuse_across_many_batches_matches_fresh_binds() {
        // Binding once and serving many batches through one arena must be
        // bit-identical to a fresh bind per sample: nothing may leak between
        // batches through the recycled buffers.
        let graph = zoo::tiny_cnn();
        let params = GraphParameters::seeded(&graph, 13);
        let (core, mapping) = compile(&graph, 2);
        let inputs = samples(&graph, 6);
        for precision in reuse_precisions(&graph, &inputs) {
            let bound_once = Executor::bind(&graph, &params, &core, &mapping, &precision).unwrap();
            let mut arena = bound_once.arena();
            let mut outputs = Vec::new();
            // Batches of varying size and content, revisiting samples so a
            // stale buffer from a previous batch would be caught.
            let batches: [&[Vec<f32>]; 4] =
                [&inputs[0..1], &inputs[1..4], &inputs[0..6], &inputs[2..3]];
            for batch in batches {
                bound_once
                    .run_batch_into(batch, &mut arena, &mut outputs)
                    .unwrap();
                assert_eq!(outputs.len(), batch.len());
                for (x, got) in batch.iter().zip(&outputs) {
                    let fresh = Executor::bind(&graph, &params, &core, &mapping, &precision)
                        .unwrap()
                        .run(x)
                        .unwrap();
                    assert_eq!(got, &fresh, "arena reuse diverged from a fresh bind");
                }
            }
        }
    }

    #[test]
    fn one_arena_can_serve_different_executors() {
        // Epoch stamping invalidates the whole arena per run, so even
        // migrating an arena between models cannot leak state.
        let mlp = zoo::tiny_mlp();
        let cnn = zoo::tiny_cnn();
        let mlp_params = GraphParameters::seeded(&mlp, 1);
        let cnn_params = GraphParameters::seeded(&cnn, 2);
        let (mlp_core, mlp_map) = compile(&mlp, 1);
        let (cnn_core, cnn_map) = compile(&cnn, 1);
        let a = Executor::bind(&mlp, &mlp_params, &mlp_core, &mlp_map, &Precision::Float).unwrap();
        let b = Executor::bind(&cnn, &cnn_params, &cnn_core, &cnn_map, &Precision::Float).unwrap();
        let xa = &samples(&mlp, 1)[0];
        let xb = &samples(&cnn, 1)[0];
        let mut arena = ExecArena::new();
        let mut out = Vec::new();
        for _ in 0..3 {
            a.run_into(xa, &mut arena, &mut out).unwrap();
            assert_eq!(out, a.run(xa).unwrap());
            b.run_into(xb, &mut arena, &mut out).unwrap();
            assert_eq!(out, b.run(xb).unwrap());
        }
    }

    #[test]
    fn failed_batches_truncate_outputs_instead_of_exposing_stale_results() {
        let graph = zoo::tiny_mlp();
        let params = GraphParameters::seeded(&graph, 5);
        let (core, mapping) = compile(&graph, 1);
        let exec = Executor::bind(&graph, &params, &core, &mapping, &Precision::Float).unwrap();
        let mut arena = exec.arena();
        let mut outputs = Vec::new();
        let good = samples(&graph, 3);
        exec.run_batch_into(&good, &mut arena, &mut outputs)
            .unwrap();
        assert_eq!(outputs.len(), 3);
        // Second batch fails on its middle sample: the outputs must shrink
        // to the completed prefix, not keep batch 1's results in the tail.
        let mixed = vec![good[0].clone(), vec![0.0; 2], good[2].clone()];
        let err = exec
            .run_batch_into(&mixed, &mut arena, &mut outputs)
            .unwrap_err();
        assert!(matches!(err, ExecError::ModelMismatch { .. }), "{err}");
        assert_eq!(outputs.len(), 1, "only the completed prefix survives");
        assert_eq!(outputs[0], exec.run(&good[0]).unwrap());
    }

    #[test]
    fn run_into_reports_wrong_input_lengths_and_leaves_out_cleared() {
        let graph = zoo::tiny_mlp();
        let params = GraphParameters::seeded(&graph, 5);
        let (core, mapping) = compile(&graph, 1);
        let exec = Executor::bind(&graph, &params, &core, &mapping, &Precision::Float).unwrap();
        let mut arena = exec.arena();
        let mut out = vec![1.0f32];
        let err = exec.run_into(&[0.0; 3], &mut arena, &mut out).unwrap_err();
        assert!(matches!(err, ExecError::ModelMismatch { .. }), "{err}");
        assert!(out.is_empty(), "failed runs must not leave stale outputs");
        // And the arena stays usable afterwards.
        let x = &samples(&graph, 1)[0];
        exec.run_into(x, &mut arena, &mut out).unwrap();
        assert_eq!(out, exec.run(x).unwrap());
    }

    #[test]
    fn accuracy_counts_argmax_agreement() {
        let graph = zoo::tiny_mlp();
        let params = GraphParameters::seeded(&graph, 4);
        let (core, mapping) = compile(&graph, 1);
        let exec = Executor::bind(&graph, &params, &core, &mapping, &Precision::Float).unwrap();
        let inputs = samples(&graph, 4);
        let reference = Reference::new(&graph, &params).unwrap();
        let labels: Vec<usize> = inputs
            .iter()
            .map(|x| fpsa_nn::mlp::argmax(&reference.logits(x).unwrap()))
            .collect();
        let acc = exec.accuracy(&inputs, &labels).unwrap();
        assert_eq!(acc, 1.0, "float executor must agree with its own labels");
    }
}
