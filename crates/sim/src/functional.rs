//! Functional studies on real (small) networks.
//!
//! Two questions are answered here with actual computation rather than
//! analytic models:
//!
//! 1. Does the spiking PE compute the right function? [`SpikingMlpRunner`]
//!    pushes a multi-layer perceptron through cycle-accurate spiking PEs
//!    (Equations 1–6) and compares against the floating-point reference.
//! 2. How does ReRAM conductance variation affect accuracy under the splice
//!    and add weight representations? [`VariationStudy`] quantizes a trained
//!    network, programs its weights onto simulated noisy cells and measures
//!    classification accuracy — the machinery behind Figure 9.

use fpsa_device::spiking::{SpikeTrain, SpikingPe};
use fpsa_device::variation::{CellVariation, WeightScheme};
use fpsa_nn::dataset::Dataset;
use fpsa_nn::mlp::Mlp;
use fpsa_nn::quant::Quantizer;
use fpsa_nn::seeds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Runs an MLP through cycle-accurate spiking PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikingMlpRunner {
    /// Sampling window Γ in cycles.
    pub window: usize,
}

impl SpikingMlpRunner {
    /// Create a runner with the given sampling window.
    pub fn new(window: usize) -> Self {
        SpikingMlpRunner { window }
    }

    /// Execute the network on one input vector using spiking PEs for every
    /// layer.
    ///
    /// Spike trains can only carry non-negative values, so layers whose input
    /// may be negative (in practice only the first layer — hidden activations
    /// are ReLU outputs) are fed a positive/negative split of the input, with
    /// the weight matrix duplicated and negated for the negative half; this
    /// is the standard signed-input encoding for rate-coded crossbars.
    /// Weights are scaled per layer to fit the PE's `[-1, 1]` range and the
    /// outputs are rescaled back.
    ///
    /// Returns the output activations (comparable to `mlp.forward` up to
    /// quantization noise).
    pub fn forward(&self, mlp: &Mlp, input: &[f32]) -> Vec<f32> {
        let mut activations: Vec<f64> = input.iter().map(|&x| f64::from(x)).collect();
        let layer_count = mlp.layers.len();
        for (li, layer) in mlp.layers.iter().enumerate() {
            let has_negative_inputs = activations.iter().any(|&a| a < 0.0);
            // Signed-input split: x -> [relu(x); relu(-x)], W -> [W, -W].
            let (split_inputs, weights_f64): (Vec<f64>, Vec<Vec<f64>>) = if has_negative_inputs {
                let mut split = Vec::with_capacity(activations.len() * 2);
                split.extend(activations.iter().map(|&a| a.max(0.0)));
                split.extend(activations.iter().map(|&a| (-a).max(0.0)));
                let w = layer
                    .weights
                    .iter()
                    .map(|row| {
                        let mut r: Vec<f64> = row.iter().map(|&w| f64::from(w)).collect();
                        r.extend(row.iter().map(|&w| -f64::from(w)));
                        r
                    })
                    .collect();
                (split, w)
            } else {
                (
                    activations.clone(),
                    layer
                        .weights
                        .iter()
                        .map(|row| row.iter().map(|&w| f64::from(w)).collect())
                        .collect(),
                )
            };

            // Scale activations into [0, 1] and weights so that no column's
            // accumulated charge can exceed one full sampling window (the
            // spike count would otherwise saturate at Γ).
            let a_scale = split_inputs.iter().fold(0.0f64, |m, &a| m.max(a)).max(1e-6);
            let norm_inputs: Vec<f64> = split_inputs.iter().map(|&a| a / a_scale).collect();
            let w_scale = weights_f64
                .iter()
                .map(|row| {
                    row.iter()
                        .zip(&norm_inputs)
                        .map(|(&w, &x)| w.abs() * x)
                        .sum::<f64>()
                })
                .fold(0.0f64, f64::max)
                .max(1e-6);
            let weights: Vec<Vec<f64>> = weights_f64
                .iter()
                .map(|row| row.iter().map(|&w| w / w_scale).collect())
                .collect();
            let pe = SpikingPe::new(weights, self.window);
            let inputs: Vec<SpikeTrain> = norm_inputs
                .iter()
                .map(|&a| SpikeTrain::encode(a.clamp(0.0, 1.0), self.window))
                .collect();
            let outputs = pe.run(&inputs);
            // Rescale: the spiking PE computed ReLU(W/w_scale * a/a_scale).
            activations = outputs
                .iter()
                .zip(&layer.bias)
                .map(|(train, &b)| {
                    let y = train.decode() * w_scale * a_scale + f64::from(b);
                    if li + 1 == layer_count {
                        y
                    } else {
                        y.max(0.0)
                    }
                })
                .collect();
        }
        activations.iter().map(|&a| a as f32).collect()
    }

    /// Classification accuracy of the spiking execution on a dataset.
    pub fn accuracy(&self, mlp: &Mlp, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .samples
            .iter()
            .zip(&data.labels)
            .filter(|(x, &y)| {
                let out = self.forward(mlp, x);
                fpsa_nn::mlp::argmax(&out) == y
            })
            .count();
        correct as f64 / data.len() as f64
    }
}

/// The Figure 9 experiment: accuracy of a quantized network whose weights are
/// realized on noisy ReRAM cells with a given representation scheme.
///
/// # Seeded-RNG convention
///
/// All randomness follows the repository convention of `fpsa_nn::seeds`:
/// trial `t` programs its cells from
/// `StdRng(seeds::derive(self.seed, STREAM_TRIAL, t))`, so trials are
/// independent streams — reordering, parallelizing or adding draws to one
/// trial never perturbs another, and `mean_accuracy` /
/// `mean_logit_distortion` see identical per-trial noise. The compiled-model
/// executor's noise injection (`crate::exec`) derives per-PE streams the
/// same way (`STREAM_PE_NOISE`). [`SpikingMlpRunner`] draws no randomness at
/// all: rate coding and the spiking PE are fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationStudy {
    /// The weight representation under test.
    pub scheme: WeightScheme,
    /// The per-cell variation.
    pub variation: CellVariation,
    /// Monte-Carlo trials (independent programming runs) to average over.
    pub trials: usize,
    /// Base RNG seed (per-trial streams derive from it).
    pub seed: u64,
}

impl VariationStudy {
    /// Create a study.
    pub fn new(scheme: WeightScheme, variation: CellVariation, trials: usize, seed: u64) -> Self {
        VariationStudy {
            scheme,
            variation,
            trials,
            seed,
        }
    }

    /// The noisy network of one Monte-Carlo trial, programmed from the
    /// trial's derived RNG stream.
    fn trial_network(&self, mlp: &Mlp, quantizer: &Quantizer, trial: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seeds::derive(self.seed, seeds::STREAM_TRIAL, trial));
        mlp.map_weights(|w| {
            let q = quantizer.round_trip(w);
            let normalized = f64::from(q) / f64::from(quantizer.range);
            let realized = self
                .scheme
                .realize_signed_weight(normalized, self.variation, &mut rng);
            (realized * f64::from(quantizer.range)) as f32
        })
    }

    /// Mean classification accuracy over the Monte-Carlo trials.
    pub fn mean_accuracy(&self, mlp: &Mlp, data: &Dataset) -> f64 {
        let quantizer = Quantizer::weights_8bit(mlp.max_abs_weight().max(1e-6));
        let mut total = 0.0;
        for trial in 0..self.trials.max(1) {
            total += self
                .trial_network(mlp, &quantizer, trial as u64)
                .accuracy(data);
        }
        total / self.trials.max(1) as f64
    }

    /// Accuracy normalized by the full-precision accuracy (the y-axis of
    /// Figure 9).
    pub fn normalized_accuracy(&self, mlp: &Mlp, data: &Dataset) -> f64 {
        let full = mlp.accuracy(data).max(1e-9);
        self.mean_accuracy(mlp, data) / full
    }

    /// Mean squared distortion of the network's output logits caused by the
    /// weight realization, averaged over the dataset and the Monte-Carlo
    /// trials. Accuracy can mask small perturbations on easy tasks; the
    /// logit distortion exposes the splice-vs-add difference directly.
    pub fn mean_logit_distortion(&self, mlp: &Mlp, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let quantizer = Quantizer::weights_8bit(mlp.max_abs_weight().max(1e-6));
        let mut total = 0.0;
        let mut count = 0usize;
        for trial in 0..self.trials.max(1) {
            let noisy = self.trial_network(mlp, &quantizer, trial as u64);
            for x in &data.samples {
                let reference = mlp.forward(x);
                let perturbed = noisy.forward(x);
                for (r, p) in reference.iter().zip(&perturbed) {
                    total += f64::from((r - p) * (r - p));
                    count += 1;
                }
            }
        }
        total / count.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_nn::mlp::TrainConfig;

    fn trained_network() -> (Mlp, Dataset) {
        let data = Dataset::gaussian_blobs(4, 60, 8, 0.25, 21);
        let (train, test) = data.split(0.8);
        let mut mlp = Mlp::new(&[8, 24, 4], 7);
        mlp.train(
            &train,
            TrainConfig {
                learning_rate: 0.05,
                epochs: 40,
                seed: 11,
            },
        );
        (mlp, test)
    }

    #[test]
    fn spiking_execution_matches_float_classification() {
        let (mlp, test) = trained_network();
        let float_acc = mlp.accuracy(&test);
        let spiking_acc = SpikingMlpRunner::new(64).accuracy(&mlp, &test);
        assert!(float_acc > 0.9);
        assert!(
            spiking_acc > float_acc - 0.15,
            "spiking accuracy {spiking_acc} too far below float {float_acc}"
        );
    }

    #[test]
    fn spiking_forward_usually_agrees_with_float_argmax() {
        let (mlp, test) = trained_network();
        let runner = SpikingMlpRunner::new(64);
        let n = test.len().min(40);
        let mut agree = 0usize;
        for x in test.samples.iter().take(n) {
            let float_out = mlp.forward(x);
            let spiking_out = runner.forward(&mlp, x);
            assert_eq!(float_out.len(), spiking_out.len());
            if fpsa_nn::mlp::argmax(&float_out) == fpsa_nn::mlp::argmax(&spiking_out) {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / n as f64 > 0.8,
            "only {agree}/{n} spiking predictions agree with the float network"
        );
    }

    /// Regression pin for the Figure 9 machinery: the per-trial derived-seed
    /// convention makes these values a pure function of (scheme, variation,
    /// trials, seed), so any refactor that silently shifts the RNG streams —
    /// and with them the published Figure 9 curve — fails here. The loose
    /// epsilon only absorbs libm ulp differences across platforms (the
    /// Box-Muller sampler calls `ln`/`cos`).
    #[test]
    fn variation_study_values_are_pinned_for_a_fixed_seed() {
        let (mlp, test) = trained_network();
        let add = VariationStudy::new(
            WeightScheme::fpsa_add(),
            CellVariation::measured(),
            3,
            0xF95A,
        );
        assert_eq!(add.mean_accuracy(&mlp, &test), 1.0);
        let add_distortion = add.mean_logit_distortion(&mlp, &test);
        assert!(
            (add_distortion - 0.019_031_270_453_510_77).abs() < 1e-9,
            "add distortion drifted: {add_distortion:.17}"
        );
        let splice = VariationStudy::new(
            WeightScheme::prime_splice(),
            CellVariation::measured(),
            3,
            0xF95A,
        );
        let splice_distortion = splice.mean_logit_distortion(&mlp, &test);
        assert!(
            (splice_distortion - 0.133_480_126_264_599_96).abs() < 1e-9,
            "splice distortion drifted: {splice_distortion:.17}"
        );
    }

    /// Trials are independent derived streams: trial networks are
    /// deterministic and distinct per trial index, and a one-trial study's
    /// mean equals trial 0's accuracy exactly — so `mean_accuracy` really
    /// consumes the per-trial streams (a refactor that reintroduced one
    /// shared RNG across trials, or skipped trial 0, fails here).
    #[test]
    fn trial_streams_are_independent_derived_streams() {
        let (mlp, test) = trained_network();
        let quantizer = Quantizer::weights_8bit(mlp.max_abs_weight().max(1e-6));
        let study = VariationStudy::new(WeightScheme::fpsa_add(), CellVariation::measured(), 1, 42);
        assert_eq!(
            study.trial_network(&mlp, &quantizer, 0),
            study.trial_network(&mlp, &quantizer, 0),
            "trial networks are deterministic"
        );
        assert_ne!(
            study.trial_network(&mlp, &quantizer, 0),
            study.trial_network(&mlp, &quantizer, 1),
            "distinct trials program distinct cells"
        );
        let trial0_accuracy = study.trial_network(&mlp, &quantizer, 0).accuracy(&test);
        assert_eq!(
            study.mean_accuracy(&mlp, &test),
            trial0_accuracy,
            "a one-trial mean is exactly trial 0's accuracy"
        );
    }
    #[test]
    fn ideal_devices_preserve_accuracy() {
        let (mlp, test) = trained_network();
        let study = VariationStudy::new(WeightScheme::fpsa_add(), CellVariation::ideal(), 1, 3);
        let normalized = study.normalized_accuracy(&mlp, &test);
        assert!(normalized > 0.95, "normalized accuracy {normalized}");
    }

    #[test]
    fn add_method_distorts_outputs_less_than_splice() {
        // The logit distortion is the direct observable of the §7.2 analysis:
        // the add method's √k deviation reduction shows up as a lower mean
        // squared perturbation of the network's outputs.
        let (mlp, test) = trained_network();
        let variation = CellVariation::measured();
        let splice = VariationStudy::new(WeightScheme::prime_splice(), variation, 3, 5)
            .mean_logit_distortion(&mlp, &test);
        let add = VariationStudy::new(WeightScheme::fpsa_add(), variation, 3, 5)
            .mean_logit_distortion(&mlp, &test);
        assert!(
            add < splice,
            "add distortion ({add}) should be below splice distortion ({splice})"
        );
    }

    #[test]
    fn add_method_preserves_accuracy_under_stress_variation() {
        // Under an exaggerated (stress) variation the accuracy difference
        // between the two representations becomes visible even on a small
        // network; the Figure 9 experiment uses the measured variation and a
        // deeper sweep of cell counts.
        let (mlp, test) = trained_network();
        let stress = CellVariation { sigma_levels: 3.0 };
        let splice = VariationStudy::new(WeightScheme::prime_splice(), stress, 5, 5)
            .normalized_accuracy(&mlp, &test);
        let add = VariationStudy::new(
            WeightScheme::Add {
                cells: 16,
                bits_per_cell: 4,
            },
            stress,
            5,
            5,
        )
        .normalized_accuracy(&mlp, &test);
        assert!(
            add >= splice,
            "add ({add}) should not be worse than splice ({splice}) under stress"
        );
        assert!(
            add > 0.8,
            "16-cell add should stay close to full precision, got {add}"
        );
    }

    #[test]
    fn more_cells_reduce_distortion_for_the_add_method() {
        let (mlp, test) = trained_network();
        let variation = CellVariation::measured();
        let few = VariationStudy::new(
            WeightScheme::Add {
                cells: 1,
                bits_per_cell: 4,
            },
            variation,
            3,
            9,
        )
        .mean_logit_distortion(&mlp, &test);
        let many = VariationStudy::new(
            WeightScheme::Add {
                cells: 16,
                bits_per_cell: 4,
            },
            variation,
            3,
            9,
        )
        .mean_logit_distortion(&mlp, &test);
        assert!(
            many < few,
            "16 cells ({many}) should distort less than 1 cell ({few})"
        );
    }
}
