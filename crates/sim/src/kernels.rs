//! Register-blocked MAC kernels behind one-time CPU feature dispatch.
//!
//! Dense and convolution instructions both reduce, per output position, to
//! the same primitive: `out[c] = Σ_rows w[woff + c] · x_row` with the terms
//! of every accumulator taken in ascending row order. The dispatch loops in
//! [`crate::bytecode`] prefilter each position's surviving rows (dynamic
//! sparsity: activations that are exactly zero are dropped, exactly like the
//! interpreter's `xv != 0` guard) into a flat `(weight offset, activation)`
//! list, then hand the whole position to one of the kernels here.
//!
//! The kernels differ only in how many accumulator lanes they keep in
//! registers while sweeping rows; none of them changes the order in which
//! terms reach an individual accumulator, which is the bit-identity
//! contract. Vectorizing *across columns* is always exact: each f64
//! accumulator still receives the same `w·x` products in the same sequence,
//! and Rust never contracts the separate multiply and add into a fused
//! multiply-add. The differential suite re-checks this against the shadow
//! interpreter on every `run_checked` call.
//!
//! Feature detection happens once at bind time ([`Simd::detect`]); the
//! resulting selector is stored in the lowered artifact so the hot loop is a
//! plain match, not a per-call `cpuid`.

/// Which MAC kernel family the lowered artifact dispatches to.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Simd {
    /// Portable full-width sweep (also the non-x86 fallback).
    #[default]
    Scalar,
    /// 256-bit lanes: 8 × 4 f64 accumulators in registers.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// 512-bit lanes: 8 × 8 f64 accumulators in registers.
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

impl Simd {
    /// Pick the widest kernel family this CPU supports.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Simd::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return Simd::Avx2;
            }
        }
        Simd::Scalar
    }
}

/// One surviving MAC row of an output position: absolute weight-slab offset
/// of the row's first column, and the (nonzero) activation driving it.
pub(crate) type RowF = (u32, f64);

/// Integer-domain counterpart of [`RowF`].
pub(crate) type RowI = (u32, i64);

/// `out[c] = Σ_rows w[woff + c] · x` over `cols` columns, f64, terms in row
/// order. `out[..cols]` is fully overwritten (zeros when `rows` is empty).
#[inline]
pub(crate) fn mac_f(simd: Simd, w: &[f32], cols: usize, rows: &[RowF], out: &mut [f64]) {
    debug_assert!(rows.iter().all(|&(o, _)| o as usize + cols <= w.len()));
    let out = &mut out[..cols];
    match simd {
        Simd::Scalar => mac_f_scalar(w, cols, rows, out),
        // SAFETY: the selector is only ever `Avx2`/`Avx512` when
        // `Simd::detect` observed the feature on this CPU, and lowering
        // guarantees every row offset stays inside the weight slab.
        #[cfg(target_arch = "x86_64")]
        Simd::Avx2 => unsafe { mac_f_avx2(w, cols, rows, out) },
        #[cfg(target_arch = "x86_64")]
        Simd::Avx512 => unsafe { mac_f_avx512(w, cols, rows, out) },
    }
}

/// Integer-domain MAC: `out[c] = Σ_rows w[woff + c] · x`, exact i64 adds in
/// row order (associative, so blocking strategy is immaterial here; a single
/// full-width sweep keeps the weight traffic contiguous).
pub(crate) fn mac_i(w: &[i64], cols: usize, rows: &[RowI], out: &mut [i64]) {
    let out = &mut out[..cols];
    out.fill(0);
    for &(woff, xv) in rows {
        let row = &w[woff as usize..woff as usize + cols];
        for (o, &wv) in out.iter_mut().zip(row) {
            *o += wv * xv;
        }
    }
}

fn mac_f_scalar(w: &[f32], cols: usize, rows: &[RowF], out: &mut [f64]) {
    out.fill(0.0);
    for &(woff, xv) in rows {
        let row = &w[woff as usize..woff as usize + cols];
        for (o, &wv) in out.iter_mut().zip(row) {
            *o += f64::from(wv) * xv;
        }
    }
}

/// Columns `c0..cols` one accumulator at a time (tail of the blocked
/// kernels). Per-column sweeps keep row order per accumulator untouched.
fn mac_f_tail(w: &[f32], rows: &[RowF], out: &mut [f64], c0: usize) {
    for (c, o) in out.iter_mut().enumerate().skip(c0) {
        let mut a = 0.0f64;
        for &(woff, xv) in rows {
            a += f64::from(w[woff as usize + c]) * xv;
        }
        *o = a;
    }
}

/// One register sweep of `K` 256-bit accumulators over columns
/// `c0 .. c0 + 4K`: the whole stripe stays in ymm registers while the rows
/// stream by once.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sweep_avx2<const K: usize>(w: &[f32], rows: &[RowF], out: &mut [f64], c0: usize) {
    use std::arch::x86_64::*;
    let mut a = [_mm256_setzero_pd(); K];
    for &(woff, xv) in rows {
        let xb = _mm256_set1_pd(xv);
        let base = w.as_ptr().add(woff as usize + c0);
        for (j, aj) in a.iter_mut().enumerate() {
            let wd = _mm256_cvtps_pd(_mm_loadu_ps(base.add(j * 4)));
            *aj = _mm256_add_pd(*aj, _mm256_mul_pd(wd, xb));
        }
    }
    for (j, aj) in a.iter().enumerate() {
        _mm256_storeu_pd(out.as_mut_ptr().add(c0 + j * 4), *aj);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mac_f_avx2(w: &[f32], cols: usize, rows: &[RowF], out: &mut [f64]) {
    if cols < 4 {
        return mac_f_tail(w, rows, out, 0);
    }
    let mut c0 = 0usize;
    loop {
        match cols - c0 {
            0 => return,
            32.. => {
                sweep_avx2::<8>(w, rows, out, c0);
                c0 += 32;
            }
            rem @ 4..=31 => {
                // One sweep with exactly the registers the stripe needs.
                match rem / 4 {
                    1 => sweep_avx2::<1>(w, rows, out, c0),
                    2 => sweep_avx2::<2>(w, rows, out, c0),
                    3 => sweep_avx2::<3>(w, rows, out, c0),
                    4 => sweep_avx2::<4>(w, rows, out, c0),
                    5 => sweep_avx2::<5>(w, rows, out, c0),
                    6 => sweep_avx2::<6>(w, rows, out, c0),
                    _ => sweep_avx2::<7>(w, rows, out, c0),
                }
                c0 += (rem / 4) * 4;
            }
            // Sub-lane remainder: recompute an overlapped final lane. The
            // overlapping columns receive the exact same term sequence, so
            // the overwrite is bit-identical.
            _ => {
                sweep_avx2::<1>(w, rows, out, cols - 4);
                return;
            }
        }
    }
}

/// One register sweep of `K` 512-bit accumulators over columns
/// `c0 .. c0 + 8K`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn sweep_avx512<const K: usize>(w: &[f32], rows: &[RowF], out: &mut [f64], c0: usize) {
    use std::arch::x86_64::*;
    let mut a = [_mm512_setzero_pd(); K];
    for &(woff, xv) in rows {
        let xb = _mm512_set1_pd(xv);
        let base = w.as_ptr().add(woff as usize + c0);
        for (j, aj) in a.iter_mut().enumerate() {
            let wd = _mm512_cvtps_pd(_mm256_loadu_ps(base.add(j * 8)));
            *aj = _mm512_add_pd(*aj, _mm512_mul_pd(wd, xb));
        }
    }
    for (j, aj) in a.iter().enumerate() {
        _mm512_storeu_pd(out.as_mut_ptr().add(c0 + j * 8), *aj);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mac_f_avx512(w: &[f32], cols: usize, rows: &[RowF], out: &mut [f64]) {
    if cols < 8 {
        return mac_f_tail(w, rows, out, 0);
    }
    let mut c0 = 0usize;
    loop {
        match cols - c0 {
            0 => return,
            64.. => {
                sweep_avx512::<8>(w, rows, out, c0);
                c0 += 64;
            }
            rem @ 8..=63 => {
                match rem / 8 {
                    1 => sweep_avx512::<1>(w, rows, out, c0),
                    2 => sweep_avx512::<2>(w, rows, out, c0),
                    3 => sweep_avx512::<3>(w, rows, out, c0),
                    4 => sweep_avx512::<4>(w, rows, out, c0),
                    5 => sweep_avx512::<5>(w, rows, out, c0),
                    6 => sweep_avx512::<6>(w, rows, out, c0),
                    _ => sweep_avx512::<7>(w, rows, out, c0),
                }
                c0 += (rem / 8) * 8;
            }
            // Sub-lane remainder: overlapped final lane (see the AVX2 path).
            _ => {
                sweep_avx512::<1>(w, rows, out, cols - 8);
                return;
            }
        }
    }
}

/// Batched MAC over `sb` samples at once: `acc[s · cols + c] = Σ_i
/// w[woffs[i] + c] · xb[i · sb + s]`, terms in row order per accumulator.
///
/// One weight-row load drives every sample's accumulators, so a weight tile
/// streams from memory once per batch instead of once per sample — the
/// bandwidth amortization behind `run_batch_into`. The caller pre-gathers
/// activations into `xb` (row-major, `sb` samples per row) with rows whose
/// activations are zero across the *whole* group already dropped; a sample
/// whose individual activation is zero still contributes a `±0.0` product,
/// which never changes an accumulator that starts at `+0.0` and only ever
/// sums finite products (exact cancellation rounds to `+0.0`, never `-0.0`),
/// so results stay bit-identical to the per-sample kernels.
pub(crate) fn mac_f_batch(
    simd: Simd,
    w: &[f32],
    cols: usize,
    woffs: &[u32],
    xb: &[f64],
    sb: usize,
    acc: &mut [f64],
) {
    debug_assert_eq!(xb.len(), woffs.len() * sb);
    debug_assert!(acc.len() >= sb * cols);
    match simd {
        Simd::Scalar => mac_f_batch_scalar(w, cols, woffs, xb, sb, acc),
        // SAFETY: selector implies the feature (see `mac_f`); offsets are
        // in-slab by lowering.
        #[cfg(target_arch = "x86_64")]
        Simd::Avx2 => unsafe { mac_f_batch_avx2_sb(w, cols, woffs, xb, sb, acc) },
        #[cfg(target_arch = "x86_64")]
        Simd::Avx512 => unsafe { mac_f_batch_avx512_sb(w, cols, woffs, xb, sb, acc) },
    }
}

fn mac_f_batch_scalar(
    w: &[f32],
    cols: usize,
    woffs: &[u32],
    xb: &[f64],
    sb: usize,
    acc: &mut [f64],
) {
    acc[..sb * cols].fill(0.0);
    for (i, &woff) in woffs.iter().enumerate() {
        let row = &w[woff as usize..woff as usize + cols];
        for s in 0..sb {
            let xv = xb[i * sb + s];
            if xv != 0.0 {
                let arow = &mut acc[s * cols..(s + 1) * cols];
                for (a, &wv) in arow.iter_mut().zip(row) {
                    *a += f64::from(wv) * xv;
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mac_f_batch_avx512_sb(
    w: &[f32],
    cols: usize,
    woffs: &[u32],
    xb: &[f64],
    sb: usize,
    acc: &mut [f64],
) {
    match sb {
        1 => mac_f_batch_avx512::<1>(w, cols, woffs, xb, acc),
        2 => mac_f_batch_avx512::<2>(w, cols, woffs, xb, acc),
        3 => mac_f_batch_avx512::<3>(w, cols, woffs, xb, acc),
        4 => mac_f_batch_avx512::<4>(w, cols, woffs, xb, acc),
        5 => mac_f_batch_avx512::<5>(w, cols, woffs, xb, acc),
        6 => mac_f_batch_avx512::<6>(w, cols, woffs, xb, acc),
        7 => mac_f_batch_avx512::<7>(w, cols, woffs, xb, acc),
        _ => mac_f_batch_avx512::<8>(w, cols, woffs, xb, acc),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mac_f_batch_avx512<const SB: usize>(
    w: &[f32],
    cols: usize,
    woffs: &[u32],
    xb: &[f64],
    acc: &mut [f64],
) {
    use std::arch::x86_64::*;
    if cols < 8 {
        return mac_f_batch_scalar(w, cols, woffs, xb, SB, acc);
    }
    let mut c0 = 0usize;
    loop {
        let rem = cols - c0;
        if rem == 0 {
            return;
        }
        // Sub-lane remainder: recompute an overlapped final lane
        // (bit-identical, see `mac_f_avx512`).
        let last = rem < 8;
        if last {
            c0 = cols - 8;
        }
        let mut a = [_mm512_setzero_pd(); SB];
        for (i, &woff) in woffs.iter().enumerate() {
            let wd = _mm512_cvtps_pd(_mm256_loadu_ps(w.as_ptr().add(woff as usize + c0)));
            let xrow = xb.as_ptr().add(i * SB);
            for (s, asl) in a.iter_mut().enumerate() {
                let xv = _mm512_set1_pd(*xrow.add(s));
                *asl = _mm512_add_pd(*asl, _mm512_mul_pd(wd, xv));
            }
        }
        for (s, asl) in a.iter().enumerate() {
            _mm512_storeu_pd(acc.as_mut_ptr().add(s * cols + c0), *asl);
        }
        if last {
            return;
        }
        c0 += 8;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mac_f_batch_avx2_sb(
    w: &[f32],
    cols: usize,
    woffs: &[u32],
    xb: &[f64],
    sb: usize,
    acc: &mut [f64],
) {
    match sb {
        1 => mac_f_batch_avx2::<1>(w, cols, woffs, xb, acc),
        2 => mac_f_batch_avx2::<2>(w, cols, woffs, xb, acc),
        3 => mac_f_batch_avx2::<3>(w, cols, woffs, xb, acc),
        4 => mac_f_batch_avx2::<4>(w, cols, woffs, xb, acc),
        5 => mac_f_batch_avx2::<5>(w, cols, woffs, xb, acc),
        6 => mac_f_batch_avx2::<6>(w, cols, woffs, xb, acc),
        7 => mac_f_batch_avx2::<7>(w, cols, woffs, xb, acc),
        _ => mac_f_batch_avx2::<8>(w, cols, woffs, xb, acc),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mac_f_batch_avx2<const SB: usize>(
    w: &[f32],
    cols: usize,
    woffs: &[u32],
    xb: &[f64],
    acc: &mut [f64],
) {
    use std::arch::x86_64::*;
    if cols < 4 {
        return mac_f_batch_scalar(w, cols, woffs, xb, SB, acc);
    }
    let mut c0 = 0usize;
    loop {
        let rem = cols - c0;
        if rem == 0 {
            return;
        }
        let last = rem < 4;
        if last {
            c0 = cols - 4;
        }
        let mut a = [_mm256_setzero_pd(); SB];
        for (i, &woff) in woffs.iter().enumerate() {
            let wd = _mm256_cvtps_pd(_mm_loadu_ps(w.as_ptr().add(woff as usize + c0)));
            let xrow = xb.as_ptr().add(i * SB);
            for (s, asl) in a.iter_mut().enumerate() {
                let xv = _mm256_set1_pd(*xrow.add(s));
                *asl = _mm256_add_pd(*asl, _mm256_mul_pd(wd, xv));
            }
        }
        for (s, asl) in a.iter().enumerate() {
            _mm256_storeu_pd(acc.as_mut_ptr().add(s * cols + c0), *asl);
        }
        if last {
            return;
        }
        c0 += 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(cols: usize) -> (Vec<f32>, Vec<RowF>) {
        let rows = 37usize;
        let w: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 2654435761) % 1997) as f32 / 1997.0 - 0.5)
            .collect();
        let rows: Vec<RowF> = (0..rows)
            .map(|r| ((r * cols) as u32, f64::from((r % 13) as f32 / 13.0 + 0.01)))
            .collect();
        (w, rows)
    }

    /// Every kernel family must agree bit-for-bit with the scalar sweep on
    /// widths that exercise full blocks, partial blocks, and scalar tails.
    #[test]
    fn kernel_families_are_bit_identical() {
        for cols in [1usize, 3, 4, 7, 8, 20, 31, 32, 50, 64, 93, 100, 244, 256] {
            let (w, rows) = fixture(cols);
            let mut want = vec![0.0f64; cols];
            mac_f_scalar(&w, cols, &rows, &mut want);
            for simd in [Simd::detect(), Simd::Scalar] {
                let mut got = vec![1.0f64; cols];
                mac_f(simd, &w, cols, &rows, &mut got);
                assert_eq!(
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "cols={cols} simd={simd:?}"
                );
            }
        }
    }

    /// An empty row list must fully overwrite the output with zeros.
    #[test]
    fn empty_row_list_zeroes_the_output() {
        let (w, _) = fixture(20);
        let mut out = vec![42.0f64; 20];
        mac_f(Simd::detect(), &w, 20, &[], &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
        let mut out = vec![7i64; 20];
        mac_i(&[0i64; 400], 20, &[], &mut out);
        assert!(out.iter().all(|&v| v == 0));
    }
}
