//! The pipeline performance simulator.
//!
//! A mapped model runs as a pipeline of function blocks: each group's PE(s)
//! execute their core-ops in `iterations` back-to-back sampling windows, and
//! every produced value crosses the communication fabric to its consumers.
//! Throughput is bounded by the slowest pipeline stage; end-to-end latency is
//! the scheduled depth of the whole graph. This module turns a mapping plus a
//! communication estimate into the numbers reported by Figures 6–8 and
//! Table 3.

use fpsa_arch::{ArchitectureConfig, CommunicationStyle};
use fpsa_device::clb::ConfigurableLogicBlockSpec;
use fpsa_device::smb::SpikingMemoryBlockSpec;
use fpsa_mapper::Mapping;
use fpsa_placeroute::TimingReport;
use fpsa_synthesis::CoreOpGraph;
use serde::{Deserialize, Serialize};

/// How the per-value communication cost is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommunicationEstimate {
    /// Values travel over the routed fabric whose per-connection delay
    /// profile is known (from real place & route or from the analytic wire
    /// model). The critical connection clocks the pipeline; the profile mean
    /// is what a typical value actually pays.
    Routed {
        /// Critical-path delay of one bit, in ns.
        critical_path_ns: f64,
        /// Mean per-connection delay of one bit, in ns.
        average_path_ns: f64,
    },
    /// Values share a memory bus of the given bandwidth.
    Bus {
        /// Aggregate bus bandwidth in GB/s.
        bandwidth_gbps: f64,
    },
    /// Communication is free (the "ideal" curves of Figures 2 and 6).
    Ideal,
}

impl CommunicationEstimate {
    /// Build the estimate from a real timing report: the full per-connection
    /// delay profile collapses to its max and mean.
    pub fn from_timing(timing: &TimingReport) -> Self {
        CommunicationEstimate::Routed {
            critical_path_ns: timing.critical_delay_ns,
            average_path_ns: timing.average_delay_ns,
        }
    }

    /// The analytic estimate used when running full place & route is not
    /// practical (ImageNet-scale netlists): the critical path scales with the
    /// perimeter of the fabric region occupied by the netlist, and a typical
    /// connection crosses about half the critical distance.
    pub fn analytic(config: &ArchitectureConfig, block_count: usize) -> Self {
        match config.communication {
            CommunicationStyle::MemoryBus { bandwidth_gbps } => {
                CommunicationEstimate::Bus { bandwidth_gbps }
            }
            CommunicationStyle::Routed { .. } => {
                let side = (block_count as f64).sqrt().ceil().max(1.0);
                // Routed nets span a fraction of the die; after placement the
                // critical net crosses roughly half the fabric side.
                let hops = (side * 0.5).ceil() as usize;
                CommunicationEstimate::Routed {
                    critical_path_ns: config.routing.path_delay_ns(hops),
                    average_path_ns: config.routing.path_delay_ns(hops.div_ceil(2)),
                }
            }
        }
    }
}

/// The output of the performance simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceReport {
    /// Sustained throughput in samples per second.
    pub throughput_samples_per_s: f64,
    /// End-to-end latency of one sample in microseconds.
    pub latency_us: f64,
    /// Sustained performance in operations per second.
    pub ops_per_second: f64,
    /// Total silicon area in mm².
    pub area_mm2: f64,
    /// Computational density in OPS/mm².
    pub ops_per_mm2: f64,
    /// Average computation latency of one PE invocation in ns (Figure 7).
    pub compute_ns_per_vmm: f64,
    /// Communication latency of one PE invocation over the critical routed
    /// connection in ns (Figure 7; this is what clocks the pipeline).
    pub communication_ns_per_vmm: f64,
    /// Communication latency of one PE invocation over a *typical* routed
    /// connection in ns — the mean of the per-connection delay profile. This
    /// is the cost that end-to-end latency accumulates.
    pub communication_avg_ns_per_vmm: f64,
    /// Pipeline period in ns.
    pub pipeline_period_ns: f64,
    /// Number of PEs used.
    pub pe_count: usize,
    /// Per-stage compile instrumentation, when the report came from a model
    /// compiled through the staged pipeline (`None` for raw simulator runs).
    pub compile: Option<crate::trace::StageTrace>,
}

impl PerformanceReport {
    /// Throughput expressed as operations per second divided by area.
    pub fn density_tops_mm2(&self) -> f64 {
        self.ops_per_mm2 * 1e-12
    }

    /// Attach the compile-stage trace of the model this report measures.
    pub fn with_compile_trace(mut self, trace: crate::trace::StageTrace) -> Self {
        self.compile = Some(trace);
        self
    }
}

/// The pipeline performance simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceSimulator {
    config: ArchitectureConfig,
}

impl PerformanceSimulator {
    /// Create a simulator for an architecture configuration.
    pub fn new(config: ArchitectureConfig) -> Self {
        PerformanceSimulator { config }
    }

    /// The architecture being simulated.
    pub fn config(&self) -> &ArchitectureConfig {
        &self.config
    }

    /// Evaluate a mapped model.
    pub fn evaluate(
        &self,
        graph: &CoreOpGraph,
        mapping: &Mapping,
        comm: CommunicationEstimate,
    ) -> PerformanceReport {
        let stats = mapping.netlist.stats();
        let pe_count = stats.pe_count.max(1);
        let total_ops = graph.total_ops() as f64;
        let total_core_ops = graph.total_core_ops().max(1) as f64;

        // Computation: one VMM per core-op.
        let compute_ns_per_vmm = self.config.pe.vmm_latency_ns;

        // Communication: per-value transfer cost, then per-VMM cost. The
        // critical connection clocks the pipeline; the profile mean is what a
        // typical value pays on its way through the fabric.
        let values_per_vmm = self.config.pe.cols as f64;
        let (communication_ns_per_vmm, communication_avg_ns_per_vmm) = match comm {
            CommunicationEstimate::Ideal => (0.0, 0.0),
            CommunicationEstimate::Routed {
                critical_path_ns,
                average_path_ns,
            } => {
                let bits = match self.config.communication {
                    CommunicationStyle::Routed { bits_per_value } => bits_per_value as f64,
                    CommunicationStyle::MemoryBus { .. } => self.config.io_bits as f64,
                };
                // All output values of a VMM leave on parallel routed wires;
                // the serialized bits of one value pay the path delay.
                (critical_path_ns * bits, average_path_ns * bits)
            }
            CommunicationEstimate::Bus { bandwidth_gbps } => {
                // Every value crosses the shared bus; PEs contend for it.
                let bytes_per_value = self.config.io_bits as f64 / 8.0;
                let traffic_per_sample = total_core_ops * values_per_vmm * bytes_per_value;
                let bus_time_per_sample_ns = traffic_per_sample / bandwidth_gbps;
                // Average bus time attributable to one VMM of one PE.
                let per_vmm = bus_time_per_sample_ns * pe_count as f64 / total_core_ops;
                (per_vmm, per_vmm)
            }
        };

        // Pipeline period: the bottleneck stage executes `max_iterations`
        // VMMs, each paying compute plus communication.
        let max_iterations = mapping.schedule.max_stage_iterations().max(1) as f64;
        let compute_period_ns = max_iterations * (compute_ns_per_vmm + communication_ns_per_vmm);
        let pipeline_period_ns = match comm {
            CommunicationEstimate::Bus { bandwidth_gbps } => {
                let bytes_per_value = self.config.io_bits as f64 / 8.0;
                let traffic_per_sample = total_core_ops * values_per_vmm * bytes_per_value;
                let bus_time_per_sample_ns = traffic_per_sample / bandwidth_gbps;
                compute_period_ns.max(bus_time_per_sample_ns)
            }
            _ => compute_period_ns,
        };

        let throughput = 1e9 / pipeline_period_ns;
        let ops_per_second = throughput * total_ops;

        // End-to-end latency: the scheduled span in sampling windows times
        // the per-window wall time. A sample crosses many connections of
        // varied length on its way through the pipeline, so the accumulated
        // communication term is the *average* routed delay, not the critical
        // one (the critical connection only clocks the steady-state period).
        let window = self.config.sampling_window() as f64;
        let wall_per_cycle_ns = (compute_ns_per_vmm + communication_avg_ns_per_vmm) / window;
        let latency_ns = mapping.schedule.latency_cycles() as f64 * wall_per_cycle_ns;

        // Area: every netlist block plus routing drivers.
        let smb_area = SpikingMemoryBlockSpec::fpsa_16kb().area_um2();
        let clb_area = ConfigurableLogicBlockSpec::fpsa_128lut().area_um2();
        let drivers = if self.config.kind.uses_reconfigurable_routing() {
            self.config.routing.driver_area_um2_per_tile()
                * (stats.pe_count + stats.smb_count + stats.clb_count) as f64
        } else {
            0.0
        };
        let area_mm2 = (stats.pe_count as f64 * self.config.pe.area_um2
            + stats.smb_count as f64 * smb_area
            + stats.clb_count as f64 * clb_area
            + drivers)
            * 1e-6;

        PerformanceReport {
            throughput_samples_per_s: throughput,
            latency_us: latency_ns * 1e-3,
            ops_per_second,
            area_mm2,
            ops_per_mm2: ops_per_second / area_mm2.max(1e-9),
            compute_ns_per_vmm,
            communication_ns_per_vmm,
            communication_avg_ns_per_vmm,
            pipeline_period_ns,
            pe_count: stats.pe_count,
            compile: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_mapper::{AllocationPolicy, Mapper};
    use fpsa_nn::zoo;
    use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};

    fn mapped(model: fn() -> fpsa_nn::ComputationalGraph, dup: u64) -> (CoreOpGraph, Mapping) {
        let graph = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(&model())
            .unwrap();
        let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(dup)).map(&graph);
        (graph, mapping)
    }

    #[test]
    fn fpsa_beats_prime_on_the_same_model() {
        let (graph, mapping) = mapped(zoo::lenet, 1);
        let fpsa = PerformanceSimulator::new(ArchitectureConfig::fpsa()).evaluate(
            &graph,
            &mapping,
            CommunicationEstimate::Routed {
                critical_path_ns: 10.0,
                average_path_ns: 10.0,
            },
        );
        let prime = PerformanceSimulator::new(ArchitectureConfig::prime()).evaluate(
            &graph,
            &mapping,
            CommunicationEstimate::Bus {
                bandwidth_gbps: 32.0,
            },
        );
        // On a small model the gap is dominated by the PE speedup alone; the
        // 1000x headline requires the ImageNet-scale models where the bus
        // saturates (exercised by the Figure 6 experiment in fpsa-core).
        assert!(fpsa.throughput_samples_per_s > prime.throughput_samples_per_s * 3.0);
        assert!(fpsa.latency_us < prime.latency_us);
    }

    #[test]
    fn ideal_communication_upper_bounds_routed() {
        let (graph, mapping) = mapped(zoo::lenet, 1);
        let sim = PerformanceSimulator::new(ArchitectureConfig::fpsa());
        let ideal = sim.evaluate(&graph, &mapping, CommunicationEstimate::Ideal);
        let routed = sim.evaluate(
            &graph,
            &mapping,
            CommunicationEstimate::Routed {
                critical_path_ns: 10.0,
                average_path_ns: 10.0,
            },
        );
        assert!(ideal.throughput_samples_per_s > routed.throughput_samples_per_s);
        assert_eq!(routed.compute_ns_per_vmm, ideal.compute_ns_per_vmm);
        assert!(routed.communication_ns_per_vmm > 0.0);
        assert_eq!(ideal.communication_ns_per_vmm, 0.0);
    }

    #[test]
    fn duplication_improves_throughput_superlinearly_in_area_terms() {
        let (graph, m1) = mapped(zoo::lenet, 1);
        let (_, m16) = mapped(zoo::lenet, 16);
        let sim = PerformanceSimulator::new(ArchitectureConfig::fpsa());
        let comm = CommunicationEstimate::Routed {
            critical_path_ns: 10.0,
            average_path_ns: 10.0,
        };
        let r1 = sim.evaluate(&graph, &m1, comm);
        let r16 = sim.evaluate(&graph, &m16, comm);
        let speedup = r16.throughput_samples_per_s / r1.throughput_samples_per_s;
        let area_growth = r16.area_mm2 / r1.area_mm2;
        assert!(speedup > 4.0, "speedup {speedup}");
        assert!(
            area_growth < speedup,
            "area grew {area_growth}x for a {speedup}x speedup"
        );
    }

    #[test]
    fn bus_saturates_prime_at_high_duplication() {
        // Figure 2 / Figure 7: once compute is parallelized, PRIME's shared
        // bus becomes the bottleneck. At 64x duplication the CIFAR VGG's
        // compute period drops well below the per-sample bus time.
        let (graph, mapping) = mapped(zoo::cifar_vgg17, 64);
        let prime = PerformanceSimulator::new(ArchitectureConfig::prime()).evaluate(
            &graph,
            &mapping,
            CommunicationEstimate::Bus {
                bandwidth_gbps: 32.0,
            },
        );
        let ideal = PerformanceSimulator::new(ArchitectureConfig::prime()).evaluate(
            &graph,
            &mapping,
            CommunicationEstimate::Ideal,
        );
        assert!(
            prime.pipeline_period_ns > 2.0 * ideal.pipeline_period_ns,
            "bus-bound period {} should exceed the ideal period {}",
            prime.pipeline_period_ns,
            ideal.pipeline_period_ns
        );
    }

    #[test]
    fn spike_trains_cost_more_communication_than_counts() {
        let (graph, mapping) = mapped(zoo::lenet, 1);
        let comm = CommunicationEstimate::Routed {
            critical_path_ns: 10.0,
            average_path_ns: 10.0,
        };
        let fpsa =
            PerformanceSimulator::new(ArchitectureConfig::fpsa()).evaluate(&graph, &mapping, comm);
        let fp_prime = PerformanceSimulator::new(ArchitectureConfig::fp_prime())
            .evaluate(&graph, &mapping, comm);
        // FPSA serializes 64 bits per value, FP-PRIME only 6.
        assert!(
            (fpsa.communication_ns_per_vmm / fp_prime.communication_ns_per_vmm - 64.0 / 6.0).abs()
                < 1e-6
        );
        // But FPSA's computation is ~20x faster, so it still wins overall.
        assert!(fpsa.throughput_samples_per_s > fp_prime.throughput_samples_per_s);
    }

    #[test]
    fn analytic_estimate_matches_communication_style() {
        let routed = CommunicationEstimate::analytic(&ArchitectureConfig::fpsa(), 400);
        assert!(matches!(routed, CommunicationEstimate::Routed { .. }));
        let bus = CommunicationEstimate::analytic(&ArchitectureConfig::prime(), 400);
        assert!(matches!(bus, CommunicationEstimate::Bus { .. }));
        if let CommunicationEstimate::Routed {
            critical_path_ns,
            average_path_ns,
        } = routed
        {
            assert!(critical_path_ns > 0.0 && critical_path_ns < 100.0);
            assert!(average_path_ns > 0.0 && average_path_ns <= critical_path_ns);
        }
    }

    #[test]
    fn analytic_hop_count_grows_with_block_count() {
        let arch = ArchitectureConfig::fpsa();
        let delay = |blocks: usize| match CommunicationEstimate::analytic(&arch, blocks) {
            CommunicationEstimate::Routed {
                critical_path_ns, ..
            } => critical_path_ns,
            other => panic!("FPSA should produce a routed estimate, got {other:?}"),
        };
        // The critical path scales with the perimeter of the occupied fabric
        // region: never shrinking with block count, and clearly growing over
        // orders of magnitude.
        let sweep = [1usize, 4, 16, 256, 4_096, 65_536];
        for pair in sweep.windows(2) {
            assert!(
                delay(pair[1]) >= delay(pair[0]),
                "delay must not shrink: {} blocks -> {} ns, {} blocks -> {} ns",
                pair[0],
                delay(pair[0]),
                pair[1],
                delay(pair[1])
            );
        }
        assert!(delay(65_536) > delay(1), "delay must grow over the sweep");
    }

    #[test]
    fn analytic_estimate_degrades_gracefully_at_tiny_block_counts() {
        let arch = ArchitectureConfig::fpsa();
        let delay = |blocks: usize| match CommunicationEstimate::analytic(&arch, blocks) {
            CommunicationEstimate::Routed {
                critical_path_ns, ..
            } => critical_path_ns,
            other => panic!("FPSA should produce a routed estimate, got {other:?}"),
        };
        // Empty and single-block netlists clamp to one hop instead of
        // producing zero, negative or non-finite delays.
        for blocks in [0usize, 1] {
            let d = delay(blocks);
            assert!(d.is_finite() && d > 0.0, "{blocks} blocks gave {d} ns");
        }
        assert_eq!(delay(0), delay(1), "0 and 1 blocks share the one-hop floor");
        // The bus model is untouched by block count, including zero.
        match CommunicationEstimate::analytic(&ArchitectureConfig::prime(), 0) {
            CommunicationEstimate::Bus { bandwidth_gbps } => assert!(bandwidth_gbps > 0.0),
            other => panic!("PRIME should produce a bus estimate, got {other:?}"),
        }
    }

    #[test]
    fn latency_accumulates_the_average_delay_and_the_period_the_critical_one() {
        let (graph, mapping) = mapped(zoo::lenet, 1);
        let sim = PerformanceSimulator::new(ArchitectureConfig::fpsa());
        let balanced = sim.evaluate(
            &graph,
            &mapping,
            CommunicationEstimate::Routed {
                critical_path_ns: 10.0,
                average_path_ns: 10.0,
            },
        );
        let skewed = sim.evaluate(
            &graph,
            &mapping,
            CommunicationEstimate::Routed {
                critical_path_ns: 10.0,
                average_path_ns: 4.0,
            },
        );
        // Same critical path: the pipeline clock and throughput are equal.
        assert_eq!(balanced.pipeline_period_ns, skewed.pipeline_period_ns);
        assert_eq!(
            balanced.throughput_samples_per_s,
            skewed.throughput_samples_per_s
        );
        // But a sample accumulates the typical connection delay, so the
        // skewed profile finishes sooner end to end.
        assert!(skewed.latency_us < balanced.latency_us);
        assert!(skewed.communication_avg_ns_per_vmm < skewed.communication_ns_per_vmm);
    }

    #[test]
    fn report_densities_are_consistent() {
        let (graph, mapping) = mapped(zoo::mlp_500_100, 1);
        let report = PerformanceSimulator::new(ArchitectureConfig::fpsa()).evaluate(
            &graph,
            &mapping,
            CommunicationEstimate::Ideal,
        );
        assert!(report.area_mm2 > 0.0);
        assert!((report.ops_per_mm2 - report.ops_per_second / report.area_mm2).abs() < 1.0);
        assert!(
            report.density_tops_mm2() < 40.0,
            "density cannot exceed the PE peak"
        );
    }
}
