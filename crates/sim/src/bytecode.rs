//! The bind-time tile-program bytecode and its dispatch loops.
//!
//! [`crate::exec::Executor::bind`] used to *interpret* bound tile programs:
//! every schedule entry re-dispatched on its program kind, re-resolved its
//! buffers through per-node hash/slab lookups and re-derived im2col indices
//! per element. This module is the compiled replacement — in the spirit of
//! JITSPMM's just-in-time instruction generation, every bound program is
//! lowered **once** (see [`crate::lower`]) into a flat [`Inst`] stream whose
//! operands are *preresolved absolute offsets* into two flat arena slabs:
//!
//! * the **value slab** — every node activation buffer, gather buffer and
//!   element-wise side buffer, laid out back to back (`f32` in the float
//!   domains, `i64` codes in the integer domain);
//! * the **partial slab** — raw tile accumulations awaiting a reduction or a
//!   max-pool stage 2 (`f64` / `i64`).
//!
//! Executing a sample is a single dispatch loop over the stream — no hash
//! lookups, no op-kind matches per element, no shape math. VMM work is
//! encoded as *row runs* ([`RowRun`] / [`ConvRun`]): maximal stretches of
//! consecutive crossbar rows that survive lowering. Sparsity enters in two
//! places, both exactness-preserving:
//!
//! * **structural** — rows whose realized weights are all exactly zero are
//!   dropped at lowering time (an all-zero tile emits no instruction at
//!   all), and
//! * **dynamic** — a row whose activation is exactly `0.0` (or code `0`) is
//!   skipped at run time.
//!
//! Both skips remove only terms that are exactly zero in the same f64/i64
//! arithmetic the interpreter performs (`0 · x` and `w · 0` with finite
//! operands), so every accumulator still receives exactly the same sequence
//! of non-zero terms in the same order — outputs are bit-identical to the
//! shadow interpreter, which the differential suite asserts per node.
//!
//! Per output position, the dispatch loop prefilters the surviving rows —
//! conv window clipping and the zero-activation check both run once per
//! position, not per element — and hands the whole position to a full-width
//! MAC kernel ([`crate::kernels`]): one contiguous sweep over the tile's
//! weight rows, with column accumulators register-blocked in the widest
//! vector unit the CPU offers (detected once at bind). Per-accumulator
//! summation order is untouched (terms arrive in ascending row order
//! regardless of column blocking, and multiplies and adds stay unfused),
//! which is what keeps the f64 results bit-identical. Batched entry points
//! run instruction-major over a batch of slabs so a weight tile streams
//! from memory once per batch instead of once per sample.

use crate::kernels::{self, RowF, RowI, Simd};
use crate::profile::{self, SkipTally};
use fpsa_nn::quant::{quantize_code, rescale_code};
use fpsa_nn::reference::requantize_mac;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reusable MAC scratch: the per-position surviving-row lists the dispatch
/// loop hands to the kernels, and the f64/i64 accumulator row that
/// output-carrying stores compute into before scattering (partial stores
/// accumulate straight into their slab stripe and need neither), plus the
/// batched-MAC gather buffers. All buffers grow to their high-water mark on
/// the first run and are reused allocation-free afterwards.
#[derive(Debug, Default)]
pub(crate) struct MacScratch {
    pub acc_f: Vec<f64>,
    pub acc_i: Vec<i64>,
    pub rows_f: Vec<RowF>,
    pub rows_i: Vec<RowI>,
    /// Batched-MAC row list: weight-row offsets of rows that survive the
    /// whole-group zero check.
    pub woffs: Vec<u32>,
    /// Batched-MAC activation block: `sb` samples' activations per surviving
    /// row, row-major (see [`kernels::mac_f_batch`]).
    pub xb: Vec<f64>,
}

/// Ensure `buf` exposes `len` elements (growing once; steady state is a
/// no-op) and return them. Contents are overwritten by every kernel call, so
/// no zeroing is needed.
fn grow<T: Copy + Default>(buf: &mut Vec<T>, len: usize) -> &mut [T] {
    if buf.len() < len {
        buf.resize(len, T::default());
    }
    &mut buf[..len]
}

/// A contiguous region of a lowered slab (element offset + length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Region {
    pub off: u32,
    pub len: u32,
}

impl Region {
    pub fn range(self) -> std::ops::Range<usize> {
        self.off as usize..(self.off + self.len) as usize
    }
}

/// A span into one of the side tables (`(offset, len)`).
pub(crate) type Span = (u32, u32);

/// One dense MAC row run: `n` consecutive tile rows, reading activations at
/// absolute value-slab indices `x, x+1, …` and weight rows `r, r+1, …` of
/// the owning tile.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RowRun {
    pub x: u32,
    pub r: u32,
    pub n: u32,
}

/// One convolution row run: the tile rows of kernel row `ky` of one input
/// channel, covering kernel columns `[kx_lo, kx_hi)`. `x_rel` is the
/// gather-relative index of the window element at `kx = 0`
/// (`channel·ih·iw + ky·iw`); `r0` is the tile row at `kx = kx_lo`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConvRun {
    pub x_rel: u32,
    pub r0: u32,
    pub ky: u8,
    pub kx_lo: u8,
    pub kx_hi: u8,
}

/// Per-output-position convolution window: the gather-relative base offset
/// of the window origin (negative in the padded border) and the kernel
/// ranges that fall inside the input (`ky ∈ [ky0, ky1)`, `kx ∈ [kx0, kx1)`).
/// Rows clipped here are exactly the rows the interpreter's
/// `conv_input_index` rejected as zero padding.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PosWin {
    pub base: i32,
    pub ky0: u8,
    pub ky1: u8,
    pub kx0: u8,
    pub kx1: u8,
}

/// One reduction source: absolute partial-slab base and per-position stride
/// (the predecessor tile's column count), plus the column slice offset
/// already folded into `base`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReduceSrc {
    pub base: u32,
    pub stride: u32,
}

/// Where an instruction's outputs go.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MacStore {
    /// Absolute base of the output stripe: `node_region + col_offset ·
    /// positions` for output-carrying tiles, the tile's partial region
    /// otherwise.
    pub dst: u32,
    /// `true` → value slab (f32 cast / integer requantization applies);
    /// `false` → raw accumulation into the partial slab.
    pub output: bool,
    /// Fused ReLU at the output boundary (float store path).
    pub relu: bool,
}

/// Integer MAC requantization constants of the producing node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Requant {
    pub wstep: f64,
    pub gstep: f64,
    pub ostep: f64,
}

/// Geometry of a pooling instruction's position loop. All shape math is
/// resolved here at lowering time; the run-time loop only increments.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PoolLoop {
    pub cols: u32,
    pub positions: u32,
    pub ow: u32,
    pub k: u32,
    pub stride: u32,
    pub iw: u32,
    /// Channel stride `ih · iw`.
    pub chan: u32,
}

/// One lowered instruction. Float and integer domains get separate variants
/// because their store paths differ (f32 cast + fused ReLU vs `requantize_mac`
/// / `rescale_code` compositions); an executor stream only ever contains the
/// variants of its bound domain.
// The MAC variants carry their full preresolved operand set inline — boxing
// them would put a pointer chase in the dispatch loop, which is exactly what
// this module exists to remove.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum Inst {
    /// Float gather/eltwise segment copy within the value slab.
    CopyF { src: u32, dst: u32, len: u32 },
    /// Integer gather segment: `dst[i] = rescale_code(v[src+i], from, to)`.
    RescaleI {
        src: u32,
        dst: u32,
        len: u32,
        from: f64,
        to: f64,
    },
    /// Integer eltwise side segment: the reference's double rescale through
    /// the side's own gather step.
    RescaleI2 {
        src: u32,
        dst: u32,
        len: u32,
        from: f64,
        side: f64,
        to: f64,
    },
    /// Dense VMM tile (feature vectors: exactly one output position).
    DenseF {
        runs: Span,
        w: u32,
        cols: u32,
        store: MacStore,
    },
    /// Integer dense VMM tile.
    DenseI {
        runs: Span,
        w: u32,
        cols: u32,
        store: MacStore,
        rq: Requant,
    },
    /// Convolution VMM tile: loops its output positions over the node's
    /// precomputed windows, round-robin over duplicate weight realizations.
    ConvF {
        runs: Span,
        wins: Span,
        x0: u32,
        /// Duplicate weight bases: span into `dup_bases` + duplicate count.
        wsel: (u32, u32, u32),
        cols: u32,
        positions: u32,
        store: MacStore,
    },
    /// Integer convolution VMM tile (codes are shared across duplicates).
    ConvI {
        runs: Span,
        wins: Span,
        x0: u32,
        w: u32,
        cols: u32,
        positions: u32,
        store: MacStore,
        rq: Requant,
    },
    /// Partial-sum reduction over predecessor tiles.
    ReduceF {
        srcs: Span,
        cols: u32,
        positions: u32,
        store: MacStore,
    },
    /// Integer partial-sum reduction.
    ReduceI {
        srcs: Span,
        cols: u32,
        positions: u32,
        store: MacStore,
        rq: Requant,
    },
    /// Average pooling over `k × k` windows.
    AvgPoolF {
        x0: u32,
        geom: PoolLoop,
        store: MacStore,
        div: f64,
    },
    /// Integer average pooling (window sum → real → requantize).
    AvgPoolI {
        x0: u32,
        geom: PoolLoop,
        store: MacStore,
        gstep: f64,
        ostep: f64,
    },
    /// Global average pooling over the full spatial window.
    GapF {
        x0: u32,
        cols: u32,
        positions: u32,
        window: u32,
        store: MacStore,
        div: f64,
    },
    /// Integer global average pooling.
    GapI {
        x0: u32,
        cols: u32,
        positions: u32,
        window: u32,
        store: MacStore,
        gstep: f64,
        ostep: f64,
    },
    /// Max-pool stage 1: window maxima into the partial slab.
    MaxPoolF {
        x0: u32,
        geom: PoolLoop,
        store: MacStore,
    },
    /// Integer max-pool stage 1 (raw code maxima).
    MaxPoolI {
        x0: u32,
        geom: PoolLoop,
        store: MacStore,
    },
    /// Max-pool stage 2: forward the stage-1 tile's partial values.
    MaxFwdF {
        src: u32,
        cols: u32,
        positions: u32,
        store: MacStore,
    },
    /// Integer max-pool stage 2 (real value → requantize).
    MaxFwdI {
        src: u32,
        cols: u32,
        positions: u32,
        store: MacStore,
        gstep: f64,
        ostep: f64,
    },
    /// Element-wise addition across the node's gathered sides.
    EltwiseF {
        sides: Span,
        x_off: u32,
        cols: u32,
        positions: u32,
        store: MacStore,
    },
    /// Integer element-wise addition (code-domain ReLU, then rescale).
    EltwiseI {
        sides: Span,
        x_off: u32,
        cols: u32,
        positions: u32,
        store: MacStore,
        gstep: f64,
        ostep: f64,
    },
}

impl Inst {
    /// Stable opcode index, aligned with [`profile::OPCODE_NAMES`].
    pub(crate) fn opcode(&self) -> usize {
        match self {
            Inst::CopyF { .. } => 0,
            Inst::RescaleI { .. } => 1,
            Inst::RescaleI2 { .. } => 2,
            Inst::DenseF { .. } => 3,
            Inst::DenseI { .. } => 4,
            Inst::ConvF { .. } => 5,
            Inst::ConvI { .. } => 6,
            Inst::ReduceF { .. } => 7,
            Inst::ReduceI { .. } => 8,
            Inst::AvgPoolF { .. } => 9,
            Inst::AvgPoolI { .. } => 10,
            Inst::GapF { .. } => 11,
            Inst::GapI { .. } => 12,
            Inst::MaxPoolF { .. } => 13,
            Inst::MaxPoolI { .. } => 14,
            Inst::MaxFwdF { .. } => 15,
            Inst::MaxFwdI { .. } => 16,
            Inst::EltwiseF { .. } => 17,
            Inst::EltwiseI { .. } => 18,
        }
    }
}

/// What lowering did to a bound model — the observability hook for the
/// sparsity regression tests and the `BENCH_exec` lowering columns.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct LowerStats {
    /// Instructions in the stream.
    pub instructions: usize,
    /// MAC row runs emitted (dense + convolution).
    pub row_runs: usize,
    /// Crossbar rows kept in MAC runs.
    pub mac_rows: usize,
    /// Crossbar rows dropped because every realized weight was exactly zero.
    pub skipped_zero_rows: usize,
    /// VMM tiles that lowered to no instruction at all (all-zero weights).
    pub skipped_zero_tiles: usize,
    /// Gather/side views aliased straight to their producer's region.
    pub aliased_views: usize,
    /// Gather/side segments that still copy (multi-segment views or integer
    /// rescale steps).
    pub copied_segments: usize,
    /// Value-slab length in elements.
    pub value_slab: usize,
    /// Partial-slab length in elements.
    pub partial_slab: usize,
    /// Weight-slab length in elements (float or integer domain).
    pub weight_slab: usize,
}

/// A fully lowered model: the instruction stream, its side tables, the
/// realized weight slabs and the flat arena layout. Everything the dispatch
/// loop touches per sample lives behind preresolved offsets in here.
#[derive(Debug, Default)]
pub(crate) struct Lowered {
    pub insts: Vec<Inst>,
    pub dense_runs: Vec<RowRun>,
    pub conv_runs: Vec<ConvRun>,
    pub wins: Vec<PosWin>,
    pub reduce_srcs: Vec<ReduceSrc>,
    pub side_bases: Vec<u32>,
    pub dup_bases: Vec<u32>,
    /// Row-major realized float weights of every tile duplicate.
    pub wslab_f: Vec<f32>,
    /// Row-major integer weight codes (Integer precision).
    pub wslab_q: Vec<i64>,
    /// Value-slab length (f32 floats or i64 codes).
    pub val_len: usize,
    /// Partial-slab length (f64 floats or i64 codes).
    pub part_len: usize,
    /// Per-graph-node activation region in the value slab.
    pub node_regions: Vec<Option<Region>>,
    /// MAC kernel family selected once at bind time for this CPU.
    pub simd: Simd,
    pub stats: LowerStats,
}

impl Lowered {
    /// Execute the float-domain stream over the arena's flat slabs. The
    /// input node's region must already hold the sample; slabs must be
    /// zeroed (the executor's `run_into` does both).
    pub fn exec_float(&self, vals: &mut [f32], parts: &mut [f64], mac: &mut MacScratch) {
        for inst in &self.insts {
            self.exec_float_inst(inst, vals, parts, mac);
        }
    }

    /// Execute the float stream over a *batch* of `batch` samples laid out
    /// back to back in the slabs, instruction-major: every instruction
    /// sweeps all samples while its weight tile is cache-resident, which is
    /// what amortizes weight streaming across the batch. Each sample still
    /// sees exactly the per-sample instruction order (samples are
    /// independent), so results are bit-identical to `batch` sequential
    /// [`Lowered::exec_float`] calls.
    ///
    /// VMM instructions additionally run a *sample-blocked* kernel
    /// ([`kernels::mac_f_batch`]): groups of up to 8 samples share every
    /// weight-row load, so the tile is not just cache-resident but loaded
    /// once per group. A sample whose activation is zero on a row another
    /// group member keeps contributes a `±0.0` product, which cannot change
    /// an accumulator that starts at `+0.0` (exact cancellation rounds to
    /// `+0.0` under round-to-nearest, so the accumulator is never `-0.0`) —
    /// bits stay identical to the per-sample skip path.
    pub fn exec_float_batch(
        &self,
        vals: &mut [f32],
        parts: &mut [f64],
        batch: usize,
        mac: &mut MacScratch,
    ) {
        for inst in &self.insts {
            match *inst {
                Inst::DenseF {
                    runs,
                    w,
                    cols,
                    store,
                } => {
                    profile::retire(inst.opcode(), batch as u64);
                    self.dense_f_batch(runs, w, cols as usize, store, vals, parts, batch, mac);
                }
                Inst::ConvF {
                    runs,
                    wins,
                    x0,
                    wsel,
                    cols,
                    positions,
                    store,
                } => {
                    profile::retire(inst.opcode(), batch as u64);
                    self.conv_f_batch(
                        runs,
                        wins,
                        x0,
                        wsel,
                        cols as usize,
                        positions,
                        store,
                        vals,
                        parts,
                        batch,
                        mac,
                    );
                }
                _ => {
                    for s in 0..batch {
                        let v = &mut vals[s * self.val_len..(s + 1) * self.val_len];
                        let p = &mut parts[s * self.part_len..(s + 1) * self.part_len];
                        self.exec_float_inst(inst, v, p, mac);
                    }
                }
            }
        }
    }

    /// Gather one sample group's activations for a MAC row: push `sb`
    /// activations (as f64) and keep the row only if any is non-zero.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn gather_group_row(
        &self,
        vals: &[f32],
        s0: usize,
        sb: usize,
        x: usize,
        woff: u32,
        mac: &mut MacScratch,
        skips: &mut SkipTally,
    ) {
        let base = mac.xb.len();
        let mut any = false;
        for s in 0..sb {
            let xv = vals[(s0 + s) * self.val_len + x];
            any |= xv != 0.0;
            mac.xb.push(f64::from(xv));
        }
        if any {
            mac.woffs.push(woff);
        } else {
            mac.xb.truncate(base);
            skips.hit();
        }
    }

    /// Store one sample group's accumulator rows (output scatter or partial
    /// stripe copy — same bits as the per-sample kernels writing in place).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn store_group(
        &self,
        vals: &mut [f32],
        parts: &mut [f64],
        store: MacStore,
        cols: usize,
        positions: usize,
        p: usize,
        s0: usize,
        sb: usize,
        mac: &MacScratch,
    ) {
        for s in 0..sb {
            let row = &mac.acc_f[s * cols..(s + 1) * cols];
            if store.output {
                let vo = (s0 + s) * self.val_len;
                scatter_out_f(&mut vals[vo..vo + self.val_len], store, row, positions, p);
            } else {
                let dst = (s0 + s) * self.part_len + store.dst as usize + p * cols;
                parts[dst..dst + cols].copy_from_slice(row);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dense_f_batch(
        &self,
        runs: Span,
        w: u32,
        cols: usize,
        store: MacStore,
        vals: &mut [f32],
        parts: &mut [f64],
        batch: usize,
        mac: &mut MacScratch,
    ) {
        let runs = &self.dense_runs[runs.0 as usize..(runs.0 + runs.1) as usize];
        let mut skips = SkipTally::new();
        let mut s0 = 0usize;
        while s0 < batch {
            let sb = (batch - s0).min(8);
            mac.woffs.clear();
            mac.xb.clear();
            for run in runs {
                let mut woff = w + run.r * cols as u32;
                for x in run.x..run.x + run.n {
                    self.gather_group_row(vals, s0, sb, x as usize, woff, mac, &mut skips);
                    woff += cols as u32;
                }
            }
            let acc = grow(&mut mac.acc_f, sb * cols);
            kernels::mac_f_batch(self.simd, &self.wslab_f, cols, &mac.woffs, &mac.xb, sb, acc);
            self.store_group(vals, parts, store, cols, 1, 0, s0, sb, mac);
            s0 += sb;
        }
        skips.flush(profile::OP_DENSE_F);
    }

    #[allow(clippy::too_many_arguments)]
    fn conv_f_batch(
        &self,
        runs: Span,
        wins: Span,
        x0: u32,
        wsel: (u32, u32, u32),
        cols: usize,
        positions: u32,
        store: MacStore,
        vals: &mut [f32],
        parts: &mut [f64],
        batch: usize,
        mac: &mut MacScratch,
    ) {
        let runs = &self.conv_runs[runs.0 as usize..(runs.0 + runs.1) as usize];
        let wins = &self.wins[wins.0 as usize..(wins.0 + wins.1) as usize];
        let bases = &self.dup_bases[wsel.0 as usize..(wsel.0 + wsel.1) as usize];
        let dups = wsel.2 as usize;
        let mut skips = SkipTally::new();
        for (p, win) in wins.iter().enumerate().take(positions as usize) {
            let wbase = bases[(p % dups) % bases.len()];
            let xbase = i64::from(x0) + i64::from(win.base);
            let mut s0 = 0usize;
            while s0 < batch {
                let sb = (batch - s0).min(8);
                mac.woffs.clear();
                mac.xb.clear();
                for run in runs {
                    if run.ky < win.ky0 || run.ky >= win.ky1 {
                        continue;
                    }
                    let lo = run.kx_lo.max(win.kx0);
                    let hi = run.kx_hi.min(win.kx1);
                    if lo >= hi {
                        continue;
                    }
                    let xrun = xbase + i64::from(run.x_rel);
                    let r = run.r0 + u32::from(lo - run.kx_lo);
                    let mut woff = wbase + r * cols as u32;
                    for kx in lo..hi {
                        let x = (xrun + i64::from(kx)) as usize;
                        self.gather_group_row(vals, s0, sb, x, woff, mac, &mut skips);
                        woff += cols as u32;
                    }
                }
                let acc = grow(&mut mac.acc_f, sb * cols);
                kernels::mac_f_batch(self.simd, &self.wslab_f, cols, &mac.woffs, &mac.xb, sb, acc);
                self.store_group(vals, parts, store, cols, positions as usize, p, s0, sb, mac);
                s0 += sb;
            }
        }
        skips.flush(profile::OP_CONV_F);
    }

    fn exec_float_inst(
        &self,
        inst: &Inst,
        vals: &mut [f32],
        parts: &mut [f64],
        mac: &mut MacScratch,
    ) {
        profile::retire(inst.opcode(), 1);
        {
            match *inst {
                Inst::CopyF { src, dst, len } => {
                    vals.copy_within(src as usize..(src + len) as usize, dst as usize);
                }
                Inst::DenseF {
                    runs,
                    w,
                    cols,
                    store,
                } => {
                    let runs = &self.dense_runs[runs.0 as usize..(runs.0 + runs.1) as usize];
                    let cols = cols as usize;
                    let mut skips = SkipTally::new();
                    mac.rows_f.clear();
                    for run in runs {
                        let mut woff = w + run.r * cols as u32;
                        for x in run.x..run.x + run.n {
                            let xv = vals[x as usize];
                            if xv != 0.0 {
                                mac.rows_f.push((woff, f64::from(xv)));
                            } else {
                                skips.hit();
                            }
                            woff += cols as u32;
                        }
                    }
                    skips.flush(profile::OP_DENSE_F);
                    if store.output {
                        let acc = grow(&mut mac.acc_f, cols);
                        kernels::mac_f(self.simd, &self.wslab_f, cols, &mac.rows_f, acc);
                        scatter_out_f(vals, store, &mac.acc_f[..cols], 1, 0);
                    } else {
                        // Partial stripes are per-tile-unique and written
                        // exactly once, so the kernel's overwrite is the
                        // interpreter's scatter.
                        let dst = store.dst as usize;
                        kernels::mac_f(
                            self.simd,
                            &self.wslab_f,
                            cols,
                            &mac.rows_f,
                            &mut parts[dst..dst + cols],
                        );
                    }
                }
                Inst::ConvF {
                    runs,
                    wins,
                    x0,
                    wsel,
                    cols,
                    positions,
                    store,
                } => {
                    let runs = &self.conv_runs[runs.0 as usize..(runs.0 + runs.1) as usize];
                    let wins = &self.wins[wins.0 as usize..(wins.0 + wins.1) as usize];
                    let bases = &self.dup_bases[wsel.0 as usize..(wsel.0 + wsel.1) as usize];
                    let dups = wsel.2 as usize;
                    let cols = cols as usize;
                    let mut skips = SkipTally::new();
                    for (p, win) in wins.iter().enumerate().take(positions as usize) {
                        let wbase = bases[(p % dups) % bases.len()];
                        let xbase = i64::from(x0) + i64::from(win.base);
                        // Window clipping runs once per position (the
                        // interpreter re-derived it per element).
                        mac.rows_f.clear();
                        for run in runs {
                            if run.ky < win.ky0 || run.ky >= win.ky1 {
                                continue;
                            }
                            let lo = run.kx_lo.max(win.kx0);
                            let hi = run.kx_hi.min(win.kx1);
                            if lo >= hi {
                                continue;
                            }
                            // The row base alone can sit in the padded
                            // border (negative); only base + kx is a
                            // valid index, so stay in i64 until then.
                            let xrun = xbase + i64::from(run.x_rel);
                            let r = run.r0 + u32::from(lo - run.kx_lo);
                            let mut woff = wbase + r * cols as u32;
                            for kx in lo..hi {
                                let xv = vals[(xrun + i64::from(kx)) as usize];
                                if xv != 0.0 {
                                    mac.rows_f.push((woff, f64::from(xv)));
                                } else {
                                    skips.hit();
                                }
                                woff += cols as u32;
                            }
                        }
                        if store.output {
                            let acc = grow(&mut mac.acc_f, cols);
                            kernels::mac_f(self.simd, &self.wslab_f, cols, &mac.rows_f, acc);
                            scatter_out_f(vals, store, &mac.acc_f[..cols], positions as usize, p);
                        } else {
                            let dst = store.dst as usize + p * cols;
                            kernels::mac_f(
                                self.simd,
                                &self.wslab_f,
                                cols,
                                &mac.rows_f,
                                &mut parts[dst..dst + cols],
                            );
                        }
                    }
                    skips.flush(profile::OP_CONV_F);
                }
                Inst::ReduceF {
                    srcs,
                    cols,
                    positions,
                    store,
                } => {
                    let srcs = &self.reduce_srcs[srcs.0 as usize..(srcs.0 + srcs.1) as usize];
                    let (cols, positions) = (cols as usize, positions as usize);
                    for p in 0..positions {
                        for c in 0..cols {
                            let mut sum = 0.0f64;
                            for s in srcs {
                                sum += parts[s.base as usize + p * s.stride as usize + c];
                            }
                            store_one_f(vals, parts, store, c, sum, positions, p, cols);
                        }
                    }
                }
                Inst::AvgPoolF {
                    x0,
                    geom,
                    store,
                    div,
                } => {
                    pool_loop(geom, |p, c, base| {
                        let x = x0 as usize + c * geom.chan as usize + base;
                        let mut sum = 0.0f64;
                        for ky in 0..geom.k as usize {
                            let row = x + ky * geom.iw as usize;
                            for kx in 0..geom.k as usize {
                                sum += f64::from(vals[row + kx]);
                            }
                        }
                        store_one_f(
                            vals,
                            parts,
                            store,
                            c,
                            sum / div,
                            geom.positions as usize,
                            p,
                            geom.cols as usize,
                        );
                    });
                }
                Inst::GapF {
                    x0,
                    cols,
                    positions,
                    window,
                    store,
                    div,
                } => {
                    let (cols, positions, window) =
                        (cols as usize, positions as usize, window as usize);
                    for p in 0..positions {
                        for c in 0..cols {
                            let x = x0 as usize + c * window;
                            let sum: f64 = vals[x..x + window].iter().map(|&v| f64::from(v)).sum();
                            store_one_f(vals, parts, store, c, sum / div, positions, p, cols);
                        }
                    }
                }
                Inst::MaxPoolF { x0, geom, store } => {
                    pool_loop(geom, |p, c, base| {
                        let x = x0 as usize + c * geom.chan as usize + base;
                        let mut max = f64::NEG_INFINITY;
                        for ky in 0..geom.k as usize {
                            let row = x + ky * geom.iw as usize;
                            for kx in 0..geom.k as usize {
                                max = max.max(f64::from(vals[row + kx]));
                            }
                        }
                        store_one_f(
                            vals,
                            parts,
                            store,
                            c,
                            max,
                            geom.positions as usize,
                            p,
                            geom.cols as usize,
                        );
                    });
                }
                Inst::MaxFwdF {
                    src,
                    cols,
                    positions,
                    store,
                } => {
                    let (cols, positions) = (cols as usize, positions as usize);
                    for p in 0..positions {
                        for c in 0..cols {
                            let a = parts[src as usize + p * cols + c];
                            store_one_f(vals, parts, store, c, a, positions, p, cols);
                        }
                    }
                }
                Inst::EltwiseF {
                    sides,
                    x_off,
                    cols,
                    positions,
                    store,
                } => {
                    let sides = &self.side_bases[sides.0 as usize..(sides.0 + sides.1) as usize];
                    let (cols, positions) = (cols as usize, positions as usize);
                    for p in 0..positions {
                        for c in 0..cols {
                            let idx = x_off as usize + c * positions + p;
                            let mut sum = 0.0f64;
                            for &side in sides {
                                sum += f64::from(vals[side as usize + idx]);
                            }
                            store_one_f(vals, parts, store, c, sum, positions, p, cols);
                        }
                    }
                }
                // Integer variants never appear in a float stream.
                _ => unreachable!("integer instruction in a float stream"),
            }
        }
    }

    /// Execute the integer-domain stream over the arena's flat slabs.
    pub fn exec_integer(
        &self,
        vals: &mut [i64],
        parts: &mut [i64],
        alevels: i64,
        mac: &mut MacScratch,
    ) {
        for inst in &self.insts {
            self.exec_integer_inst(inst, vals, parts, alevels, mac);
        }
    }

    /// Instruction-major integer batch execution (see
    /// [`Lowered::exec_float_batch`] for the layout and identity argument).
    pub fn exec_integer_batch(
        &self,
        vals: &mut [i64],
        parts: &mut [i64],
        batch: usize,
        alevels: i64,
        mac: &mut MacScratch,
    ) {
        for inst in &self.insts {
            for s in 0..batch {
                let v = &mut vals[s * self.val_len..(s + 1) * self.val_len];
                let p = &mut parts[s * self.part_len..(s + 1) * self.part_len];
                self.exec_integer_inst(inst, v, p, alevels, mac);
            }
        }
    }

    fn exec_integer_inst(
        &self,
        inst: &Inst,
        vals: &mut [i64],
        parts: &mut [i64],
        alevels: i64,
        mac: &mut MacScratch,
    ) {
        profile::retire(inst.opcode(), 1);
        {
            match *inst {
                Inst::RescaleI {
                    src,
                    dst,
                    len,
                    from,
                    to,
                } => {
                    for i in 0..len as usize {
                        let c = vals[src as usize + i];
                        vals[dst as usize + i] = rescale_code(c, from, to, alevels);
                    }
                }
                Inst::RescaleI2 {
                    src,
                    dst,
                    len,
                    from,
                    side,
                    to,
                } => {
                    for i in 0..len as usize {
                        let gathered = rescale_code(vals[src as usize + i], from, side, alevels);
                        vals[dst as usize + i] = rescale_code(gathered, side, to, alevels);
                    }
                }
                Inst::DenseI {
                    runs,
                    w,
                    cols,
                    store,
                    rq,
                } => {
                    let runs = &self.dense_runs[runs.0 as usize..(runs.0 + runs.1) as usize];
                    let cols = cols as usize;
                    let mut skips = SkipTally::new();
                    mac.rows_i.clear();
                    for run in runs {
                        let mut woff = w + run.r * cols as u32;
                        for x in run.x..run.x + run.n {
                            let xv = vals[x as usize];
                            if xv != 0 {
                                mac.rows_i.push((woff, xv));
                            } else {
                                skips.hit();
                            }
                            woff += cols as u32;
                        }
                    }
                    skips.flush(profile::OP_DENSE_I);
                    if store.output {
                        let acc = grow(&mut mac.acc_i, cols);
                        kernels::mac_i(&self.wslab_q, cols, &mac.rows_i, acc);
                        scatter_out_i(vals, store, rq, alevels, &mac.acc_i[..cols], 1, 0);
                    } else {
                        let dst = store.dst as usize;
                        kernels::mac_i(
                            &self.wslab_q,
                            cols,
                            &mac.rows_i,
                            &mut parts[dst..dst + cols],
                        );
                    }
                }
                Inst::ConvI {
                    runs,
                    wins,
                    x0,
                    w,
                    cols,
                    positions,
                    store,
                    rq,
                } => {
                    let runs = &self.conv_runs[runs.0 as usize..(runs.0 + runs.1) as usize];
                    let wins = &self.wins[wins.0 as usize..(wins.0 + wins.1) as usize];
                    let cols = cols as usize;
                    let mut skips = SkipTally::new();
                    for (p, win) in wins.iter().enumerate().take(positions as usize) {
                        let xbase = i64::from(x0) + i64::from(win.base);
                        mac.rows_i.clear();
                        for run in runs {
                            if run.ky < win.ky0 || run.ky >= win.ky1 {
                                continue;
                            }
                            let lo = run.kx_lo.max(win.kx0);
                            let hi = run.kx_hi.min(win.kx1);
                            if lo >= hi {
                                continue;
                            }
                            let xrun = xbase + i64::from(run.x_rel);
                            let r = run.r0 + u32::from(lo - run.kx_lo);
                            let mut woff = w + r * cols as u32;
                            for kx in lo..hi {
                                let xv = vals[(xrun + i64::from(kx)) as usize];
                                if xv != 0 {
                                    mac.rows_i.push((woff, xv));
                                } else {
                                    skips.hit();
                                }
                                woff += cols as u32;
                            }
                        }
                        if store.output {
                            let acc = grow(&mut mac.acc_i, cols);
                            kernels::mac_i(&self.wslab_q, cols, &mac.rows_i, acc);
                            scatter_out_i(
                                vals,
                                store,
                                rq,
                                alevels,
                                &mac.acc_i[..cols],
                                positions as usize,
                                p,
                            );
                        } else {
                            let dst = store.dst as usize + p * cols;
                            kernels::mac_i(
                                &self.wslab_q,
                                cols,
                                &mac.rows_i,
                                &mut parts[dst..dst + cols],
                            );
                        }
                    }
                    skips.flush(profile::OP_CONV_I);
                }
                Inst::ReduceI {
                    srcs,
                    cols,
                    positions,
                    store,
                    rq,
                } => {
                    let srcs = &self.reduce_srcs[srcs.0 as usize..(srcs.0 + srcs.1) as usize];
                    let (cols, positions) = (cols as usize, positions as usize);
                    for p in 0..positions {
                        for c in 0..cols {
                            let mut sum = 0i64;
                            for s in srcs {
                                sum += parts[s.base as usize + p * s.stride as usize + c];
                            }
                            store_one_i(
                                vals,
                                parts,
                                store,
                                Some(rq),
                                alevels,
                                c,
                                sum,
                                positions,
                                p,
                                cols,
                            );
                        }
                    }
                }
                Inst::AvgPoolI {
                    x0,
                    geom,
                    store,
                    gstep,
                    ostep,
                } => {
                    let div = f64::from(geom.k * geom.k);
                    pool_loop(geom, |p, c, base| {
                        let x = x0 as usize + c * geom.chan as usize + base;
                        let mut sum = 0i64;
                        for ky in 0..geom.k as usize {
                            let row = x + ky * geom.iw as usize;
                            for kx in 0..geom.k as usize {
                                sum += vals[row + kx];
                            }
                        }
                        // Identical composition to `pooled_window_real`.
                        let real = sum as f64 * gstep / div;
                        let code = quantize_code(real, ostep, alevels);
                        store_one_i(
                            vals,
                            parts,
                            store,
                            None,
                            alevels,
                            c,
                            code,
                            geom.positions as usize,
                            p,
                            geom.cols as usize,
                        );
                    });
                }
                Inst::GapI {
                    x0,
                    cols,
                    positions,
                    window,
                    store,
                    gstep,
                    ostep,
                } => {
                    let (cols, positions, window) =
                        (cols as usize, positions as usize, window as usize);
                    for p in 0..positions {
                        for c in 0..cols {
                            let x = x0 as usize + c * window;
                            let sum: i64 = vals[x..x + window].iter().sum();
                            let real = sum as f64 * gstep / window as f64;
                            let code = quantize_code(real, ostep, alevels);
                            store_one_i(
                                vals, parts, store, None, alevels, c, code, positions, p, cols,
                            );
                        }
                    }
                }
                Inst::MaxPoolI { x0, geom, store } => {
                    pool_loop(geom, |p, c, base| {
                        let x = x0 as usize + c * geom.chan as usize + base;
                        let mut max = i64::MIN;
                        for ky in 0..geom.k as usize {
                            let row = x + ky * geom.iw as usize;
                            for kx in 0..geom.k as usize {
                                max = max.max(vals[row + kx]);
                            }
                        }
                        store_one_i(
                            vals,
                            parts,
                            store,
                            None,
                            alevels,
                            c,
                            max,
                            geom.positions as usize,
                            p,
                            geom.cols as usize,
                        );
                    });
                }
                Inst::MaxFwdI {
                    src,
                    cols,
                    positions,
                    store,
                    gstep,
                    ostep,
                } => {
                    let (cols, positions) = (cols as usize, positions as usize);
                    for p in 0..positions {
                        for c in 0..cols {
                            let real = parts[src as usize + p * cols + c] as f64 * gstep;
                            let code = quantize_code(real, ostep, alevels);
                            store_one_i(
                                vals, parts, store, None, alevels, c, code, positions, p, cols,
                            );
                        }
                    }
                }
                Inst::EltwiseI {
                    sides,
                    x_off,
                    cols,
                    positions,
                    store,
                    gstep,
                    ostep,
                } => {
                    let sides = &self.side_bases[sides.0 as usize..(sides.0 + sides.1) as usize];
                    let (cols, positions) = (cols as usize, positions as usize);
                    for p in 0..positions {
                        for c in 0..cols {
                            let idx = x_off as usize + c * positions + p;
                            let mut sum = 0i64;
                            for &side in sides {
                                sum += vals[side as usize + idx];
                            }
                            let sum = if store.relu { sum.max(0) } else { sum };
                            let code = rescale_code(sum, gstep, ostep, alevels);
                            store_one_i(
                                vals, parts, store, None, alevels, c, code, positions, p, cols,
                            );
                        }
                    }
                }
                _ => unreachable!("float instruction in an integer stream"),
            }
        }
    }

    /// Human-readable dump of the first `limit` instructions.
    pub fn disassemble(&self, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let shown = self.insts.len().min(limit);
        for (i, inst) in self.insts.iter().take(limit).enumerate() {
            let _ = writeln!(out, "{i:>5}  {inst}");
        }
        if shown < self.insts.len() {
            let _ = writeln!(
                out,
                "  ...  ({} more instructions)",
                self.insts.len() - shown
            );
        }
        out
    }
}

/// Iterate a pooling instruction's output positions without any run-time
/// shape math: `base` walks the window origins incrementally.
#[inline(always)]
fn pool_loop(geom: PoolLoop, mut body: impl FnMut(usize, usize, usize)) {
    let (positions, ow) = (geom.positions as usize, geom.ow as usize);
    let (stride, iw) = (geom.stride as usize, geom.iw as usize);
    let mut p = 0;
    let mut row_base = 0usize;
    'outer: loop {
        let mut base = row_base;
        for _ in 0..ow {
            for c in 0..geom.cols as usize {
                body(p, c, base);
            }
            p += 1;
            if p >= positions {
                break 'outer;
            }
            base += stride;
        }
        row_base += stride * iw;
    }
}

/// Store one float result: fused ReLU + f32 cast at output boundaries
/// (`out[(col_offset + c) · positions + p]`), raw f64 into the partial slab
/// (`part[p · cols + c]`) otherwise — exactly the interpreter's store paths.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn store_one_f(
    vals: &mut [f32],
    parts: &mut [f64],
    store: MacStore,
    c: usize,
    a: f64,
    positions: usize,
    p: usize,
    cols: usize,
) {
    if store.output {
        let a = if store.relu { a.max(0.0) } else { a };
        vals[store.dst as usize + c * positions + p] = a as f32;
    } else {
        parts[store.dst as usize + p * cols + c] = a;
    }
}

/// Scatter a MAC output row into the value slab: fused ReLU + f32 cast into
/// the node's `out[(col_offset + c) · positions + p]` stripe — exactly the
/// interpreter's output store.
#[inline(always)]
fn scatter_out_f(vals: &mut [f32], store: MacStore, acc: &[f64], positions: usize, p: usize) {
    let base = store.dst as usize + p;
    if store.relu {
        for (c, &a) in acc.iter().enumerate() {
            vals[base + c * positions] = a.max(0.0) as f32;
        }
    } else {
        for (c, &a) in acc.iter().enumerate() {
            vals[base + c * positions] = a as f32;
        }
    }
}

/// Store one integer result. MAC outputs (`rq = Some`) requantize through
/// `requantize_mac`; non-MAC stores receive an already-final code. Partial
/// stores keep the raw accumulation.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn store_one_i(
    vals: &mut [i64],
    parts: &mut [i64],
    store: MacStore,
    rq: Option<Requant>,
    alevels: i64,
    c: usize,
    a: i64,
    positions: usize,
    p: usize,
    cols: usize,
) {
    if store.output {
        let code = match rq {
            Some(rq) => requantize_mac(a, rq.wstep, rq.gstep, store.relu, rq.ostep, alevels),
            None => a,
        };
        vals[store.dst as usize + c * positions + p] = code;
    } else {
        parts[store.dst as usize + p * cols + c] = a;
    }
}

/// Scatter an integer MAC output row: `requantize_mac` per column into the
/// node's value-slab stripe, like the interpreter's store.
#[inline(always)]
fn scatter_out_i(
    vals: &mut [i64],
    store: MacStore,
    rq: Requant,
    alevels: i64,
    acc: &[i64],
    positions: usize,
    p: usize,
) {
    let base = store.dst as usize + p;
    for (c, &a) in acc.iter().enumerate() {
        vals[base + c * positions] =
            requantize_mac(a, rq.wstep, rq.gstep, store.relu, rq.ostep, alevels);
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn st(s: &MacStore) -> String {
            format!(
                "{}[{}]{}",
                if s.output { "val" } else { "part" },
                s.dst,
                if s.relu { " relu" } else { "" }
            )
        }
        match self {
            Inst::CopyF { src, dst, len } => {
                write!(f, "copy.f      val[{src}..+{len}] -> val[{dst}]")
            }
            Inst::RescaleI { src, dst, len, from, to } => write!(
                f,
                "rescale.i   val[{src}..+{len}] -> val[{dst}]  step {from:.3e}->{to:.3e}"
            ),
            Inst::RescaleI2 {
                src,
                dst,
                len,
                from,
                side,
                to,
            } => write!(
                f,
                "rescale2.i  val[{src}..+{len}] -> val[{dst}]  step {from:.3e}->{side:.3e}->{to:.3e}"
            ),
            Inst::DenseF { runs, w, cols, store } => write!(
                f,
                "mac.dense.f runs {}+{} w[{w}] cols {cols} -> {}",
                runs.0,
                runs.1,
                st(store)
            ),
            Inst::DenseI { runs, w, cols, store, .. } => write!(
                f,
                "mac.dense.i runs {}+{} w[{w}] cols {cols} -> {}",
                runs.0,
                runs.1,
                st(store)
            ),
            Inst::ConvF {
                runs,
                wins,
                x0,
                wsel,
                cols,
                positions,
                store,
            } => write!(
                f,
                "mac.conv.f  runs {}+{} wins {}+{} x0 {x0} dups {} cols {cols} pos {positions} -> {}",
                runs.0, runs.1, wins.0, wins.1, wsel.2, st(store)
            ),
            Inst::ConvI {
                runs,
                wins,
                x0,
                w,
                cols,
                positions,
                store,
                ..
            } => write!(
                f,
                "mac.conv.i  runs {}+{} wins {}+{} x0 {x0} w[{w}] cols {cols} pos {positions} -> {}",
                runs.0, runs.1, wins.0, wins.1, st(store)
            ),
            Inst::ReduceF { srcs, cols, positions, store } => write!(
                f,
                "reduce.f    srcs {}+{} cols {cols} pos {positions} -> {}",
                srcs.0,
                srcs.1,
                st(store)
            ),
            Inst::ReduceI { srcs, cols, positions, store, .. } => write!(
                f,
                "reduce.i    srcs {}+{} cols {cols} pos {positions} -> {}",
                srcs.0,
                srcs.1,
                st(store)
            ),
            Inst::AvgPoolF { x0, geom, store, .. } => write!(
                f,
                "avgpool.f   x0 {x0} k {} cols {} pos {} -> {}",
                geom.k,
                geom.cols,
                geom.positions,
                st(store)
            ),
            Inst::AvgPoolI { x0, geom, store, .. } => write!(
                f,
                "avgpool.i   x0 {x0} k {} cols {} pos {} -> {}",
                geom.k,
                geom.cols,
                geom.positions,
                st(store)
            ),
            Inst::GapF { x0, cols, positions, window, store, .. } => write!(
                f,
                "gap.f       x0 {x0} window {window} cols {cols} pos {positions} -> {}",
                st(store)
            ),
            Inst::GapI { x0, cols, positions, window, store, .. } => write!(
                f,
                "gap.i       x0 {x0} window {window} cols {cols} pos {positions} -> {}",
                st(store)
            ),
            Inst::MaxPoolF { x0, geom, store } => write!(
                f,
                "maxpool.f   x0 {x0} k {} cols {} pos {} -> {}",
                geom.k,
                geom.cols,
                geom.positions,
                st(store)
            ),
            Inst::MaxPoolI { x0, geom, store } => write!(
                f,
                "maxpool.i   x0 {x0} k {} cols {} pos {} -> {}",
                geom.k,
                geom.cols,
                geom.positions,
                st(store)
            ),
            Inst::MaxFwdF { src, cols, positions, store } => write!(
                f,
                "maxfwd.f    part[{src}] cols {cols} pos {positions} -> {}",
                st(store)
            ),
            Inst::MaxFwdI { src, cols, positions, store, .. } => write!(
                f,
                "maxfwd.i    part[{src}] cols {cols} pos {positions} -> {}",
                st(store)
            ),
            Inst::EltwiseF { sides, x_off, cols, positions, store } => write!(
                f,
                "eltwise.f   sides {}+{} x_off {x_off} cols {cols} pos {positions} -> {}",
                sides.0,
                sides.1,
                st(store)
            ),
            Inst::EltwiseI { sides, x_off, cols, positions, store, .. } => write!(
                f,
                "eltwise.i   sides {}+{} x_off {x_off} cols {cols} pos {positions} -> {}",
                sides.0,
                sides.1,
                st(store)
            ),
        }
    }
}
