//! Simulation engines for the FPSA reproduction.
//!
//! Two complementary simulators live here:
//!
//! * [`perf`] — the pipeline performance simulator. Given a mapped model
//!   (allocation + schedule), an architecture configuration and a
//!   communication estimate (from real place & route or from the analytic
//!   model), it reports throughput, end-to-end latency, area and the
//!   computation/communication breakdown — the quantities behind Figures 6–8
//!   and Table 3 of the paper.
//! * [`functional`] — functional studies on real (small, trainable) networks:
//!   running a trained MLP through cycle-accurate spiking PEs to confirm the
//!   spiking schema computes the right function, and the device-variation
//!   accuracy study behind Figure 9 (splice vs add weight representation).
//! * [`exec`] — the compiled-model execution engine: at bind time it lowers
//!   every scheduled tile program into a flat bytecode stream ([`bytecode`],
//!   built by [`lower`]) with preresolved buffer offsets, structural
//!   sparsity skipping and precomputed arena demand, then executes samples
//!   with a single dispatch loop in float, integer-exact or noisy-device
//!   precision — the numeric proof that compilation preserves semantics,
//!   fast enough to sit under the serving and sharding engines. The retired
//!   interpreter survives behind the default `shadow-interp` feature purely
//!   as the differential cross-check (`Executor::run_checked`).
//!
//! The [`trace`] module carries compile-stage instrumentation: the compiler
//! in `fpsa-core` fills a [`StageTrace`] per compilation and attaches it to
//! the [`PerformanceReport`], so consumers see both runtime performance and
//! where compile time went.

mod bytecode;
pub mod exec;
pub mod functional;
mod kernels;
mod lower;
pub mod perf;
pub mod profile;
pub mod trace;

pub use bytecode::LowerStats;
pub use exec::{ExecArena, ExecError, Executor, Precision};
pub use functional::{SpikingMlpRunner, VariationStudy};
pub use perf::{CommunicationEstimate, PerformanceReport, PerformanceSimulator};
pub use profile::{ProfileSnapshot, NUM_OPCODES, OPCODE_NAMES};
pub use trace::{CacheInfo, CacheOutcome, StageKind, StageQuality, StageRecord, StageTrace};
