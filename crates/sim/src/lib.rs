//! Simulation engines for the FPSA reproduction.
//!
//! Two complementary simulators live here:
//!
//! * [`perf`] — the pipeline performance simulator. Given a mapped model
//!   (allocation + schedule), an architecture configuration and a
//!   communication estimate (from real place & route or from the analytic
//!   model), it reports throughput, end-to-end latency, area and the
//!   computation/communication breakdown — the quantities behind Figures 6–8
//!   and Table 3 of the paper.
//! * [`functional`] — functional studies on real (small, trainable) networks:
//!   running a trained MLP through cycle-accurate spiking PEs to confirm the
//!   spiking schema computes the right function, and the device-variation
//!   accuracy study behind Figure 9 (splice vs add weight representation).
//! * [`exec`] — the compiled-model execution engine: interprets a compiled
//!   model's schedule entries on their PE blocks, moving activations along
//!   the mapper's nets, in float, integer-exact or noisy-device precision —
//!   the numeric proof that compilation preserves semantics.
//!
//! The [`trace`] module carries compile-stage instrumentation: the compiler
//! in `fpsa-core` fills a [`StageTrace`] per compilation and attaches it to
//! the [`PerformanceReport`], so consumers see both runtime performance and
//! where compile time went.

pub mod exec;
pub mod functional;
pub mod perf;
pub mod trace;

pub use exec::{ExecArena, ExecError, Executor, Precision};
pub use functional::{SpikingMlpRunner, VariationStudy};
pub use perf::{CommunicationEstimate, PerformanceReport, PerformanceSimulator};
pub use trace::{StageKind, StageQuality, StageRecord, StageTrace};
