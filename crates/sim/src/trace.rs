//! Compile-stage instrumentation.
//!
//! The compiler in `fpsa-core` runs as an explicit staged pipeline
//! (`Synthesize → Map → PlaceRoute → Estimate`, see DESIGN.md). Each stage
//! records its wall-clock time and artifact sizes into a [`StageTrace`] that
//! travels on the compiled model and into [`crate::PerformanceReport`], so
//! latency breakdowns (the Figure 7 bench and the compiler-stage ablation
//! bench) read real measurements instead of re-deriving them.
//!
//! The trace lives in `fpsa-sim` rather than `fpsa-core` because the
//! performance report is the public carrier: everything that consumes a
//! report can see where compile time went without depending on the compiler.

use serde::{Deserialize, Serialize};

/// The four stages of the compile pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageKind {
    /// Neural synthesis: computational graph → core-op graph.
    Synthesize,
    /// Spatial-to-temporal mapping: core-op graph → allocation/schedule/netlist.
    Map,
    /// Physical design: netlist → placement, routing and timing.
    PlaceRoute,
    /// Communication estimation: routed timing or the analytic wire model.
    Estimate,
}

impl StageKind {
    /// All stages in pipeline order.
    pub const ALL: [StageKind; 4] = [
        StageKind::Synthesize,
        StageKind::Map,
        StageKind::PlaceRoute,
        StageKind::Estimate,
    ];

    /// Human-readable stage name.
    pub fn name(&self) -> &'static str {
        match self {
            StageKind::Synthesize => "synthesize",
            StageKind::Map => "map",
            StageKind::PlaceRoute => "place&route",
            StageKind::Estimate => "estimate",
        }
    }
}

/// Deterministic quality metrics a stage attaches to its record — the
/// *result* quality next to the wall-clock cost, so a trace answers both
/// "where did compile time go" and "what did that time buy".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageQuality {
    /// Physical-design quality from the PlaceRoute stage.
    PlaceRoute {
        /// Final unweighted HPWL of the placement.
        placement_wirelength: f64,
        /// Overall annealing acceptance rate, 0..=1.
        placement_acceptance_rate: f64,
        /// Annealing moves the placer evaluated (the budget a warm start
        /// cuts — see [`CacheOutcome::WarmStart`]).
        placement_moves: u64,
        /// Whether the placement was seeded from a prior placement instead
        /// of annealing from a cold initial assignment.
        warm_started: bool,
        /// PathFinder negotiation iterations until convergence.
        router_iterations: usize,
        /// Minimum channel width the routed design needs.
        required_channel_width: usize,
        /// Longest routed connection in block hops.
        critical_hops: usize,
    },
}

/// How the compile cache satisfied (or didn't satisfy) one compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheOutcome {
    /// No cache was involved, or the key was absent: a full cold compile.
    Miss,
    /// The exact key was present in the in-memory store; the compiled
    /// artifact was reused without running any pipeline stage.
    Hit,
    /// The exact key missed, but a near-miss entry (same architecture and
    /// physical-design configuration, different graph) seeded the annealer
    /// with its mapped-forward placement — the pipeline ran, with a cut
    /// anneal budget.
    WarmStart,
    /// The exact key missed in memory but its on-disk placement seed was
    /// found: the pipeline ran with annealing skipped entirely (the seed
    /// *is* the final placement; routing re-derives deterministically).
    DiskSeed,
}

impl CacheOutcome {
    /// Human-readable outcome name.
    pub fn name(&self) -> &'static str {
        match self {
            CacheOutcome::Miss => "miss",
            CacheOutcome::Hit => "hit",
            CacheOutcome::WarmStart => "warm-start",
            CacheOutcome::DiskSeed => "disk-seed",
        }
    }
}

/// Cache provenance of one compilation, carried on its [`StageTrace`].
///
/// Like `wall_ns`, this is a *measurement of how the artifact was obtained*,
/// not part of the artifact's structure: two compilations of the same model
/// — one cold, one served from the cache — produce equal traces. It is
/// therefore excluded from [`StageTrace`] equality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheInfo {
    /// How the cache satisfied the compilation.
    pub outcome: CacheOutcome,
    /// Hex rendering of the content-addressed compile key.
    pub key: String,
    /// Wall-clock the cache saved versus a cold compile, in nanoseconds:
    /// the cached entry's full recorded compile time for a [`CacheOutcome::Hit`],
    /// the donor's PlaceRoute time minus the warm-started PlaceRoute time
    /// for a [`CacheOutcome::WarmStart`] / [`CacheOutcome::DiskSeed`]
    /// (clamped at zero), and `0` for a miss.
    pub saved_wall_ns: f64,
}

/// One stage's measurements.
///
/// Equality deliberately ignores `wall_ns`: two compilations of the same
/// model produce *structurally* identical traces but can never produce
/// identical timings, and results of parallel and sequential sweeps must
/// compare equal. Quality metrics are deterministic, so they *do* take part
/// in equality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageRecord {
    /// Which stage ran.
    pub stage: StageKind,
    /// Wall-clock time the stage took, in nanoseconds.
    pub wall_ns: f64,
    /// Number of artifact items the stage consumed (graph nodes, core-op
    /// groups, netlist blocks — whatever the stage's input is measured in).
    pub items_in: usize,
    /// Number of artifact items the stage produced.
    pub items_out: usize,
    /// Deterministic quality metrics of the stage's result, if it reports
    /// any (today only PlaceRoute does).
    pub quality: Option<StageQuality>,
}

impl PartialEq for StageRecord {
    fn eq(&self, other: &Self) -> bool {
        self.stage == other.stage
            && self.items_in == other.items_in
            && self.items_out == other.items_out
            && self.quality == other.quality
    }
}

/// The ordered per-stage measurements of one compilation.
///
/// Equality compares the stage records only: cache provenance, like
/// wall-clock, describes how this particular compilation went, not what it
/// produced — a cache hit must compare equal to the cold compile it reused.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageTrace {
    records: Vec<StageRecord>,
    cache: Option<CacheInfo>,
}

impl PartialEq for StageTrace {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
    }
}

impl StageTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one stage's record (stages arrive in execution order).
    pub fn push(&mut self, record: StageRecord) {
        self.records.push(record);
    }

    /// The recorded stages in execution order.
    pub fn records(&self) -> &[StageRecord] {
        &self.records
    }

    /// Number of recorded stages.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Wall-clock time of one stage, if it ran.
    pub fn wall_ns(&self, stage: StageKind) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.stage == stage)
            .map(|r| r.wall_ns)
    }

    /// Total wall-clock time across all recorded stages.
    pub fn total_wall_ns(&self) -> f64 {
        self.records.iter().map(|r| r.wall_ns).sum()
    }

    /// One stage's share of the total wall-clock time, in `0..=1`.
    pub fn share(&self, stage: StageKind) -> Option<f64> {
        let total = self.total_wall_ns();
        if total <= 0.0 {
            return None;
        }
        self.wall_ns(stage).map(|ns| ns / total)
    }

    /// Record how the compile cache satisfied this compilation.
    pub fn set_cache(&mut self, info: CacheInfo) {
        self.cache = Some(info);
    }

    /// Cache provenance of this compilation, if a cache was consulted.
    pub fn cache(&self) -> Option<&CacheInfo> {
        self.cache.as_ref()
    }

    /// Wall-clock the compile cache saved versus a cold compile, in ns.
    pub fn cache_saved_wall_ns(&self) -> f64 {
        self.cache.as_ref().map_or(0.0, |c| c.saved_wall_ns)
    }

    /// Render the trace as an aligned plain-text table.
    pub fn to_table(&self) -> String {
        let mut out = String::from("stage        | wall (ms) | share | items in -> out\n");
        out.push_str("-------------|-----------|-------|----------------\n");
        for r in &self.records {
            let share = self.share(r.stage).unwrap_or(0.0);
            out.push_str(&format!(
                "{:<12} | {:>9.3} | {:>4.0}% | {} -> {}\n",
                r.stage.name(),
                r.wall_ns * 1e-6,
                share * 100.0,
                r.items_in,
                r.items_out
            ));
        }
        out.push_str(&format!(
            "total        | {:>9.3} |  100% |\n",
            self.total_wall_ns() * 1e-6
        ));
        if let Some(cache) = &self.cache {
            out.push_str(&format!(
                "cache: {} (saved {:.3} ms, key {})\n",
                cache.outcome.name(),
                cache.saved_wall_ns * 1e-6,
                cache.key
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(stage: StageKind, wall_ns: f64) -> StageRecord {
        StageRecord {
            stage,
            wall_ns,
            items_in: 10,
            items_out: 20,
            quality: None,
        }
    }

    #[test]
    fn equality_ignores_wall_clock() {
        let mut a = StageTrace::new();
        let mut b = StageTrace::new();
        a.push(record(StageKind::Synthesize, 1_000.0));
        b.push(record(StageKind::Synthesize, 9_999.0));
        assert_eq!(a, b);
        // But not the structure.
        b.push(record(StageKind::Map, 1.0));
        assert_ne!(a, b);
    }

    #[test]
    fn equality_compares_quality_metrics() {
        let quality = StageQuality::PlaceRoute {
            placement_wirelength: 120.0,
            placement_acceptance_rate: 0.4,
            placement_moves: 6_000,
            warm_started: false,
            router_iterations: 3,
            required_channel_width: 9,
            critical_hops: 14,
        };
        let mut a = record(StageKind::PlaceRoute, 1.0);
        let mut b = record(StageKind::PlaceRoute, 2.0);
        a.quality = Some(quality.clone());
        b.quality = Some(quality);
        assert_eq!(a, b);
        b.quality = None;
        assert_ne!(a, b, "quality metrics are deterministic, so they compare");
    }

    #[test]
    fn equality_ignores_cache_provenance() {
        let mut cold = StageTrace::new();
        let mut cached = StageTrace::new();
        cold.push(record(StageKind::Synthesize, 1_000.0));
        cached.push(record(StageKind::Synthesize, 12.0));
        cached.set_cache(CacheInfo {
            outcome: CacheOutcome::Hit,
            key: "deadbeef".into(),
            saved_wall_ns: 988.0,
        });
        assert_eq!(
            cold, cached,
            "cache provenance is a measurement, not structure"
        );
        assert_eq!(cached.cache().unwrap().outcome, CacheOutcome::Hit);
        assert_eq!(cached.cache_saved_wall_ns(), 988.0);
        assert_eq!(cold.cache_saved_wall_ns(), 0.0);
        assert!(cached.to_table().contains("cache: hit"));
    }

    #[test]
    fn totals_and_shares_add_up() {
        let mut trace = StageTrace::new();
        trace.push(record(StageKind::Synthesize, 300.0));
        trace.push(record(StageKind::Map, 700.0));
        assert_eq!(trace.total_wall_ns(), 1_000.0);
        assert_eq!(trace.share(StageKind::Map), Some(0.7));
        assert_eq!(trace.wall_ns(StageKind::PlaceRoute), None);
        assert_eq!(trace.share(StageKind::PlaceRoute), None);
    }

    #[test]
    fn empty_trace_has_no_shares() {
        let trace = StageTrace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.share(StageKind::Synthesize), None);
    }

    #[test]
    fn table_lists_every_stage_plus_total() {
        let mut trace = StageTrace::new();
        for stage in StageKind::ALL {
            trace.push(record(stage, 100.0));
        }
        let table = trace.to_table();
        assert_eq!(table.lines().count(), 2 + 4 + 1);
        for stage in StageKind::ALL {
            assert!(table.contains(stage.name()), "{table}");
        }
    }
}
