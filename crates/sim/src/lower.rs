//! Bind-time lowering: tile programs → bytecode.
//!
//! [`lower`] walks the bound [`TileProgram`]s in schedule order exactly once
//! and produces the [`Lowered`] artifact the dispatch loops of
//! [`crate::bytecode`] execute:
//!
//! 1. **Layout** — every node activation buffer, gather view, element-wise
//!    side buffer and partial tile is assigned a fixed region of the flat
//!    value/partial slabs, so arena reservation is O(1) per run (resize to
//!    `val_len`/`part_len`, then memset) instead of per-buffer bookkeeping.
//! 2. **View resolution** — gathers and element-wise sides resolve to either
//!    an *alias* of the producer's region (single-segment views whose
//!    producers have all executed, and — in the integer domain — whose
//!    rescale is the lossless equal-step clamp of already-clamped codes) or
//!    explicit copy/rescale instructions placed at the same stream position
//!    the interpreter gathered at, replicating its snapshot semantics.
//! 3. **Sparsity** — crossbar rows whose realized weights are exactly zero
//!    in *every* duplicate realization are dropped structurally while
//!    building the row runs; a tile whose rows are all zero emits no
//!    instruction at all (the zeroed slab already holds its exact output).
//! 4. **Verification** — read-before-write orderings the interpreter only
//!    detected at run time ("producer executed after consumer") are caught
//!    here, at bind time, so dispatch itself is infallible.

use crate::bytecode::{
    ConvRun, Inst, Lowered, MacStore, PoolLoop, PosWin, ReduceSrc, Region, Requant, RowRun, Span,
};
use crate::exec::{side_gather_step, ConvGeom, ExecError, NodeInfo, ProgramKind, TileProgram};
use fpsa_nn::reference::InputView;
use fpsa_nn::NodeId;
use std::collections::HashMap;

fn mismatch(reason: impl Into<String>) -> ExecError {
    ExecError::ModelMismatch {
        reason: reason.into(),
    }
}

/// Everything [`lower`] needs from the bind phase.
pub(crate) struct LowerCtx<'a> {
    pub programs: &'a [TileProgram],
    pub nodes: &'a [Option<NodeInfo>],
    pub graph_len: usize,
    pub input: (NodeId, usize),
    /// Integer-mode activation steps per node (1.0 placeholders otherwise).
    pub node_steps: &'a [f64],
    pub integer: bool,
    /// Realized weight slabs, moved in from binding (row-major, one span per
    /// duplicate realization — see [`TileProgram::w_f`]).
    pub wslab_f: Vec<f32>,
    pub wslab_q: Vec<i64>,
}

struct LowerPass<'a> {
    ctx: LowerCtx<'a>,
    out: Lowered,
    val_cur: u32,
    part_cur: u32,
    node_regions: Vec<Option<Region>>,
    /// Output-writing programs per node: total vs already lowered.
    writers_total: Vec<u32>,
    writers_done: Vec<u32>,
    /// Resolved gather-view base per node (first consumer resolves it).
    gathers: HashMap<NodeId, u32>,
    /// Resolved element-wise sides per node (reused only once complete).
    eltwise_sides: HashMap<NodeId, Span>,
    /// Partial region per producing group id.
    partials: HashMap<usize, Region>,
    /// Convolution window table span per node.
    conv_wins: HashMap<NodeId, Span>,
}

/// Lower bound tile programs (in schedule order) into a bytecode stream.
pub(crate) fn lower(ctx: LowerCtx<'_>) -> Result<Lowered, ExecError> {
    let graph_len = ctx.graph_len;
    let mut pass = LowerPass {
        ctx,
        out: Lowered::default(),
        val_cur: 0,
        part_cur: 0,
        node_regions: vec![None; graph_len],
        writers_total: vec![0; graph_len],
        writers_done: vec![0; graph_len],
        gathers: HashMap::new(),
        eltwise_sides: HashMap::new(),
        partials: HashMap::new(),
        conv_wins: HashMap::new(),
    };
    pass.run()?;
    let mut out = pass.out;
    out.wslab_f = pass.ctx.wslab_f;
    out.wslab_q = pass.ctx.wslab_q;
    out.val_len = pass.val_cur as usize;
    out.part_len = pass.part_cur as usize;
    out.node_regions = pass.node_regions;
    out.stats.instructions = out.insts.len();
    out.stats.row_runs = out.dense_runs.len() + out.conv_runs.len();
    out.stats.value_slab = out.val_len;
    out.stats.partial_slab = out.part_len;
    out.stats.weight_slab = out.wslab_f.len().max(out.wslab_q.len());
    Ok(out)
}

impl<'a> LowerPass<'a> {
    fn alloc_val(&mut self, len: usize) -> Result<Region, ExecError> {
        let off = self.val_cur;
        let len = u32::try_from(len).map_err(|_| mismatch("value buffer exceeds u32 range"))?;
        self.val_cur = off
            .checked_add(len)
            .ok_or_else(|| mismatch("value slab exceeds u32 range"))?;
        Ok(Region { off, len })
    }

    fn alloc_part(&mut self, len: usize) -> Result<Region, ExecError> {
        let off = self.part_cur;
        let len = u32::try_from(len).map_err(|_| mismatch("partial buffer exceeds u32 range"))?;
        self.part_cur = off
            .checked_add(len)
            .ok_or_else(|| mismatch("partial slab exceeds u32 range"))?;
        Ok(Region { off, len })
    }

    /// The node's activation region, or a bind-time mismatch if no tile has
    /// written it yet — the interpreter's run-time "producer executed after
    /// consumer" check, moved to lowering.
    fn source_region(&self, node: NodeId) -> Result<Region, ExecError> {
        self.node_regions[node]
            .filter(|_| self.source_started(node))
            .ok_or_else(|| mismatch("producer executed after consumer"))
    }

    /// Whether at least one output-writing tile of `node` has lowered (the
    /// interpreter's liveness rule: the buffer exists from the first write).
    fn source_started(&self, node: NodeId) -> bool {
        node == self.ctx.input.0 || self.writers_done[node] > 0
    }

    /// Whether *every* output-writing tile of `node` has lowered.
    fn source_complete(&self, node: NodeId) -> bool {
        node == self.ctx.input.0
            || (self.writers_total[node] > 0 && self.writers_done[node] == self.writers_total[node])
    }

    fn run(&mut self) -> Result<(), ExecError> {
        // The input node's buffer leads the value slab; `run_into` copies
        // (float) or quantizes (integer) the sample into it before dispatch.
        let (input_node, input_len) = self.ctx.input;
        let region = self.alloc_val(input_len)?;
        self.node_regions[input_node] = Some(region);

        for prog in self.ctx.programs {
            if prog.writes_output {
                self.writers_total[prog.node] += 1;
            }
        }

        let programs = self.ctx.programs;
        for prog in programs {
            self.lower_program(prog)?;
        }
        Ok(())
    }

    fn lower_program(&mut self, prog: &'a TileProgram) -> Result<(), ExecError> {
        let info = self.ctx.nodes[prog.node]
            .as_ref()
            .ok_or_else(|| mismatch("program on a node without geometry"))?;

        // Resolve the node's gathered input view (first consumer only) or
        // this program's element-wise sides (re-resolved per program until
        // the sources are complete, like the interpreter re-gathers).
        let gather = if needs_gather(&prog.kind) {
            Some(self.resolve_gather(prog.node, info)?)
        } else {
            None
        };
        let sides = if let ProgramKind::Eltwise(views) = &prog.kind {
            Some(self.resolve_eltwise_sides(prog.node, info, views)?)
        } else {
            None
        };

        // Output target: the node's activation region (allocated at its
        // first writer, zeroed by the per-run memset) or a partial region.
        let store = if prog.writes_output {
            if self.node_regions[prog.node].is_none() {
                let region = self.alloc_val(info.elements)?;
                self.node_regions[prog.node] = Some(region);
            }
            let region = self.node_regions[prog.node].expect("just allocated");
            MacStore {
                dst: region.off + (prog.col_offset * prog.positions) as u32,
                output: true,
                relu: prog.relu,
            }
        } else {
            let region = self.alloc_part(prog.positions * prog.cols)?;
            self.partials.insert(prog.group, region);
            MacStore {
                dst: region.off,
                output: false,
                relu: prog.relu,
            }
        };

        let rq = Requant {
            wstep: info.weight_step,
            gstep: info.gather_step,
            ostep: info.out_step,
        };
        let integer = self.ctx.integer;
        let cols = prog.cols as u32;
        let positions = prog.positions as u32;

        let inst = match &prog.kind {
            ProgramKind::Dense => {
                let x0 = gather.expect("dense gathers") + prog.row_offset as u32;
                let runs = self.dense_runs(prog, x0);
                if runs.1 == 0 {
                    self.out.stats.skipped_zero_tiles += 1;
                    self.finish_program(prog);
                    return Ok(());
                }
                let w = self.weight_base(prog);
                if integer {
                    Inst::DenseI {
                        runs,
                        w,
                        cols,
                        store,
                        rq,
                    }
                } else {
                    Inst::DenseF {
                        runs,
                        w,
                        cols,
                        store,
                    }
                }
            }
            ProgramKind::Conv(geom) => {
                let x0 = gather.expect("conv gathers");
                let wins = self.conv_windows(prog.node, geom, prog.positions)?;
                let runs = self.conv_runs(prog, geom)?;
                if runs.1 == 0 {
                    self.out.stats.skipped_zero_tiles += 1;
                    self.finish_program(prog);
                    return Ok(());
                }
                if integer {
                    let w = self.weight_base(prog);
                    Inst::ConvI {
                        runs,
                        wins,
                        x0,
                        w,
                        cols,
                        positions,
                        store,
                        rq,
                    }
                } else {
                    let start = self.out.dup_bases.len() as u32;
                    for span in &prog.w_f {
                        self.out.dup_bases.push(span.0);
                    }
                    let wsel = (start, prog.w_f.len() as u32, prog.duplicates as u32);
                    Inst::ConvF {
                        runs,
                        wins,
                        x0,
                        wsel,
                        cols,
                        positions,
                        store,
                    }
                }
            }
            ProgramKind::Reduce(sources) => {
                let start = self.out.reduce_srcs.len() as u32;
                for &(pred, pred_cols, slice) in sources {
                    let region = self
                        .partials
                        .get(&pred)
                        .copied()
                        .ok_or_else(|| mismatch("reduction ran before its partial tiles"))?;
                    self.out.reduce_srcs.push(ReduceSrc {
                        base: region.off + slice as u32,
                        stride: pred_cols as u32,
                    });
                }
                let srcs = (start, sources.len() as u32);
                if integer {
                    Inst::ReduceI {
                        srcs,
                        cols,
                        positions,
                        store,
                        rq,
                    }
                } else {
                    Inst::ReduceF {
                        srcs,
                        cols,
                        positions,
                        store,
                    }
                }
            }
            ProgramKind::AvgPool(g) => {
                let x0 = gather.expect("pools gather") + (prog.col_offset * g.ih * g.iw) as u32;
                let geom = pool_loop(g, cols, positions);
                if integer {
                    Inst::AvgPoolI {
                        x0,
                        geom,
                        store,
                        gstep: info.gather_step,
                        ostep: info.out_step,
                    }
                } else {
                    let div = (g.kernel * g.kernel) as f64;
                    Inst::AvgPoolF {
                        x0,
                        geom,
                        store,
                        div,
                    }
                }
            }
            ProgramKind::GlobalAvgPool { window } => {
                let x0 = gather.expect("pools gather") + (prog.col_offset * window) as u32;
                let window = *window as u32;
                if integer {
                    Inst::GapI {
                        x0,
                        cols,
                        positions,
                        window,
                        store,
                        gstep: info.gather_step,
                        ostep: info.out_step,
                    }
                } else {
                    Inst::GapF {
                        x0,
                        cols,
                        positions,
                        window,
                        store,
                        div: f64::from(window),
                    }
                }
            }
            ProgramKind::MaxStage1(g) => {
                let x0 = gather.expect("pools gather") + (prog.col_offset * g.ih * g.iw) as u32;
                let geom = pool_loop(g, cols, positions);
                if integer {
                    Inst::MaxPoolI { x0, geom, store }
                } else {
                    Inst::MaxPoolF { x0, geom, store }
                }
            }
            ProgramKind::MaxStage2 { source } => {
                let src = self
                    .partials
                    .get(source)
                    .copied()
                    .ok_or_else(|| mismatch("max-pool stage 2 ran before stage 1"))?
                    .off;
                if integer {
                    Inst::MaxFwdI {
                        src,
                        cols,
                        positions,
                        store,
                        gstep: info.gather_step,
                        ostep: info.out_step,
                    }
                } else {
                    Inst::MaxFwdF {
                        src,
                        cols,
                        positions,
                        store,
                    }
                }
            }
            ProgramKind::Eltwise(_) => {
                let sides = sides.expect("eltwise resolves sides");
                let x_off = (prog.col_offset * prog.positions) as u32;
                if integer {
                    Inst::EltwiseI {
                        sides,
                        x_off,
                        cols,
                        positions,
                        store,
                        gstep: info.gather_step,
                        ostep: info.out_step,
                    }
                } else {
                    Inst::EltwiseF {
                        sides,
                        x_off,
                        cols,
                        positions,
                        store,
                    }
                }
            }
        };
        self.out.insts.push(inst);
        self.finish_program(prog);
        Ok(())
    }

    fn finish_program(&mut self, prog: &TileProgram) {
        if prog.writes_output {
            self.writers_done[prog.node] += 1;
        }
    }

    /// Resolve a node's gathered input view: alias the producer's region
    /// when that is provably identical to the interpreter's copied gather,
    /// otherwise emit copy/rescale instructions at this stream position.
    fn resolve_gather(&mut self, node: NodeId, info: &'a NodeInfo) -> Result<u32, ExecError> {
        if let Some(&base) = self.gathers.get(&node) {
            return Ok(base);
        }
        let view = &info.view;
        let base = if let [segment] = view[..] {
            let region = self.source_region(segment.source)?;
            let from = self.ctx.node_steps[segment.source];
            let lossless = !self.ctx.integer || from == info.gather_step;
            if self.source_complete(segment.source) && lossless {
                self.out.stats.aliased_views += 1;
                region.off
            } else {
                self.copy_view(view, info.gather_step, CopyKind::Gather)?
            }
        } else {
            self.copy_view(view, info.gather_step, CopyKind::Gather)?
        };
        self.gathers.insert(node, base);
        Ok(base)
    }

    /// Resolve one element-wise program's side views. The interpreter
    /// re-gathers sides for every program of the node, so a cached
    /// resolution is reused only when every source had executed (later
    /// programs then observe identical values); otherwise each program
    /// captures its own snapshot, exactly like the interpreter.
    fn resolve_eltwise_sides(
        &mut self,
        node: NodeId,
        info: &'a NodeInfo,
        views: &'a [InputView],
    ) -> Result<Span, ExecError> {
        if let Some(&span) = self.eltwise_sides.get(&node) {
            return Ok(span);
        }
        let mut all_complete = true;
        let mut bases = Vec::with_capacity(views.len());
        for view in views {
            let sstep = side_gather_step(self.ctx.node_steps, view);
            let complete = view.iter().all(|s| self.source_complete(s.source));
            all_complete &= complete;
            let base = if let [segment] = view[..] {
                let region = self.source_region(segment.source)?;
                let from = self.ctx.node_steps[segment.source];
                let lossless = !self.ctx.integer || (from == sstep && sstep == info.gather_step);
                if complete && lossless {
                    self.out.stats.aliased_views += 1;
                    region.off
                } else {
                    self.copy_view(view, info.gather_step, CopyKind::Side { sstep })?
                }
            } else {
                self.copy_view(view, info.gather_step, CopyKind::Side { sstep })?
            };
            bases.push(base);
        }
        let start = self.out.side_bases.len() as u32;
        let span = (start, bases.len() as u32);
        self.out.side_bases.extend(bases);
        if all_complete {
            self.eltwise_sides.insert(node, span);
        }
        Ok(span)
    }

    /// Materialize a view into a fresh region via copy (float) or rescale
    /// (integer) instructions at the current stream position, returning the
    /// region's base.
    fn copy_view(
        &mut self,
        view: &InputView,
        gather_step: f64,
        kind: CopyKind,
    ) -> Result<u32, ExecError> {
        let mut len = 0usize;
        for segment in view.iter() {
            len += self.source_region(segment.source)?.len as usize;
        }
        let region = self.alloc_val(len)?;
        let mut dst = region.off;
        for segment in view.iter() {
            let src = self.source_region(segment.source)?;
            let from = self.ctx.node_steps[segment.source];
            let inst = if !self.ctx.integer {
                Inst::CopyF {
                    src: src.off,
                    dst,
                    len: src.len,
                }
            } else {
                match kind {
                    CopyKind::Gather => Inst::RescaleI {
                        src: src.off,
                        dst,
                        len: src.len,
                        from,
                        to: gather_step,
                    },
                    CopyKind::Side { sstep } => Inst::RescaleI2 {
                        src: src.off,
                        dst,
                        len: src.len,
                        from,
                        side: sstep,
                        to: gather_step,
                    },
                }
            };
            self.out.insts.push(inst);
            self.out.stats.copied_segments += 1;
            dst += src.len;
        }
        Ok(region.off)
    }

    /// The weight-slab base a MAC instruction reads: the shared code span in
    /// the integer domain, the first duplicate realization otherwise (dense
    /// tiles have one position, so instance 0 is the only one the
    /// interpreter ever selects; convolution tiles carry their full
    /// duplicate table separately).
    fn weight_base(&self, prog: &TileProgram) -> u32 {
        if self.ctx.integer {
            prog.w_q.0
        } else {
            prog.w_f[0].0
        }
    }

    /// Whether tile row `r` is exactly zero in every realization the tile
    /// can execute on (so dropping it removes only zero terms everywhere).
    fn row_is_zero(&self, prog: &TileProgram, r: usize) -> bool {
        let cols = prog.cols;
        if self.ctx.integer {
            let (off, _) = prog.w_q;
            let row = &self.ctx.wslab_q[off as usize + r * cols..][..cols];
            row.iter().all(|&w| w == 0)
        } else {
            prog.w_f.iter().all(|&(off, _)| {
                let row = &self.ctx.wslab_f[off as usize + r * cols..][..cols];
                row.iter().all(|&w| w == 0.0)
            })
        }
    }

    /// Dense row runs: consecutive non-zero rows, x and r advancing in step.
    fn dense_runs(&mut self, prog: &TileProgram, x0: u32) -> Span {
        let start = self.out.dense_runs.len() as u32;
        let mut open: Option<RowRun> = None;
        for r in 0..prog.rows {
            if self.row_is_zero(prog, r) {
                self.out.stats.skipped_zero_rows += 1;
                if let Some(run) = open.take() {
                    self.out.dense_runs.push(run);
                }
                continue;
            }
            self.out.stats.mac_rows += 1;
            match &mut open {
                Some(run) => run.n += 1,
                None => {
                    open = Some(RowRun {
                        x: x0 + r as u32,
                        r: r as u32,
                        n: 1,
                    });
                }
            }
        }
        if let Some(run) = open {
            self.out.dense_runs.push(run);
        }
        (start, self.out.dense_runs.len() as u32 - start)
    }

    /// Convolution row runs: maximal stretches of one (channel, ky) kernel
    /// row, split at structurally-zero rows.
    fn conv_runs(&mut self, prog: &TileProgram, geom: &ConvGeom) -> Result<Span, ExecError> {
        let k = geom.kernel;
        if k > u8::MAX as usize {
            return Err(mismatch("convolution kernel exceeds bytecode range"));
        }
        let start = self.out.conv_runs.len() as u32;
        let mut open: Option<(ConvRun, usize)> = None;
        for r in 0..prog.rows {
            let abs = prog.row_offset + r;
            let channel = abs / (k * k);
            let rem = abs % (k * k);
            let (ky, kx) = (rem / k, rem % k);
            if self.row_is_zero(prog, r) {
                self.out.stats.skipped_zero_rows += 1;
                if let Some((run, _)) = open.take() {
                    self.out.conv_runs.push(run);
                }
                continue;
            }
            self.out.stats.mac_rows += 1;
            match &mut open {
                Some((run, run_channel))
                    if *run_channel == channel
                        && run.ky as usize == ky
                        && run.kx_hi as usize == kx =>
                {
                    run.kx_hi += 1;
                }
                _ => {
                    if let Some((run, _)) = open.take() {
                        self.out.conv_runs.push(run);
                    }
                    open = Some((
                        ConvRun {
                            x_rel: (channel * geom.ih * geom.iw + ky * geom.iw) as u32,
                            r0: r as u32,
                            ky: ky as u8,
                            kx_lo: kx as u8,
                            kx_hi: kx as u8 + 1,
                        },
                        channel,
                    ));
                }
            }
        }
        if let Some((run, _)) = open {
            self.out.conv_runs.push(run);
        }
        Ok((start, self.out.conv_runs.len() as u32 - start))
    }

    /// The per-position window table of a convolution node (shared by all
    /// its tiles): base offsets and clip ranges, row-major `oy · ow + ox`.
    fn conv_windows(
        &mut self,
        node: NodeId,
        geom: &ConvGeom,
        positions: usize,
    ) -> Result<Span, ExecError> {
        if let Some(&span) = self.conv_wins.get(&node) {
            return Ok(span);
        }
        let (k, s, pad) = (geom.kernel as i64, geom.stride as i64, geom.padding as i64);
        let (ih, iw) = (geom.ih as i64, geom.iw as i64);
        let ow = ((iw + 2 * pad - k) / s + 1) as usize;
        if ow == 0 || !positions.is_multiple_of(ow) {
            return Err(mismatch("convolution positions do not tile its output"));
        }
        let oh = positions / ow;
        let start = self.out.wins.len() as u32;
        for oy in 0..oh as i64 {
            let y0 = oy * s - pad;
            let ky0 = (-y0).clamp(0, k);
            let ky1 = (ih - y0).clamp(ky0, k);
            for ox in 0..ow as i64 {
                let x0 = ox * s - pad;
                let kx0 = (-x0).clamp(0, k);
                let kx1 = (iw - x0).clamp(kx0, k);
                self.out.wins.push(PosWin {
                    base: i32::try_from(y0 * iw + x0)
                        .map_err(|_| mismatch("convolution window exceeds bytecode range"))?,
                    ky0: ky0 as u8,
                    ky1: ky1 as u8,
                    kx0: kx0 as u8,
                    kx1: kx1 as u8,
                });
            }
        }
        let span = (start, (self.out.wins.len() as u32) - start);
        self.conv_wins.insert(node, span);
        Ok(span)
    }
}

/// What a copied view feeds (integer instructions differ).
#[derive(Clone, Copy)]
enum CopyKind {
    Gather,
    Side { sstep: f64 },
}

fn pool_loop(geom: &crate::exec::PoolGeom, cols: u32, positions: u32) -> PoolLoop {
    PoolLoop {
        cols,
        positions,
        ow: ((geom.iw - geom.kernel) / geom.stride + 1) as u32,
        k: geom.kernel as u32,
        stride: geom.stride as u32,
        iw: geom.iw as u32,
        chan: (geom.ih * geom.iw) as u32,
    }
}

/// Views gather the node's logical input for these kinds (mirror of the
/// interpreter's rule).
fn needs_gather(kind: &ProgramKind) -> bool {
    matches!(
        kind,
        ProgramKind::Dense
            | ProgramKind::Conv(_)
            | ProgramKind::AvgPool(_)
            | ProgramKind::GlobalAvgPool { .. }
            | ProgramKind::MaxStage1(_)
    )
}
