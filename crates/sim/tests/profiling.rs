//! Integration test for the `obs-profile` executor profiling hooks.
//!
//! Lives in its own test binary (one process) because the counter banks are
//! process-global; everything runs in one test fn so nothing interleaves.
#![cfg(feature = "obs-profile")]

use fpsa_mapper::{AllocationPolicy, Mapper};
use fpsa_nn::params::mlp_graph;
use fpsa_nn::GraphParameters;
use fpsa_sim::{profile, Executor, Precision};
use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};

#[test]
fn profiling_counts_retires_and_sparsity_skips() {
    // All-negative weights kill every ReLU after the first layer, so the
    // run-time zero-activation skip fires on every downstream dense row.
    let graph = mlp_graph("profiled-mlp", &[10, 8, 6, 4]);
    let params = GraphParameters::seeded(&graph, 7).map_weights(|w| -w.abs());
    let core = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
        .synthesize(&graph)
        .unwrap();
    let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(1)).map(&core);
    let exec = Executor::bind(&graph, &params, &core, &mapping, &Precision::Float).unwrap();
    let input = vec![0.5f32; 10];

    assert!(profile::compiled_in());

    // Sampling off: the hooks are compiled in but must record nothing.
    profile::reset();
    profile::set_sampling(false);
    exec.run(&input).unwrap();
    assert_eq!(profile::snapshot().total_retired(), 0);
    assert_eq!(profile::snapshot().total_skipped(), 0);

    // Sampling on, sequential run: every instruction retires once and the
    // dead activations show up as skipped DenseF rows.
    profile::set_sampling(true);
    exec.run(&input).unwrap();
    let seq = profile::snapshot();
    profile::set_sampling(false);
    assert_eq!(
        seq.total_retired(),
        exec.lowering_stats().instructions as u64
    );
    let dense_f = fpsa_sim::OPCODE_NAMES.iter().position(|&n| n == "DenseF");
    let dense_f = dense_f.expect("DenseF opcode exists");
    assert!(seq.retired[dense_f] > 0, "{seq:?}");
    assert!(
        seq.skipped[dense_f] > 0,
        "dead ReLU rows must skip: {seq:?}"
    );
    assert_eq!(seq.rows().len(), {
        (0..fpsa_sim::NUM_OPCODES)
            .filter(|&i| seq.retired[i] != 0 || seq.skipped[i] != 0)
            .count()
    });

    // Batch run: per-sample retire counts (a batch of b retires every
    // instruction b times), and the group skip still fires because every
    // sample in the group has the same dead activations.
    profile::reset();
    profile::set_sampling(true);
    let inputs = vec![input.clone(); 4];
    let mut arena = exec.arena();
    let mut outputs = Vec::new();
    exec.run_batch_into(&inputs, &mut arena, &mut outputs)
        .unwrap();
    let batch = profile::snapshot();
    profile::set_sampling(false);
    assert_eq!(outputs.len(), 4);
    assert_eq!(
        batch.total_retired(),
        4 * exec.lowering_stats().instructions as u64
    );
    assert!(batch.skipped[dense_f] > 0, "{batch:?}");
}
