//! Sparsity proptests for the bytecode executor.
//!
//! The lowering pass drops all-zero weight rows structurally and the
//! dispatch loop short-circuits zero-activation rows at run time. Both
//! skips must be *invisible*: for randomly zeroed weight tiles and
//! ReLU-dead activations, the bytecode stream has to stay bit-identical
//! to the retired interpreter in every precision regime
//! (`Executor::run_checked` panics on the first diverging node).

use fpsa_device::variation::{CellVariation, WeightScheme};
use fpsa_mapper::{AllocationPolicy, Mapper};
use fpsa_nn::params::mlp_graph;
use fpsa_nn::reference::{QuantizationPlan, Reference};
use fpsa_nn::{seeds, ComputationalGraph, GraphParameters, Operator};
use fpsa_sim::{Executor, Precision};
use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn compile(graph: &ComputationalGraph) -> (fpsa_synthesis::CoreOpGraph, fpsa_mapper::Mapping) {
    let core = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
        .synthesize(graph)
        .expect("test models synthesize");
    let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(1)).map(&core);
    (core, mapping)
}

fn samples(graph: &ComputationalGraph, n: usize, seed: u64) -> Vec<Vec<f32>> {
    let len = graph
        .nodes()
        .iter()
        .find_map(|node| match node.op {
            Operator::Input { shape } => Some(shape.elements()),
            _ => None,
        })
        .expect("graph has an input");
    (0..n)
        .map(|i| {
            let mut rng =
                StdRng::seed_from_u64(seeds::derive(seed, seeds::STREAM_SAMPLES, i as u64));
            (0..len).map(|_| rng.gen_range(0.0f32..1.0)).collect()
        })
        .collect()
}

/// Seeded parameters with each weight independently zeroed with probability
/// `zero_pct`/100 — the random sparsity pattern under test.
fn sparse_params(graph: &ComputationalGraph, seed: u64, zero_pct: u32) -> GraphParameters {
    let dense = GraphParameters::seeded(graph, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AC5_AC5A);
    let tensors = (0..graph.len())
        .map(|node| {
            dense.weights(node).map(|w| {
                w.iter()
                    .map(|&v| {
                        if rng.gen_range(0u32..100) < zero_pct {
                            0.0
                        } else {
                            v
                        }
                    })
                    .collect()
            })
        })
        .collect();
    GraphParameters::from_parts(tensors)
}

/// The three numeric regimes, calibrated/seeded from the same model.
fn precisions(
    graph: &ComputationalGraph,
    params: &GraphParameters,
    inputs: &[Vec<f32>],
) -> Vec<Precision> {
    let plan = QuantizationPlan::calibrate(graph, params, inputs).expect("plan calibrates");
    vec![
        Precision::Float,
        Precision::Integer(plan),
        Precision::Noisy {
            scheme: WeightScheme::fpsa_add(),
            variation: CellVariation::measured(),
            seed: 0x5AD,
        },
    ]
}

/// Bind every precision and run the interpreter cross-check on each sample:
/// `run_checked` asserts per-node bit identity between the bytecode stream
/// and the retired interpreter, then we assert the checked path returns the
/// exact output the production path computes.
fn check_all_precisions(graph: &ComputationalGraph, params: &GraphParameters, seed: u64) {
    let (core, mapping) = compile(graph);
    let inputs = samples(graph, 3, seed);
    for precision in precisions(graph, params, &inputs) {
        let exec = Executor::bind(graph, params, &core, &mapping, &precision)
            .unwrap_or_else(|e| panic!("{}: bind failed: {e}", graph.name));
        for x in &inputs {
            let checked = exec.run_checked(x).expect("checked run succeeds");
            let plain = exec.run(x).expect("plain run succeeds");
            assert_eq!(
                checked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{}: checked and production outputs diverged ({precision:?})",
                graph.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomly zeroed weight tiles execute bit-identically to the
    /// interpreter across Float / Integer / Noisy. High zero rates make
    /// all-zero rows (structurally dropped at lowering) near-certain.
    #[test]
    fn randomly_zeroed_weight_tiles_stay_bit_identical(
        seed in 0u64..1_000_000,
        zero_pct in 0u32..96,
    ) {
        let graph = mlp_graph("sparse-mlp", &[12, 10, 8, 4]);
        let params = sparse_params(&graph, seed, zero_pct);
        check_all_precisions(&graph, &params, seed);
    }

    /// All-negative weights kill every ReLU after the first layer, so all
    /// downstream activations are exactly zero — the run-time
    /// zero-activation-row short circuit fires on every row and must not
    /// change a single bit in any precision regime.
    #[test]
    fn relu_dead_activations_skip_bit_identically(seed in 0u64..1_000_000) {
        let graph = mlp_graph("dead-mlp", &[10, 8, 6, 4]);
        let params = GraphParameters::seeded(&graph, seed).map_weights(|w| -w.abs());
        check_all_precisions(&graph, &params, seed);
    }
}

/// Regression: an all-zero weight tile must vanish at lowering — zero
/// instructions emitted for it, counted in `skipped_zero_tiles` — and the
/// memset-zeroed arena must reproduce the interpreter's zero activations.
#[test]
fn an_all_zero_tile_emits_zero_instructions() {
    let graph = mlp_graph("zero-mlp", &[8, 6, 4]);
    let (core, mapping) = compile(&graph);

    let dense = GraphParameters::seeded(&graph, 9);
    let dense_exec = Executor::bind(&graph, &dense, &core, &mapping, &Precision::Float).unwrap();
    let dense_stats = dense_exec.lowering_stats().clone();
    assert_eq!(dense_stats.skipped_zero_tiles, 0);
    assert!(dense_stats.mac_rows > 0);

    // Zero out the first Linear layer's whole tensor; keep the rest dense.
    let node = graph
        .nodes()
        .iter()
        .find(|n| matches!(n.op, Operator::Linear { .. }))
        .expect("MLP has a Linear node")
        .id;
    let tensors = (0..graph.len())
        .map(|i| {
            dense.weights(i).map(|w| {
                if i == node {
                    vec![0.0; w.len()]
                } else {
                    w.to_vec()
                }
            })
        })
        .collect();
    let zeroed = GraphParameters::from_parts(tensors);

    let exec = Executor::bind(&graph, &zeroed, &core, &mapping, &Precision::Float).unwrap();
    let stats = exec.lowering_stats();
    assert!(
        stats.skipped_zero_tiles >= 1,
        "the all-zero tile was not structurally skipped: {stats:?}"
    );
    assert!(
        stats.instructions < dense_stats.instructions,
        "dropping a whole tile must shrink the stream: {} vs {}",
        stats.instructions,
        dense_stats.instructions
    );

    // The skipped tile's activations come from the memset-zeroed arena and
    // must still match the golden reference and the interpreter bit for bit.
    let reference = Reference::new(&graph, &zeroed).unwrap();
    for x in samples(&graph, 3, 13) {
        let got = exec.run_checked(&x).unwrap();
        let want = reference.logits(&x).unwrap();
        assert_eq!(got.len(), want.len());
        for (&g, &w) in got.iter().zip(&want) {
            assert!((f64::from(g) - f64::from(w)).abs() < 1e-4);
        }
    }

    // A fully zero model lowers to a stream with no mac work at all.
    let all_zero = dense.map_weights(|_| 0.0);
    let exec = Executor::bind(&graph, &all_zero, &core, &mapping, &Precision::Float).unwrap();
    let stats = exec.lowering_stats();
    assert_eq!(stats.mac_rows, 0, "{stats:?}");
    assert_eq!(stats.row_runs, 0, "{stats:?}");
    let out = exec.run(&samples(&graph, 1, 17)[0]).unwrap();
    assert!(out.iter().all(|&v| v == 0.0), "zero weights → zero logits");
}
