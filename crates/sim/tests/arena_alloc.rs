//! Steady-state serving makes **zero heap allocations**.
//!
//! The lowering pass hoists each program's peak arena demand into the
//! compiled artifact (`val_len`/`part_len`), so `run_into` reserves slabs
//! in O(1) and — once the arena and output vectors have grown to capacity —
//! never touches the allocator again. This test installs a counting
//! `#[global_allocator]` and asserts the allocation counter does not move
//! across steady-state batches.
//!
//! It must stay the **only** test in this file: a process-wide counting
//! allocator cannot coexist with concurrently running unrelated tests.

use fpsa_mapper::{AllocationPolicy, Mapper};
use fpsa_nn::{seeds, zoo, GraphParameters, Operator};
use fpsa_sim::{ExecArena, Executor, Precision};
use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every allocating call.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_batches_allocate_nothing() {
    let graph = zoo::tiny_cnn();
    let params = GraphParameters::seeded(&graph, 0xA110C);
    let core = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
        .synthesize(&graph)
        .expect("tiny CNN synthesizes");
    let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(1)).map(&core);

    let input_len = graph
        .nodes()
        .iter()
        .find_map(|node| match node.op {
            Operator::Input { shape } => Some(shape.elements()),
            _ => None,
        })
        .expect("graph has an input");
    let inputs: Vec<Vec<f32>> = (0..4)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seeds::derive(5, seeds::STREAM_SAMPLES, i));
            (0..input_len).map(|_| rng.gen_range(0.0f32..1.0)).collect()
        })
        .collect();

    let plan = fpsa_nn::reference::QuantizationPlan::calibrate(&graph, &params, &inputs)
        .expect("plan calibrates");
    let precisions = [
        Precision::Float,
        Precision::Integer(plan),
        Precision::Noisy {
            scheme: fpsa_device::variation::WeightScheme::fpsa_add(),
            variation: fpsa_device::variation::CellVariation::measured(),
            seed: 7,
        },
    ];
    for precision in precisions {
        let exec =
            Executor::bind(&graph, &params, &core, &mapping, &precision).expect("tiny CNN binds");
        let mut arena = ExecArena::default();
        let mut outputs: Vec<Vec<f32>> = Vec::new();

        // Warm-up: the arena slabs grow to the lowered `val_len`/`part_len`
        // and the output vectors to the logit width — the only allocations
        // the executor is allowed.
        exec.run_batch_into(&inputs, &mut arena, &mut outputs)
            .expect("warm-up batch runs");
        let warm = outputs.clone();

        // The counter is process-wide, and libtest's main thread lazily
        // allocates its completion-channel context the first time it
        // blocks in recv — a sleep hands it the CPU so that one-time init
        // lands here instead of racing into the measured window (a ~50%
        // flake on a single-core host before this guard).
        std::thread::sleep(std::time::Duration::from_millis(50));

        // Steady state: the counter must not move at all.
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..5 {
            exec.run_batch_into(&inputs, &mut arena, &mut outputs)
                .expect("steady-state batch runs");
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "steady-state serving hit the allocator ({precision:?})"
        );
        assert_eq!(outputs, warm, "steady-state outputs drifted");
    }
}
