//! Property-based invariants of the scheduler over arbitrary core-op DAGs.
//!
//! The compiled-model execution engine (`fpsa_sim::exec`) interprets
//! schedule entries in start-cycle order and refuses schedules that violate
//! dependency ordering — these properties pin the contract the scheduler
//! must uphold for *any* DAG, not just the zoo models:
//!
//! * **dependency order** — every edge's consumer starts strictly after its
//!   producer starts (NBD) or strictly after it ends (BD for buffered
//!   edges), so start-cycle order is a topological order;
//! * **no double-booking** — every PE hosts exactly one group, and the
//!   group's scheduled window is long enough for all of the PE's iterations
//!   (the RC constraint at group granularity);
//! * **sampling window** — every execution lasts at least Γ cycles.

use fpsa_mapper::{AllocationPolicy, Mapper, NetlistBlock};
use fpsa_synthesis::{CoreOpGraph, CoreOpGroup, CoreOpKind};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Build a random DAG: `reuses[i]` is group `i`'s reuse degree; an edge
/// `i -> j` (i < j) exists where the corresponding bit is set.
fn dag(reuses: &[u64], edge_bits: &[u32]) -> CoreOpGraph {
    let mut g = CoreOpGraph::new("prop-dag", 256, 256);
    for (i, &reuse) in reuses.iter().enumerate() {
        g.add_group(CoreOpGroup {
            id: 0,
            name: format!("g{i}"),
            source_node: i,
            kind: CoreOpKind::Vmm,
            rows: 256,
            cols: 128,
            row_offset: 0,
            col_offset: 0,
            reuse_degree: reuse,
            relu: false,
            layer_depth: i,
        });
    }
    let mut bit = 0;
    for i in 0..reuses.len() {
        for j in (i + 1)..reuses.len() {
            if edge_bits.get(bit).copied().unwrap_or(0) == 1 {
                g.add_edge(i, j);
            }
            bit += 1;
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// NBD/BD: schedule entries respect net dependencies, so sorting by
    /// start cycle yields a valid (topological) execution order.
    #[test]
    fn entries_respect_net_dependencies(
        reuses in proptest::collection::vec(1u64..200, 2..10),
        edge_bits in proptest::collection::vec(0u32..2, 45),
        duplication in 1u64..8,
    ) {
        let graph = dag(&reuses, &edge_bits);
        let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(duplication))
            .map(&graph);
        let schedule = &mapping.schedule;
        let buffered: HashSet<_> = schedule.buffered_edges.iter().copied().collect();
        for &(u, v) in graph.edges() {
            let pu = schedule.entry(u).unwrap();
            let pv = schedule.entry(v).unwrap();
            if buffered.contains(&(u, v)) {
                prop_assert!(
                    pv.start_cycle > pu.end_cycle,
                    "BD violated for ({u},{v}): {pu:?} -> {pv:?}"
                );
            } else {
                prop_assert!(
                    pv.start_cycle > pu.start_cycle,
                    "NBD violated for ({u},{v}): {pu:?} -> {pv:?}"
                );
                prop_assert!(
                    pv.end_cycle > pu.end_cycle,
                    "NBD end cover violated for ({u},{v}): {pu:?} -> {pv:?}"
                );
            }
        }
    }

    /// RC: no PE is double-booked — each PE block hosts exactly one group,
    /// and its group's scheduled window covers the PE's iteration count.
    #[test]
    fn no_pe_is_double_booked(
        reuses in proptest::collection::vec(1u64..200, 2..10),
        edge_bits in proptest::collection::vec(0u32..2, 45),
        duplication in 1u64..8,
    ) {
        let graph = dag(&reuses, &edge_bits);
        let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(duplication))
            .map(&graph);
        let mut seen: HashMap<(usize, u64), usize> = HashMap::new();
        for (slot, block) in mapping.netlist.blocks().iter().enumerate() {
            if let NetlistBlock::Pe { group, duplicate } = *block {
                // A (group, duplicate) PE must exist exactly once.
                prop_assert!(
                    seen.insert((group, duplicate), slot).is_none(),
                    "PE ({group},{duplicate}) instantiated twice"
                );
                let entry = mapping.schedule.entry(group).unwrap();
                let iterations = mapping.allocation.iterations[group];
                prop_assert!(
                    entry.duration() >= iterations * mapping.schedule.sampling_window,
                    "PE ({group},{duplicate}) window {} too short for {} iterations",
                    entry.duration(),
                    iterations
                );
            }
        }
        prop_assert_eq!(seen.len(), mapping.allocation.total_pes());
    }

    /// SW: every execution lasts at least one sampling window.
    #[test]
    fn sampling_window_holds_for_arbitrary_dags(
        reuses in proptest::collection::vec(1u64..200, 1..10),
        edge_bits in proptest::collection::vec(0u32..2, 45),
    ) {
        let graph = dag(&reuses, &edge_bits);
        let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(1)).map(&graph);
        for entry in &mapping.schedule.entries {
            prop_assert!(entry.duration() >= 64, "SW violated: {entry:?}");
        }
    }
}
