//! Control-logic planning.
//!
//! The CLBs generate the sequencing signals the schedule implies: per-PE
//! iteration counters and reset pulses, SMB address counters and port
//! selects. This module estimates how many LUTs (and therefore CLBs) a
//! mapped model needs, which feeds both the netlist and the area model.

use crate::allocation::Allocation;
use crate::schedule::Schedule;
use fpsa_device::clb::ConfigurableLogicBlockSpec;
use fpsa_synthesis::CoreOpGraph;
use serde::{Deserialize, Serialize};

/// The estimated control-logic requirement of a mapped model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlPlan {
    /// Total LUTs needed.
    pub lut_count: usize,
    /// CLBs needed at the configured LUTs-per-CLB.
    pub clb_count: usize,
    /// LUTs devoted to PE sequencing.
    pub pe_luts: usize,
    /// LUTs devoted to SMB addressing.
    pub smb_luts: usize,
}

impl ControlPlan {
    /// LUTs needed to sequence one PE executing `iterations` iterations: a
    /// counter wide enough for the iteration count, a comparator and the
    /// sampling-window reset pulse.
    pub fn luts_per_pe(iterations: u64) -> usize {
        let counter_bits = 64 - iterations.max(1).leading_zeros() as usize;
        // counter + comparator + reset/enable decode
        2 * counter_bits.max(1) + 4
    }

    /// LUTs needed to run one SMB buffer: read/write address counters and a
    /// port-select decoder.
    pub fn luts_per_smb() -> usize {
        24
    }

    /// Build the plan for an allocated, scheduled graph.
    pub fn for_schedule(graph: &CoreOpGraph, allocation: &Allocation, schedule: &Schedule) -> Self {
        let pe_luts: usize = graph
            .groups()
            .iter()
            .map(|g| {
                let dups = allocation.per_group.get(g.id).copied().unwrap_or(1) as usize;
                let iters = allocation.iterations.get(g.id).copied().unwrap_or(1);
                dups * Self::luts_per_pe(iters)
            })
            .sum();
        let smb_luts = schedule.buffer_count() * Self::luts_per_smb();
        let lut_count = pe_luts + smb_luts;
        let per_clb = ConfigurableLogicBlockSpec::fpsa_128lut().lut_count;
        ControlPlan {
            lut_count,
            clb_count: lut_count.div_ceil(per_clb).max(1),
            pe_luts,
            smb_luts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocationPolicy;
    use crate::schedule::Scheduler;
    use fpsa_synthesis::{CoreOpGroup, CoreOpKind};

    fn graph(reuses: &[u64]) -> CoreOpGraph {
        let mut g = CoreOpGraph::new("m", 256, 256);
        let mut prev = None;
        for (i, &r) in reuses.iter().enumerate() {
            let id = g.add_group(CoreOpGroup {
                id: 0,
                name: format!("g{i}"),
                source_node: i,
                kind: CoreOpKind::Vmm,
                rows: 256,
                cols: 256,
                row_offset: 0,
                col_offset: 0,
                reuse_degree: r,
                relu: true,
                layer_depth: i,
            });
            if let Some(p) = prev {
                g.add_edge(p, id);
            }
            prev = Some(id);
        }
        g
    }

    #[test]
    fn luts_per_pe_grow_with_iteration_count() {
        assert!(ControlPlan::luts_per_pe(1) < ControlPlan::luts_per_pe(1000));
        assert!(ControlPlan::luts_per_pe(1) >= 5);
    }

    #[test]
    fn plan_counts_pes_smbs_and_rounds_up_clbs() {
        let g = graph(&[100, 1]);
        let alloc = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1));
        let sched = Scheduler::new(64).schedule(&g, &alloc);
        let plan = ControlPlan::for_schedule(&g, &alloc, &sched);
        assert!(plan.pe_luts > 0);
        assert_eq!(plan.smb_luts, ControlPlan::luts_per_smb());
        assert_eq!(plan.lut_count, plan.pe_luts + plan.smb_luts);
        assert!(plan.clb_count >= 1);
    }

    #[test]
    fn more_duplicates_need_more_control() {
        let g = graph(&[64, 64]);
        let a1 = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1));
        let a8 = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(8));
        let s1 = Scheduler::new(64).schedule(&g, &a1);
        let s8 = Scheduler::new(64).schedule(&g, &a8);
        let p1 = ControlPlan::for_schedule(&g, &a1, &s1);
        let p8 = ControlPlan::for_schedule(&g, &a8, &s8);
        assert!(p8.pe_luts > p1.pe_luts);
    }

    #[test]
    fn empty_graph_still_reports_one_clb() {
        let g = CoreOpGraph::new("empty", 256, 256);
        let alloc = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1));
        let sched = Scheduler::new(64).schedule(&g, &alloc);
        let plan = ControlPlan::for_schedule(&g, &alloc, &sched);
        assert_eq!(plan.lut_count, 0);
        assert_eq!(plan.clb_count, 1);
    }
}
