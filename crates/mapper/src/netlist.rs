//! Function-block netlist generation.
//!
//! The netlist is the hand-off artifact between the mapper and placement &
//! routing: a list of PE / SMB / CLB instances and the nets connecting them.
//! PEs are instantiated once per allocated duplicate, SMBs once per buffered
//! edge (grouped by capacity), and CLBs in proportion to the control state
//! the schedule requires.

use crate::allocation::Allocation;
use crate::control::ControlPlan;
use crate::schedule::Schedule;
use fpsa_synthesis::{CoreOpGraph, GroupId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The role a netlist block plays.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetlistBlock {
    /// A PE holding one duplicate of a group's weight tile.
    Pe {
        /// The core-op group stored on this PE.
        group: GroupId,
        /// Which duplicate (0-based) this PE is.
        duplicate: u64,
    },
    /// An SMB buffering the data crossing one buffered edge.
    Smb {
        /// Producer group of the buffered edge.
        from: GroupId,
        /// Consumer group of the buffered edge.
        to: GroupId,
    },
    /// A CLB generating control signals for a neighbourhood of blocks.
    Clb {
        /// Control region index.
        region: usize,
    },
}

impl NetlistBlock {
    /// Whether this block is a PE.
    pub fn is_pe(&self) -> bool {
        matches!(self, NetlistBlock::Pe { .. })
    }

    /// Whether this block is an SMB.
    pub fn is_smb(&self) -> bool {
        matches!(self, NetlistBlock::Smb { .. })
    }

    /// Whether this block is a CLB.
    pub fn is_clb(&self) -> bool {
        matches!(self, NetlistBlock::Clb { .. })
    }
}

/// A net from one source block to one or more sink blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    /// Index of the driving block.
    pub source: usize,
    /// Indices of the receiving blocks.
    pub sinks: Vec<usize>,
    /// Values transferred per producer execution (used by the traffic model).
    pub values_per_activation: u64,
}

/// Summary statistics of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Number of PE instances.
    pub pe_count: usize,
    /// Number of SMB instances.
    pub smb_count: usize,
    /// Number of CLB instances.
    pub clb_count: usize,
    /// Number of nets.
    pub net_count: usize,
    /// Total number of (source, sink) connections.
    pub total_fanout: usize,
}

impl NetlistStats {
    /// Total function-block slots the netlist demands (the quantity the
    /// compiler's block limit and the sharding capacity budget bound).
    pub fn total_blocks(&self) -> usize {
        self.pe_count + self.smb_count + self.clb_count
    }
}

/// The net→block incidence index of a netlist: for every block, the indices
/// of the nets it touches (as source or sink).
///
/// Placement engines need this to evaluate moves incrementally — swapping two
/// blocks only perturbs the nets incident to them, so the cost delta is a sum
/// over `nets_of(a) ∪ nets_of(b)` instead of the whole netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetIncidence {
    nets_of_block: Vec<Vec<usize>>,
}

impl NetIncidence {
    /// Build the index for a netlist.
    fn build(netlist: &Netlist) -> Self {
        let mut nets_of_block: Vec<Vec<usize>> = vec![Vec::new(); netlist.len()];
        for (i, net) in netlist.nets().iter().enumerate() {
            nets_of_block[net.source].push(i);
            for &s in &net.sinks {
                if s != net.source {
                    nets_of_block[s].push(i);
                }
            }
        }
        // A block can appear several times in one net's sink list (and nets
        // of a block must be unique for incremental delta sums).
        for nets in &mut nets_of_block {
            nets.sort_unstable();
            nets.dedup();
        }
        NetIncidence { nets_of_block }
    }

    /// Indices of the nets incident to one block.
    pub fn nets_of(&self, block: usize) -> &[usize] {
        &self.nets_of_block[block]
    }

    /// Number of blocks indexed.
    pub fn len(&self) -> usize {
        self.nets_of_block.len()
    }

    /// Whether the index covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.nets_of_block.is_empty()
    }
}

/// The function-block netlist.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Netlist {
    /// Model name carried through the flow.
    pub model: String,
    blocks: Vec<NetlistBlock>,
    nets: Vec<Net>,
}

impl Netlist {
    /// Build the netlist from a core-op graph, an allocation and a schedule.
    pub fn build(graph: &CoreOpGraph, allocation: &Allocation, schedule: &Schedule) -> Self {
        let mut blocks = Vec::new();
        let mut nets = Vec::new();

        // One PE block per duplicate of every group.
        let mut pe_index: HashMap<(GroupId, u64), usize> = HashMap::new();
        for g in graph.groups() {
            let duplicates = allocation.per_group.get(g.id).copied().unwrap_or(1);
            for d in 0..duplicates {
                pe_index.insert((g.id, d), blocks.len());
                blocks.push(NetlistBlock::Pe {
                    group: g.id,
                    duplicate: d,
                });
            }
        }

        // One SMB per buffered edge.
        let buffered: std::collections::HashSet<(GroupId, GroupId)> =
            schedule.buffered_edges.iter().copied().collect();
        let mut smb_index: HashMap<(GroupId, GroupId), usize> = HashMap::new();
        for &(u, v) in &schedule.buffered_edges {
            smb_index.entry((u, v)).or_insert_with(|| {
                let idx = blocks.len();
                blocks.push(NetlistBlock::Smb { from: u, to: v });
                idx
            });
        }

        // Nets: producer duplicates drive either the consumer duplicates
        // directly or the SMB of the buffered edge.
        for &(u, v) in graph.edges() {
            let du = allocation.per_group.get(u).copied().unwrap_or(1);
            let dv = allocation.per_group.get(v).copied().unwrap_or(1);
            let values = graph.groups()[u].cols as u64;
            if buffered.contains(&(u, v)) {
                let smb = smb_index[&(u, v)];
                for d in 0..du {
                    nets.push(Net {
                        source: pe_index[&(u, d)],
                        sinks: vec![smb],
                        values_per_activation: values,
                    });
                }
                for d in 0..dv {
                    nets.push(Net {
                        source: smb,
                        sinks: vec![pe_index[&(v, d)]],
                        values_per_activation: values,
                    });
                }
            } else {
                for d in 0..dv {
                    let src_dup = d % du;
                    nets.push(Net {
                        source: pe_index[&(u, src_dup)],
                        sinks: vec![pe_index[&(v, d)]],
                        values_per_activation: values,
                    });
                }
            }
        }

        // CLBs: one control region per `region_size` blocks, each driving the
        // blocks in its region.
        let control = ControlPlan::for_schedule(graph, allocation, schedule);
        let region_size = (blocks.len() / control.clb_count.max(1)).max(1);
        let data_blocks = blocks.len();
        for region in 0..control.clb_count {
            let clb = blocks.len();
            blocks.push(NetlistBlock::Clb { region });
            let start = region * region_size;
            let end = ((region + 1) * region_size).min(data_blocks);
            let sinks: Vec<usize> = (start..end).collect();
            if !sinks.is_empty() {
                nets.push(Net {
                    source: clb,
                    sinks,
                    values_per_activation: 1,
                });
            }
        }

        Netlist {
            model: graph.model.clone(),
            blocks,
            nets,
        }
    }

    /// Assemble a netlist directly from blocks and nets.
    ///
    /// This is the constructor for synthetic netlists (tests, property-based
    /// fuzzing, hand-written examples); the compile pipeline goes through
    /// [`Netlist::build`].
    ///
    /// # Panics
    ///
    /// Panics if any net references a block index out of range.
    pub fn from_parts(model: impl Into<String>, blocks: Vec<NetlistBlock>, nets: Vec<Net>) -> Self {
        for (i, net) in nets.iter().enumerate() {
            assert!(
                net.source < blocks.len(),
                "net {i} source {} out of range ({} blocks)",
                net.source,
                blocks.len()
            );
            for &s in &net.sinks {
                assert!(
                    s < blocks.len(),
                    "net {i} sink {s} out of range ({} blocks)",
                    blocks.len()
                );
            }
        }
        Netlist {
            model: model.into(),
            blocks,
            nets,
        }
    }

    /// All blocks.
    pub fn blocks(&self) -> &[NetlistBlock] {
        &self.blocks
    }

    /// The net→block incidence index (which nets touch each block).
    pub fn incidence(&self) -> NetIncidence {
        NetIncidence::build(self)
    }

    /// Total number of (source, sink) connections across all nets.
    pub fn connection_count(&self) -> usize {
        self.nets.iter().map(|n| n.sinks.len()).sum()
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Summary statistics.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats {
            pe_count: self.blocks.iter().filter(|b| b.is_pe()).count(),
            smb_count: self.blocks.iter().filter(|b| b.is_smb()).count(),
            clb_count: self.blocks.iter().filter(|b| b.is_clb()).count(),
            net_count: self.nets.len(),
            total_fanout: self.nets.iter().map(|n| n.sinks.len()).sum(),
        }
    }

    /// Number of blocks of all kinds.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the netlist is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocationPolicy;
    use crate::schedule::Scheduler;
    use fpsa_synthesis::{CoreOpGroup, CoreOpKind};

    fn group(reuse: u64, depth: usize) -> CoreOpGroup {
        CoreOpGroup {
            id: 0,
            name: "g".into(),
            source_node: 0,
            kind: CoreOpKind::Vmm,
            rows: 256,
            cols: 128,
            row_offset: 0,
            col_offset: 0,
            reuse_degree: reuse,
            relu: true,
            layer_depth: depth,
        }
    }

    fn build(reuses: &[u64], dup: u64) -> (CoreOpGraph, Netlist) {
        let mut g = CoreOpGraph::new("m", 256, 256);
        let mut prev = None;
        for (i, &r) in reuses.iter().enumerate() {
            let id = g.add_group(group(r, i));
            if let Some(p) = prev {
                g.add_edge(p, id);
            }
            prev = Some(id);
        }
        let alloc = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(dup));
        let sched = Scheduler::new(64).schedule(&g, &alloc);
        let netlist = Netlist::build(&g, &alloc, &sched);
        (g, netlist)
    }

    #[test]
    fn one_pe_block_per_duplicate() {
        let (_, n) = build(&[16, 16, 1], 4);
        let stats = n.stats();
        // Groups 0 and 1 get 4 duplicates each, group 2 gets 1.
        assert_eq!(stats.pe_count, 9);
    }

    #[test]
    fn buffered_edges_materialize_smbs_and_two_nets() {
        let (_, n) = build(&[100, 1], 1);
        let stats = n.stats();
        assert_eq!(stats.smb_count, 1);
        // producer -> SMB and SMB -> consumer (control nets from CLBs also
        // touch the SMB but are not data nets).
        let smb_nets = n
            .nets()
            .iter()
            .filter(|net| {
                !n.blocks()[net.source].is_clb()
                    && (n.blocks()[net.source].is_smb()
                        || net.sinks.iter().any(|&s| n.blocks()[s].is_smb()))
            })
            .count();
        assert_eq!(smb_nets, 2);
    }

    #[test]
    fn unbuffered_edges_connect_pes_directly() {
        let (_, n) = build(&[1, 1], 1);
        assert_eq!(n.stats().smb_count, 0);
        let pe_to_pe = n
            .nets()
            .iter()
            .filter(|net| {
                n.blocks()[net.source].is_pe() && net.sinks.iter().all(|&s| n.blocks()[s].is_pe())
            })
            .count();
        assert!(pe_to_pe >= 1);
    }

    #[test]
    fn duplicates_are_wired_round_robin() {
        let (_, n) = build(&[4, 4], 4);
        // Every duplicate of the consumer must be driven by exactly one net.
        let consumer_pes: Vec<usize> = n
            .blocks()
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b, NetlistBlock::Pe { group: 1, .. }))
            .map(|(i, _)| i)
            .collect();
        for pe in consumer_pes {
            let drivers = n
                .nets()
                .iter()
                .filter(|net| net.sinks.contains(&pe) && n.blocks()[net.source].is_pe())
                .count();
            assert_eq!(drivers, 1);
        }
    }

    #[test]
    fn clbs_are_present_and_drive_control_nets() {
        let (_, n) = build(&[8, 8, 8, 8], 2);
        let stats = n.stats();
        assert!(stats.clb_count >= 1);
        let control_nets = n
            .nets()
            .iter()
            .filter(|net| n.blocks()[net.source].is_clb())
            .count();
        assert_eq!(control_nets, stats.clb_count);
    }

    #[test]
    fn stats_fanout_counts_every_connection() {
        let (_, n) = build(&[2, 2], 1);
        let stats = n.stats();
        let manual: usize = n.nets().iter().map(|net| net.sinks.len()).sum();
        assert_eq!(stats.total_fanout, manual);
        assert_eq!(stats.net_count, n.nets().len());
        assert_eq!(stats.total_fanout, n.connection_count());
    }

    #[test]
    fn incidence_index_inverts_the_net_list() {
        let (_, n) = build(&[16, 16, 1], 4);
        let incidence = n.incidence();
        assert_eq!(incidence.len(), n.len());
        // Forward check: every net appears in the index of all its blocks.
        for (i, net) in n.nets().iter().enumerate() {
            assert!(incidence.nets_of(net.source).contains(&i));
            for &s in &net.sinks {
                assert!(incidence.nets_of(s).contains(&i));
            }
        }
        // Reverse check: every indexed net really touches the block.
        for block in 0..n.len() {
            for &net in incidence.nets_of(block) {
                let touches = n.nets()[net].source == block || n.nets()[net].sinks.contains(&block);
                assert!(
                    touches,
                    "net {net} indexed for block {block} but not incident"
                );
            }
        }
    }

    #[test]
    fn incidence_entries_are_sorted_and_unique() {
        // A net listing the same sink twice must index it once.
        let blocks = vec![
            NetlistBlock::Pe {
                group: 0,
                duplicate: 0,
            },
            NetlistBlock::Pe {
                group: 1,
                duplicate: 0,
            },
        ];
        let nets = vec![Net {
            source: 0,
            sinks: vec![1, 1, 0],
            values_per_activation: 1,
        }];
        let n = Netlist::from_parts("dup-sinks", blocks, nets);
        let incidence = n.incidence();
        assert_eq!(incidence.nets_of(0), &[0]);
        assert_eq!(incidence.nets_of(1), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_rejects_dangling_net_indices() {
        let blocks = vec![NetlistBlock::Pe {
            group: 0,
            duplicate: 0,
        }];
        let nets = vec![Net {
            source: 0,
            sinks: vec![7],
            values_per_activation: 1,
        }];
        let _ = Netlist::from_parts("bad", blocks, nets);
    }
}
