//! The spatial-to-temporal mapper.
//!
//! The core-op graph produced by the neural synthesizer is purely spatial: it
//! has one core-op per output position, which would require an impractical
//! number of PEs if mapped one-to-one. The mapper (Section 5.2 of the paper)
//! folds that graph onto a finite fabric:
//!
//! * **Resource allocation** ([`allocation`]) — all core-ops sharing a weight
//!   tile form one group and are executed on the same PE(s) in
//!   time-division-multiplexed fashion. Groups with higher *reuse degree*
//!   (more core-ops per weight tile) receive more PE *duplicates* so that
//!   pipeline stages stay balanced; the duplication degree of the whole model
//!   is that of the group with the maximum reuse degree.
//! * **Scheduling** ([`schedule`]) — Algorithm 1 of the paper: a greedy
//!   topological pass that assigns start/end cycles under the resource
//!   conflict (RC), no-buffer dependency (NBD), buffered dependency (BD),
//!   buffer conflict (BC) and sampling window (SW) constraints, inserting SMB
//!   buffers wherever direct PE-to-PE chaining is impossible.
//! * **Netlist generation** ([`netlist`], [`control`]) — the allocation and
//!   schedule are materialized as a function-block netlist (PEs, SMBs, CLBs
//!   and the nets between them) ready for placement and routing.

pub mod allocation;
pub mod control;
pub mod netlist;
pub mod schedule;

pub use allocation::{Allocation, AllocationPolicy};
pub use netlist::{Net, NetIncidence, Netlist, NetlistBlock, NetlistStats};
pub use schedule::{Schedule, ScheduleEntry, Scheduler};

use fpsa_synthesis::CoreOpGraph;
use serde::{Deserialize, Serialize};

/// End-to-end mapping result: allocation, schedule and netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// How many PEs each group received.
    pub allocation: Allocation,
    /// When each group executes and where buffers were inserted.
    pub schedule: Schedule,
    /// The function-block netlist handed to placement & routing.
    pub netlist: Netlist,
}

impl Mapping {
    /// Per-kind block demand of the mapped design as `(pes, smbs, clbs)` —
    /// the numbers a fabric (or a sharding capacity budget) must offer for
    /// this mapping to fit.
    pub fn block_demand(&self) -> (usize, usize, usize) {
        let stats = self.netlist.stats();
        (stats.pe_count, stats.smb_count, stats.clb_count)
    }
}

/// The spatial-to-temporal mapper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mapper {
    /// Sampling window Γ in cycles.
    pub sampling_window: u64,
    /// Allocation policy.
    pub policy: AllocationPolicy,
}

impl Mapper {
    /// Create a mapper with the given sampling window and policy.
    pub fn new(sampling_window: u64, policy: AllocationPolicy) -> Self {
        Mapper {
            sampling_window,
            policy,
        }
    }

    /// The paper's default: 64-cycle window, balanced duplication.
    pub fn fpsa_default() -> Self {
        Mapper {
            sampling_window: 64,
            policy: AllocationPolicy::DuplicationDegree(1),
        }
    }

    /// Map a core-op graph.
    pub fn map(&self, graph: &CoreOpGraph) -> Mapping {
        let allocation = Allocation::allocate(graph, self.policy);
        let scheduler = Scheduler::new(self.sampling_window);
        let schedule = scheduler.schedule(graph, &allocation);
        let netlist = Netlist::build(graph, &allocation, &schedule);
        Mapping {
            allocation,
            schedule,
            netlist,
        }
    }
}

impl Default for Mapper {
    fn default() -> Self {
        Self::fpsa_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_nn::zoo;
    use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};

    fn core_graph(model: fn() -> fpsa_nn::ComputationalGraph) -> CoreOpGraph {
        NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(&model())
            .unwrap()
    }

    #[test]
    fn mapping_lenet_produces_consistent_artifacts() {
        let graph = core_graph(zoo::lenet);
        let mapping = Mapper::fpsa_default().map(&graph);
        assert_eq!(mapping.allocation.per_group.len(), graph.len());
        assert_eq!(mapping.schedule.entries.len(), graph.len());
        let stats = mapping.netlist.stats();
        assert_eq!(stats.pe_count, mapping.allocation.total_pes());
        assert!(stats.net_count > 0);
    }

    #[test]
    fn higher_duplication_uses_more_pes_and_fewer_iterations() {
        let graph = core_graph(zoo::lenet);
        let m1 = Mapper::new(64, AllocationPolicy::DuplicationDegree(1)).map(&graph);
        let m4 = Mapper::new(64, AllocationPolicy::DuplicationDegree(4)).map(&graph);
        assert!(m4.allocation.total_pes() > m1.allocation.total_pes());
        assert!(m4.schedule.max_stage_iterations() < m1.schedule.max_stage_iterations());
    }

    #[test]
    fn mapper_handles_mlp_without_buffers_exploding() {
        let graph = core_graph(zoo::mlp_500_100);
        let mapping = Mapper::fpsa_default().map(&graph);
        // The MLP has no reuse, so every group executes exactly once.
        assert_eq!(mapping.schedule.max_stage_iterations(), 1);
        let stats = mapping.netlist.stats();
        assert!(stats.smb_count <= stats.pe_count);
    }
}
