//! Algorithm 1: greedy scheduling of core-op groups.
//!
//! Every group executes its core-ops back-to-back on its PE(s); the schedule
//! assigns each group a start and end cycle so that the five constraints of
//! Section 5.2 hold:
//!
//! * **RC** (resource conflict) — core-ops mapped to the same PE never
//!   overlap; in the group-level model this is captured by a group's
//!   duration being `iterations x Γ`.
//! * **NBD** (no-buffer dependency) — a consumer chained directly to its
//!   producer must start one cycle after it and finish one cycle later, so
//!   the spike train can stream through.
//! * **BD** (buffered dependency) — if a buffer is inserted, the consumer
//!   starts only after the producer has finished.
//! * **BC** (buffer conflict) — consumers reading the same buffer port are
//!   separated by at least one sampling window.
//! * **SW** (sampling window) — every execution lasts at least Γ cycles.
//!
//! The greedy pass walks the graph in topological order and chains producers
//! and consumers without a buffer whenever their durations are compatible;
//! otherwise it marks the edge as buffered, which splits the circuit into
//! pipeline stages exactly as the paper describes.

use crate::allocation::Allocation;
use fpsa_synthesis::{CoreOpGraph, GroupId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Scheduling result for one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The group this entry describes.
    pub group: GroupId,
    /// First cycle of execution.
    pub start_cycle: u64,
    /// Last cycle of execution (exclusive).
    pub end_cycle: u64,
    /// Pipeline stage index (increments across buffered edges).
    pub stage: usize,
    /// Iterations executed on each PE of the group.
    pub iterations: u64,
}

impl ScheduleEntry {
    /// Execution duration in cycles.
    pub fn duration(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// The complete schedule of a mapped model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-group entries, indexed by group id.
    pub entries: Vec<ScheduleEntry>,
    /// Edges that required an SMB buffer.
    pub buffered_edges: Vec<(GroupId, GroupId)>,
    /// Sampling window Γ used.
    pub sampling_window: u64,
}

impl Schedule {
    /// The pipeline period in cycles: the slowest stage bounds the rate at
    /// which new samples can enter the pipeline.
    pub fn pipeline_period_cycles(&self) -> u64 {
        self.entries
            .iter()
            .map(ScheduleEntry::duration)
            .max()
            .unwrap_or(self.sampling_window)
    }

    /// The end-to-end latency of one sample in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.end_cycle).max().unwrap_or(0)
    }

    /// Number of pipeline stages (1 + number of buffer levels).
    pub fn stage_count(&self) -> usize {
        self.entries.iter().map(|e| e.stage + 1).max().unwrap_or(0)
    }

    /// The bottleneck iteration count across all groups.
    pub fn max_stage_iterations(&self) -> u64 {
        self.entries.iter().map(|e| e.iterations).max().unwrap_or(1)
    }

    /// Number of buffered edges (each consumes SMB capacity).
    pub fn buffer_count(&self) -> usize {
        self.buffered_edges.len()
    }

    /// Look up the entry of a group.
    pub fn entry(&self, group: GroupId) -> Option<&ScheduleEntry> {
        self.entries.get(group)
    }
}

/// The greedy scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scheduler {
    /// Sampling window Γ in cycles.
    pub sampling_window: u64,
}

impl Scheduler {
    /// Create a scheduler for the given sampling window.
    pub fn new(sampling_window: u64) -> Self {
        Scheduler {
            sampling_window: sampling_window.max(1),
        }
    }

    /// Produce a schedule for an allocated core-op graph.
    pub fn schedule(&self, graph: &CoreOpGraph, allocation: &Allocation) -> Schedule {
        let n = graph.len();
        let mut entries: Vec<Option<ScheduleEntry>> = vec![None; n];
        let mut buffered_edges = Vec::new();

        // Predecessor lists.
        let mut preds: HashMap<GroupId, Vec<GroupId>> = HashMap::new();
        for &(u, v) in graph.edges() {
            preds.entry(v).or_default().push(u);
        }

        // Kahn topological order over group edges.
        let order = topological_order(graph);

        for &v in &order {
            let iterations = allocation.iterations.get(v).copied().unwrap_or(1);
            let duration = iterations * self.sampling_window;
            let empty = Vec::new();
            let my_preds = preds.get(&v).unwrap_or(&empty);

            let mut start = 0u64;
            let mut stage = 0usize;
            for &u in my_preds {
                let pu = entries[u].expect("topological order guarantees scheduled predecessors");
                // NBD is possible only when this group's execution can cover
                // the producer's (equal or longer duration); otherwise the
                // spike trains cannot stream and a buffer is required (BD).
                let needs_buffer = duration < pu.duration();
                if needs_buffer {
                    buffered_edges.push((u, v));
                    start = start.max(pu.end_cycle + 1);
                    stage = stage.max(pu.stage + 1);
                } else {
                    start = start.max(pu.start_cycle + 1);
                    stage = stage.max(pu.stage);
                }
            }
            // SW: duration is already >= Γ because iterations >= 1.
            let mut end = start + duration;
            // NBD end condition: cover every unbuffered producer's end.
            for &u in my_preds {
                let pu = entries[u].expect("scheduled predecessor");
                if duration >= pu.duration() && end <= pu.end_cycle {
                    end = pu.end_cycle + 1;
                }
            }
            entries[v] = Some(ScheduleEntry {
                group: v,
                start_cycle: start,
                end_cycle: end,
                stage,
                iterations,
            });
        }

        // BC: consumers of the same buffered producer must be separated by at
        // least one sampling window, and any BC shift must propagate to the
        // shifted group's own consumers (their NBD/BD starts were computed
        // against the pre-shift position). Alternate the BC serialization
        // pass with a dependency relaxation pass until a fixpoint: both
        // passes only move entries later, so the loop converges, and an
        // already-consistent schedule passes through unchanged.
        let buffered_set: std::collections::HashSet<(GroupId, GroupId)> =
            buffered_edges.iter().copied().collect();
        let mut by_source: HashMap<GroupId, Vec<GroupId>> = HashMap::new();
        for &(u, v) in &buffered_edges {
            by_source.entry(u).or_default().push(v);
        }
        // The cap is a safety net far above what any real schedule needs
        // (every pass moves at least one entry strictly later or stops);
        // any residual violation would still be rejected by the execution
        // engine's bind-time schedule verification.
        for _ in 0..10_000 {
            let mut changed = false;
            // BC serialization.
            for consumers in by_source.values() {
                let mut sorted: Vec<GroupId> = consumers.clone();
                sorted.sort_unstable_by_key(|&v| entries[v].map(|e| e.start_cycle).unwrap_or(0));
                for pair in sorted.windows(2) {
                    let first_end = entries[pair[0]].map(|e| e.end_cycle).unwrap_or(0);
                    if let Some(e) = entries[pair[1]].as_mut() {
                        if e.end_cycle <= first_end + self.sampling_window
                            && e.start_cycle <= first_end
                        {
                            let shift = first_end + 1 - e.start_cycle;
                            e.start_cycle += shift;
                            e.end_cycle += shift;
                            changed = true;
                        }
                    }
                }
            }
            // Dependency relaxation in topological order: re-enforce the
            // NBD/BD start constraints and the NBD end-cover condition.
            for &v in &order {
                let empty = Vec::new();
                let my_preds = preds.get(&v).unwrap_or(&empty);
                let Some(current) = entries[v] else { continue };
                let mut start = current.start_cycle;
                let mut end = current.end_cycle;
                for &u in my_preds {
                    let pu = entries[u].expect("topological order schedules predecessors");
                    let required = if buffered_set.contains(&(u, v)) {
                        pu.end_cycle + 1
                    } else {
                        pu.start_cycle + 1
                    };
                    if start < required {
                        end += required - start;
                        start = required;
                    }
                }
                for &u in my_preds {
                    let pu = entries[u].expect("scheduled predecessor");
                    // NBD end cover: an unbuffered consumer must finish
                    // after its producer. The edge was classified
                    // unbuffered because the consumer's base duration
                    // covers the producer's, so the cover is always
                    // required here — testing current (possibly inflated)
                    // durations instead would silently skip it.
                    if !buffered_set.contains(&(u, v)) && end <= pu.end_cycle {
                        end = pu.end_cycle + 1;
                    }
                }
                if (start, end) != (current.start_cycle, current.end_cycle) {
                    changed = true;
                    if let Some(e) = entries[v].as_mut() {
                        e.start_cycle = start;
                        e.end_cycle = end;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        Schedule {
            entries: entries
                .into_iter()
                .enumerate()
                .map(|(i, e)| {
                    e.unwrap_or(ScheduleEntry {
                        group: i,
                        start_cycle: 0,
                        end_cycle: self.sampling_window,
                        stage: 0,
                        iterations: 1,
                    })
                })
                .collect(),
            buffered_edges,
            sampling_window: self.sampling_window,
        }
    }
}

/// Kahn topological order over the group graph; groups not reachable through
/// edges keep their id order.
fn topological_order(graph: &CoreOpGraph) -> Vec<GroupId> {
    let n = graph.len();
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<GroupId>> = vec![Vec::new(); n];
    for &(u, v) in graph.edges() {
        indegree[v] += 1;
        succs[u].push(v);
    }
    let mut queue: Vec<GroupId> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for &v in &succs[u] {
            indegree[v] -= 1;
            if indegree[v] == 0 {
                queue.push(v);
            }
        }
    }
    // Defensive: if the edge list had a cycle, append the leftovers so every
    // group still receives a schedule entry.
    if order.len() != n {
        for i in 0..n {
            if !order.contains(&i) {
                order.push(i);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocationPolicy;
    use fpsa_synthesis::{CoreOpGroup, CoreOpKind};

    fn group(reuse: u64, depth: usize) -> CoreOpGroup {
        CoreOpGroup {
            id: 0,
            name: "g".into(),
            source_node: 0,
            kind: CoreOpKind::Vmm,
            rows: 256,
            cols: 256,
            row_offset: 0,
            col_offset: 0,
            reuse_degree: reuse,
            relu: true,
            layer_depth: depth,
        }
    }

    fn chain(reuses: &[u64]) -> CoreOpGraph {
        let mut g = CoreOpGraph::new("chain", 256, 256);
        let mut prev: Option<GroupId> = None;
        for (i, &r) in reuses.iter().enumerate() {
            let id = g.add_group(group(r, i));
            if let Some(p) = prev {
                g.add_edge(p, id);
            }
            prev = Some(id);
        }
        g
    }

    fn schedule_chain(reuses: &[u64]) -> (CoreOpGraph, Schedule) {
        let g = chain(reuses);
        let alloc = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1));
        let s = Scheduler::new(64).schedule(&g, &alloc);
        (g, s)
    }

    #[test]
    fn equal_durations_chain_without_buffers() {
        let (_, s) = schedule_chain(&[1, 1, 1]);
        assert!(s.buffered_edges.is_empty());
        assert_eq!(s.stage_count(), 1);
        // NBD: each group starts one cycle after its producer.
        assert_eq!(s.entries[0].start_cycle, 0);
        assert_eq!(s.entries[1].start_cycle, 1);
        assert_eq!(s.entries[2].start_cycle, 2);
        // And ends after it.
        assert!(s.entries[1].end_cycle > s.entries[0].end_cycle);
    }

    #[test]
    fn shrinking_durations_need_buffers() {
        // A convolutional layer (many iterations) feeding a small layer:
        // the consumer cannot cover the producer, so a buffer is inserted.
        let (_, s) = schedule_chain(&[100, 1]);
        assert_eq!(s.buffered_edges, vec![(0, 1)]);
        assert_eq!(s.stage_count(), 2);
        // BD: the consumer starts strictly after the producer ends.
        assert!(s.entries[1].start_cycle > s.entries[0].end_cycle);
    }

    #[test]
    fn growing_durations_do_not_need_buffers() {
        let (_, s) = schedule_chain(&[1, 100]);
        assert!(s.buffered_edges.is_empty());
        assert!(s.entries[1].end_cycle > s.entries[0].end_cycle);
    }

    #[test]
    fn sampling_window_constraint_holds() {
        let (_, s) = schedule_chain(&[1, 4, 2]);
        for e in &s.entries {
            assert!(e.duration() >= 64, "SW violated: {e:?}");
        }
    }

    #[test]
    fn buffer_conflict_serializes_shared_buffer_consumers() {
        // One heavy producer feeding two light consumers through buffers.
        let mut g = CoreOpGraph::new("fanout", 256, 256);
        let p = g.add_group(group(10, 0));
        let a = g.add_group(group(1, 1));
        let b = g.add_group(group(1, 1));
        g.add_edge(p, a);
        g.add_edge(p, b);
        let alloc = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1));
        let s = Scheduler::new(64).schedule(&g, &alloc);
        assert_eq!(s.buffer_count(), 2);
        let (ea, eb) = (s.entries[a], s.entries[b]);
        let separated = ea.end_cycle + 64 <= eb.end_cycle || eb.end_cycle + 64 <= ea.end_cycle;
        assert!(separated, "BC violated: {ea:?} vs {eb:?}");
    }

    #[test]
    fn bc_shifts_propagate_to_downstream_consumers() {
        // A heavy producer feeding two light buffered consumers, both of
        // which feed a join group: the BC pass serializes the second
        // consumer *after* the join was scheduled against its old position,
        // so the shift must propagate or the join runs before its producer.
        let mut g = CoreOpGraph::new("bc-prop", 256, 256);
        let p = g.add_group(group(100, 0));
        let a = g.add_group(group(1, 1));
        let b = g.add_group(group(1, 1));
        let join = g.add_group(group(1, 2));
        g.add_edge(p, a);
        g.add_edge(p, b);
        g.add_edge(a, join);
        g.add_edge(b, join);
        let alloc = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1));
        let s = Scheduler::new(64).schedule(&g, &alloc);
        let buffered: std::collections::HashSet<_> = s.buffered_edges.iter().copied().collect();
        for &(u, v) in g.edges() {
            let (pu, pv) = (s.entries[u], s.entries[v]);
            if buffered.contains(&(u, v)) {
                assert!(pv.start_cycle > pu.end_cycle, "BD violated for ({u},{v})");
            } else {
                assert!(
                    pv.start_cycle > pu.start_cycle,
                    "NBD violated for ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn pipeline_period_is_bottleneck_duration() {
        let (_, s) = schedule_chain(&[100, 10, 1]);
        assert_eq!(s.pipeline_period_cycles(), 100 * 64);
        assert_eq!(s.max_stage_iterations(), 100);
    }

    #[test]
    fn duplication_shrinks_period_and_latency() {
        let g = chain(&[64, 64, 1]);
        let a1 = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1));
        let a16 = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(16));
        let s1 = Scheduler::new(64).schedule(&g, &a1);
        let s16 = Scheduler::new(64).schedule(&g, &a16);
        assert!(s16.pipeline_period_cycles() < s1.pipeline_period_cycles());
        assert!(s16.latency_cycles() < s1.latency_cycles());
    }

    #[test]
    fn resource_conflict_is_respected_within_a_group() {
        // RC at group level: a group's duration equals iterations x window,
        // so its PE is never double-booked.
        let (g, s) = schedule_chain(&[7]);
        let alloc = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1));
        assert_eq!(
            s.entries[0].duration(),
            alloc.iterations[0] * s.sampling_window
        );
    }

    #[test]
    fn empty_graph_schedules_cleanly() {
        let g = CoreOpGraph::new("empty", 256, 256);
        let alloc = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1));
        let s = Scheduler::new(64).schedule(&g, &alloc);
        assert!(s.entries.is_empty());
        assert_eq!(s.stage_count(), 0);
        assert_eq!(s.latency_cycles(), 0);
    }
}
