//! PE resource allocation.
//!
//! Every core-op group needs at least one PE (its weight tile must be stored
//! somewhere). Groups with a high reuse degree execute many core-ops on that
//! one PE in sequence, so they dominate the pipeline period. The allocator
//! hands extra PEs (duplicates) to the groups with the most iterations until
//! the budget runs out or the pipeline is balanced — the mechanism behind the
//! super-linear scaling of Figure 8.

use fpsa_synthesis::CoreOpGraph;
use serde::{Deserialize, Serialize};

/// How the allocator decides the number of duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Give the group with the maximum reuse degree exactly `d` duplicates
    /// and balance every other group to the resulting iteration target.
    /// This is the paper's definition of an "n× duplication degree" design.
    DuplicationDegree(u64),
    /// Spend at most this many PEs in total, greedily reducing the largest
    /// per-group iteration count.
    PeBudget(usize),
}

/// The result of resource allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Number of PE duplicates per group (indexed by group id).
    pub per_group: Vec<u64>,
    /// Iterations each group needs per inference (`ceil(reuse / duplicates)`).
    pub iterations: Vec<u64>,
    /// The policy that produced this allocation.
    pub policy: AllocationPolicy,
}

impl Allocation {
    /// Run the allocator over a core-op graph.
    pub fn allocate(graph: &CoreOpGraph, policy: AllocationPolicy) -> Self {
        let reuse: Vec<u64> = graph
            .groups()
            .iter()
            .map(|g| g.reuse_degree.max(1))
            .collect();
        let per_group = match policy {
            AllocationPolicy::DuplicationDegree(d) => {
                let d = d.max(1);
                let max_reuse = reuse.iter().copied().max().unwrap_or(1);
                // The reference group gets `d` duplicates; everyone else gets
                // enough duplicates to finish within the same iteration count.
                let target_iterations = max_reuse.div_ceil(d).max(1);
                reuse
                    .iter()
                    .map(|&r| r.div_ceil(target_iterations).max(1).min(r))
                    .collect::<Vec<u64>>()
            }
            AllocationPolicy::PeBudget(budget) => {
                let mut dup: Vec<u64> = vec![1; reuse.len()];
                let minimum = reuse.len();
                let mut remaining = budget.saturating_sub(minimum);
                // Greedy: repeatedly duplicate the group with the largest
                // iteration count. A binary heap keyed by iteration count
                // keeps this O(n log n) per duplicate.
                use std::cmp::Reverse;
                use std::collections::BinaryHeap;
                let mut heap: BinaryHeap<(u64, Reverse<usize>)> = reuse
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| (r, Reverse(i)))
                    .collect();
                while remaining > 0 {
                    let Some((iters, Reverse(idx))) = heap.pop() else {
                        break;
                    };
                    if iters <= 1 {
                        break;
                    }
                    dup[idx] += 1;
                    remaining -= 1;
                    heap.push((reuse[idx].div_ceil(dup[idx]), Reverse(idx)));
                }
                dup
            }
        };
        let iterations = reuse
            .iter()
            .zip(&per_group)
            .map(|(&r, &d)| r.div_ceil(d).max(1))
            .collect();
        Allocation {
            per_group,
            iterations,
            policy,
        }
    }

    /// Total PEs consumed.
    pub fn total_pes(&self) -> usize {
        self.per_group.iter().map(|&d| d as usize).sum()
    }

    /// The largest per-group iteration count — the temporal bottleneck of the
    /// mapped pipeline.
    pub fn max_iterations(&self) -> u64 {
        self.iterations.iter().copied().max().unwrap_or(1)
    }

    /// The model-level duplication degree actually realized (duplicates of
    /// the group with the maximum reuse degree).
    pub fn realized_duplication_degree(&self, graph: &CoreOpGraph) -> u64 {
        graph
            .groups()
            .iter()
            .max_by_key(|g| g.reuse_degree)
            .map(|g| self.per_group[g.id])
            .unwrap_or(1)
    }

    /// The temporal utilization: average PE busy fraction if the pipeline
    /// runs at its bottleneck iteration count (Figure 8c's temporal bound).
    pub fn temporal_utilization(&self) -> f64 {
        let bottleneck = self.max_iterations() as f64;
        if bottleneck == 0.0 || self.per_group.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.iterations.iter().map(|&i| i as f64).sum();
        busy / (bottleneck * self.per_group.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_synthesis::{CoreOpGraph, CoreOpGroup, CoreOpKind};

    fn graph_with_reuse(reuse: &[u64]) -> CoreOpGraph {
        let mut g = CoreOpGraph::new("t", 256, 256);
        for (i, &r) in reuse.iter().enumerate() {
            g.add_group(CoreOpGroup {
                id: 0,
                name: format!("g{i}"),
                source_node: i,
                kind: CoreOpKind::Vmm,
                rows: 256,
                cols: 256,
                row_offset: 0,
                col_offset: 0,
                reuse_degree: r,
                relu: true,
                layer_depth: i,
            });
        }
        g
    }

    #[test]
    fn minimum_allocation_gives_one_pe_per_group() {
        let g = graph_with_reuse(&[100, 10, 1]);
        let a = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1));
        assert_eq!(a.per_group, vec![1, 1, 1]);
        assert_eq!(a.iterations, vec![100, 10, 1]);
        assert_eq!(a.total_pes(), 3);
        assert_eq!(a.max_iterations(), 100);
    }

    #[test]
    fn duplication_degree_scales_the_busiest_group() {
        let g = graph_with_reuse(&[100, 10, 1]);
        let a = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(4));
        assert_eq!(a.realized_duplication_degree(&g), 4);
        assert_eq!(a.max_iterations(), 25);
        // The light groups do not get useless duplicates.
        assert_eq!(a.per_group[2], 1);
    }

    #[test]
    fn duplication_never_exceeds_reuse() {
        let g = graph_with_reuse(&[100, 10, 1]);
        let a = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1000));
        assert!(a
            .per_group
            .iter()
            .zip([100u64, 10, 1])
            .all(|(&d, r)| d <= r));
        assert_eq!(a.max_iterations(), 1);
    }

    #[test]
    fn pe_budget_reduces_the_bottleneck_greedily() {
        let g = graph_with_reuse(&[100, 10, 1]);
        let tight = Allocation::allocate(&g, AllocationPolicy::PeBudget(3));
        assert_eq!(tight.total_pes(), 3);
        let loose = Allocation::allocate(&g, AllocationPolicy::PeBudget(13));
        assert_eq!(loose.total_pes(), 13);
        assert!(loose.max_iterations() < tight.max_iterations());
        // The extra PEs must have gone to the heavy group.
        assert!(loose.per_group[0] > loose.per_group[1]);
    }

    #[test]
    fn pe_budget_stops_when_everything_is_balanced() {
        let g = graph_with_reuse(&[2, 2]);
        let a = Allocation::allocate(&g, AllocationPolicy::PeBudget(100));
        // Once every group reaches one iteration there is nothing to improve.
        assert_eq!(a.max_iterations(), 1);
        assert!(a.total_pes() <= 4);
    }

    #[test]
    fn temporal_utilization_improves_with_duplication() {
        let g = graph_with_reuse(&[1000, 10, 10, 10]);
        let u1 =
            Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1)).temporal_utilization();
        let u16 = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(16))
            .temporal_utilization();
        assert!(u16 > u1);
        assert!(u16 <= 1.0 + 1e-9);
    }

    #[test]
    fn balanced_workload_has_full_temporal_utilization() {
        let g = graph_with_reuse(&[5, 5, 5]);
        let a = Allocation::allocate(&g, AllocationPolicy::DuplicationDegree(1));
        assert!((a.temporal_utilization() - 1.0).abs() < 1e-12);
    }
}
