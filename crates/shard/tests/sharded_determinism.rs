//! The sharded determinism suite: multi-fabric execution and serving must
//! be **bit-identical** to the unsharded single-fabric run.
//!
//! Grid: Float / Integer / Noisy precisions × 1–4 pipeline stages ×
//! direct `ShardedExecutor` chaining and pipeline-parallel `ShardedEngine`
//! serving under concurrent client streams. The reference in every
//! comparison is the plain `fpsa_core::Compiler` compilation of the whole
//! model on one (arbitrarily large) fabric, executed by `Executor::run` —
//! sharding must change *where* work happens, never *what* is computed.

use fpsa_core::validate::sample_inputs;
use fpsa_core::Compiler;
use fpsa_device::variation::{CellVariation, WeightScheme};
use fpsa_nn::params::mlp_graph;
use fpsa_nn::reference::QuantizationPlan;
use fpsa_nn::{ComputationalGraph, GraphParameters};
use fpsa_serve::ServeConfig;
use fpsa_shard::{FabricBudget, ShardCompiler, ShardedModel};
use fpsa_sim::{Executor, Precision};
use std::sync::Arc;

const SEED: u64 = 0xD5;

fn deep_mlp() -> ComputationalGraph {
    // Four Linear layers → up to four pipeline stages.
    mlp_graph("det-mlp", &[48, 40, 32, 24, 6])
}

fn unsharded(graph: &ComputationalGraph, params: &GraphParameters, p: &Precision) -> Executor {
    let compiled = Compiler::fpsa().compile(graph).expect("model compiles");
    compiled.executor(graph, params, p).expect("model binds")
}

fn sharded_into(graph: &ComputationalGraph, stages: usize) -> ShardedModel {
    ShardCompiler::fpsa(FabricBudget::with_pes(1))
        .compile_into_stages(graph, stages)
        .expect("model shards")
}

fn precisions(
    graph: &ComputationalGraph,
    params: &GraphParameters,
) -> Vec<(&'static str, Precision)> {
    let inputs = sample_inputs(graph, 4, SEED);
    let plan = QuantizationPlan::calibrate(graph, params, &inputs).expect("plan calibrates");
    vec![
        ("float", Precision::Float),
        ("integer", Precision::Integer(plan)),
        (
            "noisy",
            Precision::Noisy {
                scheme: WeightScheme::fpsa_add(),
                variation: CellVariation::measured(),
                seed: 0xBEEF,
            },
        ),
    ]
}

#[test]
fn sharded_execution_is_bit_identical_across_precisions_and_stage_counts() {
    let graph = deep_mlp();
    let params = GraphParameters::seeded(&graph, SEED);
    let inputs = sample_inputs(&graph, 5, SEED);
    for (name, precision) in precisions(&graph, &params) {
        let reference = unsharded(&graph, &params, &precision);
        // `run_checked` shadows the bytecode executor with the retired
        // interpreter per node, so the unsharded ground truth is itself
        // cross-checked in every precision regime.
        let want: Vec<Vec<f32>> = inputs
            .iter()
            .map(|x| reference.run_checked(x).expect("unsharded run succeeds"))
            .collect();
        for stages in 1..=4 {
            let sharded = sharded_into(&graph, stages);
            assert_eq!(sharded.stage_count(), stages);
            let exec = sharded
                .executor(&params, &precision)
                .unwrap_or_else(|e| panic!("{name}/{stages}: bind failed: {e}"));
            for (x, want) in inputs.iter().zip(&want) {
                let got = exec.run(x).expect("sharded run succeeds");
                assert_eq!(
                    &got, want,
                    "{name}: {stages}-stage output diverged from the unsharded run"
                );
            }
        }
    }
}

#[test]
fn sharded_serving_is_bit_identical_under_concurrent_client_streams() {
    let graph = deep_mlp();
    let params = GraphParameters::seeded(&graph, SEED);
    let inputs = sample_inputs(&graph, 8, SEED);
    for (name, precision) in precisions(&graph, &params) {
        let reference = unsharded(&graph, &params, &precision);
        let want: Arc<Vec<Vec<f32>>> = Arc::new(
            inputs
                .iter()
                .map(|x| reference.run(x).expect("unsharded run succeeds"))
                .collect(),
        );
        for stages in [2usize, 3] {
            let sharded = sharded_into(&graph, stages);
            let engine = Arc::new(
                sharded
                    .serve(
                        &params,
                        &precision,
                        ServeConfig {
                            replicas: 2,
                            max_batch: 4,
                            batch_window_us: 500,
                        },
                    )
                    .unwrap_or_else(|e| panic!("{name}/{stages}: serve failed: {e}")),
            );
            // Four concurrent client streams, each submitting the sample
            // pool in a different order.
            let clients: Vec<_> = (0..4)
                .map(|client| {
                    let engine = Arc::clone(&engine);
                    let inputs = inputs.clone();
                    let want = Arc::clone(&want);
                    std::thread::spawn(move || {
                        for round in 0..inputs.len() {
                            let i = (round * 3 + client * 5) % inputs.len();
                            let got = engine.infer(inputs[i].clone()).expect("request is served");
                            assert_eq!(got, want[i], "client {client} request {i} diverged");
                        }
                    })
                })
                .collect();
            for client in clients {
                client.join().expect("client threads succeed");
            }
            let engine = Arc::into_inner(engine).expect("all clients done");
            let stats = engine.shutdown();
            assert_eq!(stats.completed, 4 * inputs.len() as u64);
            assert_eq!(stats.failed + stats.rejected, 0);
        }
    }
}

/// Rayon-parallel per-stage compilation (the default) must produce a
/// sharded model bit-identical to the sequential loop: same placements,
/// routings, schedules and traces (equality ignores wall-clock only), and
/// the same outputs through both executors — with and without a shared
/// compile cache in the stage-compile path.
#[test]
fn parallel_stage_compilation_is_bit_identical_to_sequential() {
    let graph = deep_mlp();
    let params = GraphParameters::seeded(&graph, SEED);
    let inputs = sample_inputs(&graph, 4, SEED);
    for stages in 2..=4 {
        let parallel = ShardCompiler::fpsa(FabricBudget::with_pes(1))
            .compile_into_stages(&graph, stages)
            .expect("parallel stage compile");
        let sequential = ShardCompiler::fpsa(FabricBudget::with_pes(1))
            .with_sequential_stage_compile()
            .compile_into_stages(&graph, stages)
            .expect("sequential stage compile");
        assert_eq!(
            parallel, sequential,
            "{stages}-stage parallel compile diverged from sequential"
        );
        let cached = ShardCompiler::fpsa(FabricBudget::with_pes(1))
            .with_cache(std::sync::Arc::new(fpsa_core::CompileCache::new(8)))
            .compile_into_stages(&graph, stages)
            .expect("cached stage compile");
        assert_eq!(
            cached, sequential,
            "{stages}-stage cached compile diverged from sequential"
        );
        let a = parallel.executor(&params, &Precision::Float).unwrap();
        let b = sequential.executor(&params, &Precision::Float).unwrap();
        for x in &inputs {
            assert_eq!(a.run(x).unwrap(), b.run(x).unwrap());
        }
    }
}

/// The PR's acceptance criterion, at debug-friendly scale: a model whose PE
/// demand exceeds one fabric auto-partitions onto ≥ 2 fabrics and executes
/// bit-identically to its single-large-fabric compilation.
#[test]
fn over_budget_models_auto_shard_and_stay_bit_identical() {
    let graph = deep_mlp();
    let params = GraphParameters::seeded(&graph, SEED);
    let sharder = ShardCompiler::fpsa(FabricBudget::with_pes(2));
    let sharded = sharder.compile_auto(&graph).expect("auto-sharding works");
    assert!(
        sharded.stage_count() >= 2,
        "a 2-PE fabric cannot hold the model"
    );
    let reference = unsharded(&graph, &params, &Precision::Float);
    let exec = sharded.executor(&params, &Precision::Float).unwrap();
    for x in sample_inputs(&graph, 6, SEED) {
        assert_eq!(exec.run(&x).unwrap(), reference.run(&x).unwrap());
    }
}

/// Release-only: the same acceptance criterion on the paper's MLP-500-100
/// (debug-mode binds of the 443k-weight model are too slow for the default
/// test run; the sharding CI job runs this in --release).
#[cfg(not(debug_assertions))]
#[test]
fn mlp_500_100_shards_bit_identically_at_every_stage_count() {
    let graph = fpsa_nn::zoo::mlp_500_100();
    let params = GraphParameters::seeded(&graph, SEED);
    let inputs = sample_inputs(&graph, 3, SEED);
    let reference = unsharded(&graph, &params, &Precision::Float);
    let want: Vec<Vec<f32>> = inputs.iter().map(|x| reference.run(x).unwrap()).collect();
    for stages in 1..=3 {
        let sharded = sharded_into(&graph, stages);
        let exec = sharded.executor(&params, &Precision::Float).unwrap();
        for (x, want) in inputs.iter().zip(&want) {
            assert_eq!(&exec.run(x).unwrap(), want, "{stages}-stage run diverged");
        }
    }
}
