//! Property-based invariants of the pipeline partitioner.
//!
//! For arbitrary MLP shapes and fabric budgets, every partition must
//! uphold the contract the sharded executor's bit-identity rests on:
//!
//! * **exact cover** — every original node (and therefore every synthesized
//!   core-op group) lands in exactly one stage;
//! * **forward edges** — every raw graph edge goes from stage `i` to stage
//!   `j` with `i ≤ j` (values only ever flow down the pipeline);
//! * **capacity** — every stage's estimated PE demand fits the fabric
//!   budget;
//! * **reconstruction** — re-synthesizing the stage subgraphs reproduces
//!   the full-model core-op graph: the concatenated per-stage groups equal
//!   the original groups positionally (same tile geometry, kind, reuse and
//!   fused-ReLU flags).

use fpsa_mapper::AllocationPolicy;
use fpsa_nn::params::mlp_graph;
use fpsa_nn::ComputationalGraph;
use fpsa_shard::{FabricBudget, Partitioner};
use fpsa_synthesis::{CoreOpGraph, NeuralSynthesizer, SynthesisConfig};
use proptest::prelude::*;

fn synthesize(graph: &ComputationalGraph) -> CoreOpGraph {
    NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
        .synthesize(graph)
        .expect("generated MLPs synthesize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn auto_partitions_uphold_the_invariants(
        sizes in proptest::collection::vec(4usize..400, 3..7),
        budget_divisor in 1u64..6,
    ) {
        let graph = mlp_graph("prop-mlp", &sizes);
        let core = synthesize(&graph);
        let partitioner =
            Partitioner::new(&graph, &core, AllocationPolicy::DuplicationDegree(1)).unwrap();
        let demands: Vec<u64> = partitioner
            .compute_nodes()
            .iter()
            .map(|&c| partitioner.demand_of(c))
            .collect();
        let max_node = demands.iter().copied().max().unwrap_or(1);
        let total: u64 = demands.iter().sum();
        // A budget between "largest single node" and "everything": always
        // feasible, often forcing several stages.
        let budget_pes = max_node.max(total / budget_divisor).max(1) as usize;
        let plan = partitioner
            .partition_auto(FabricBudget::with_pes(budget_pes))
            .unwrap();

        // Exact cover: every node in exactly one stage, consistently with
        // the stage_of_node index.
        prop_assert_eq!(plan.stage_of_node.len(), graph.len());
        let mut seen = vec![false; graph.len()];
        for (s, stage) in plan.stages.iter().enumerate() {
            for &node in &stage.nodes {
                prop_assert!(!seen[node], "node {} assigned twice", node);
                seen[node] = true;
                prop_assert_eq!(plan.stage_of_node[node], s);
            }
        }
        prop_assert!(seen.iter().all(|&covered| covered));

        // Forward edges only.
        for node in graph.nodes() {
            for &input in &node.inputs {
                prop_assert!(
                    plan.stage_of_node[input] <= plan.stage_of_node[node.id],
                    "edge {} -> {} goes backwards",
                    input,
                    node.id
                );
            }
        }

        // Capacity: estimated stage demand within the budget.
        for stage in &plan.stages {
            prop_assert!(stage.pe_demand <= budget_pes as u64);
        }

        // Reconstruction: concatenated per-stage synthesis equals the
        // full-model synthesis, group by group. This is exactly invariant
        // "every core-op node lands in exactly one stage" at the core-op
        // level, plus "nothing changed shape on the way".
        let mut offset = 0usize;
        for (s, stage) in plan.stages.iter().enumerate() {
            let stage_core = synthesize(&stage.graph);
            for (i, got) in stage_core.groups().iter().enumerate() {
                let want = &core.groups()[offset + i];
                prop_assert_eq!(got.rows, want.rows, "stage {} group {}", s, i);
                prop_assert_eq!(got.cols, want.cols, "stage {} group {}", s, i);
                prop_assert_eq!(got.kind, want.kind, "stage {} group {}", s, i);
                prop_assert_eq!(got.reuse_degree, want.reuse_degree, "stage {} group {}", s, i);
                prop_assert_eq!(got.relu, want.relu, "stage {} group {}", s, i);
                prop_assert_eq!(got.row_offset, want.row_offset, "stage {} group {}", s, i);
                prop_assert_eq!(got.col_offset, want.col_offset, "stage {} group {}", s, i);
            }
            offset += stage_core.len();
        }
        prop_assert_eq!(offset, core.len());
    }

    #[test]
    fn every_legal_cut_builds_valid_pipeline_segments(
        sizes in proptest::collection::vec(4usize..200, 3..6),
    ) {
        let graph = mlp_graph("prop-cuts", &sizes);
        let core = synthesize(&graph);
        let partitioner =
            Partitioner::new(&graph, &core, AllocationPolicy::DuplicationDegree(1)).unwrap();
        for cut in partitioner.legal_cuts() {
            let plan = partitioner.partition_at(&[cut]).unwrap();
            prop_assert_eq!(plan.stage_count(), 2);
            for stage in &plan.stages {
                // Self-contained: one input, one output, shapes infer.
                prop_assert_eq!(stage.graph.outputs().len(), 1);
                prop_assert!(stage.graph.infer_shapes().is_ok());
            }
            // The boundary tensor is the cut node's output width.
            prop_assert_eq!(
                plan.stages[0].boundary_elements,
                graph.infer_shapes().unwrap()[&cut].elements()
            );
        }
    }

    #[test]
    fn balanced_cuts_never_exceed_the_requested_stage_count(
        sizes in proptest::collection::vec(4usize..300, 2..7),
        stages in 1usize..6,
    ) {
        let graph = mlp_graph("prop-balance", &sizes);
        let core = synthesize(&graph);
        let partitioner =
            Partitioner::new(&graph, &core, AllocationPolicy::DuplicationDegree(1)).unwrap();
        let cuts = partitioner.balanced_cuts(stages);
        prop_assert!(cuts.len() < stages.max(1));
        let plan = partitioner.partition_at(&cuts).unwrap();
        prop_assert_eq!(plan.stage_count(), cuts.len() + 1);
    }
}
