//! Evaluation drivers for the sharding subsystem — beyond the paper.
//!
//! | driver | artifact |
//! |--------|----------|
//! | [`sharding`] | stage count × batch window vs the single fabric (`BENCH_sharding.json`) |

pub mod sharding;
