//! The sharding evaluation sweep — beyond the paper.
//!
//! For each model the driver compares the single-fabric compilation against
//! pipeline-sharded compilations at increasing stage counts, reporting both
//! domains:
//!
//! * **modeled fabric performance** — the aggregated
//!   [`crate::ShardedPerformanceReport`]: per-chip pipeline periods from
//!   each stage's own place & route (smaller per-chip netlists route
//!   shorter critical paths), with the chip-to-chip [`crate::ChipLink`]
//!   transport charged between stages. This is where pipeline-parallel
//!   sharding beats the single fabric: the pipeline clocks on the slowest
//!   chip or link instead of the whole die's critical path.
//! * **measured serving** — a `fpsa_serve::ShardedEngine` over the bound
//!   stage executors serves a real request stream (requests/s, p50/p99),
//!   with the leading outputs asserted **bit-identical** to the unsharded
//!   direct executor, so the speedups can never come from changed
//!   arithmetic. (On a single host the measured numbers share one CPU; the
//!   per-chip concurrency is real only in the modeled domain.)
//!
//! The `sharding_pipeline` bench target persists the records as
//! `BENCH_sharding.json`.

use crate::{ChipLink, FabricBudget, ShardCompiler};
use fpsa_core::report::{format_table, nearest_rank_percentile};
use fpsa_nn::params::mlp_graph;
use fpsa_nn::zoo;
use fpsa_nn::{ComputationalGraph, GraphParameters};
use fpsa_serve::ServeConfig;
use fpsa_sim::Precision;
use fpsa_workload::{Scenario, TraceRecorder, TraceReplayer};
use serde::{Deserialize, Serialize};

/// Seed for parameters and the request stream.
const SEED: u64 = 0x54A8D;

/// How many leading outputs are cross-checked bit-for-bit against the
/// unsharded direct executor.
const CHECKED_OUTPUTS: usize = 16;

/// One (stage count × batch config) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingPoint {
    /// Model served.
    pub model: String,
    /// Pipeline stages (chips).
    pub stages: usize,
    /// Maximum dynamic batch at the entry stage.
    pub max_batch: usize,
    /// Batch window in microseconds.
    pub window_us: u64,
    /// Requests served during the timed phase.
    pub requests: usize,
    /// Measured engine throughput (one host; see module docs).
    pub requests_per_s: f64,
    /// Median submit-to-completion latency, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile submit-to-completion latency, microseconds.
    pub p99_latency_us: f64,
    /// Modeled pipeline throughput on the sharded fabrics, samples/s.
    pub modeled_throughput_samples_per_s: f64,
    /// Modeled end-to-end latency (chips + links), microseconds.
    pub modeled_latency_us: f64,
    /// Modeled throughput over the single-fabric modeled throughput.
    pub modeled_speedup_vs_single_fabric: f64,
    /// PEs mapped per chip.
    pub per_chip_pes: Vec<usize>,
    /// Per-chip PE utilization against the fabric budget.
    pub per_chip_utilization: Vec<f64>,
    /// Transport time per boundary, nanoseconds.
    pub transport_ns: Vec<f64>,
}

/// The sharding sweep for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingReport {
    /// Model evaluated.
    pub model: String,
    /// Modeled single-fabric throughput (the baseline), samples/s.
    pub single_modeled_throughput_samples_per_s: f64,
    /// Modeled single-fabric latency, microseconds.
    pub single_modeled_latency_us: f64,
    /// Measured single-fabric `ServeEngine` throughput on the same stream.
    pub single_requests_per_s: f64,
    /// One point per (stage count × batch config).
    pub points: Vec<ShardingPoint>,
}

/// Regenerate the default sweep: the paper's MLP-500-100 at 1/2/3 stages
/// (whose bottleneck layer keeps the pipeline period flat — an honest null
/// result the table shows) and a three-layer MLP whose balanced split
/// genuinely shrinks every chip's routed critical path.
pub fn run() -> Vec<ShardingReport> {
    let balanced = mlp_graph("MLP-300-280-260-10", &[300, 280, 260, 10]);
    vec![
        run_with(&zoo::mlp_500_100(), &[1, 2, 3], &[(8, 200)], 96),
        run_with(&balanced, &[1, 2, 3], &[(8, 200)], 96),
    ]
}

/// Regenerate for one model over arbitrary stage counts, `(max_batch,
/// window_us)` policies and request count. Every sharded point serves the
/// same stream; the leading [`CHECKED_OUTPUTS`] outputs are asserted
/// bit-identical to the unsharded direct executor.
pub fn run_with(
    graph: &ComputationalGraph,
    stage_counts: &[usize],
    batch_configs: &[(usize, u64)],
    requests: usize,
) -> ShardingReport {
    let requests = requests.max(1);
    let params = GraphParameters::seeded(graph, SEED);
    // Per-stage compilations go through the process-wide compile cache:
    // stage subgraphs shared between stage counts (and repeated driver runs)
    // reuse their artifacts. Outputs stay bit-identical — the cache returns
    // exact-key artifacts only, and the assertions below would catch drift.
    let sharder = ShardCompiler::fpsa(FabricBudget::with_pes(1))
        .with_link(ChipLink::default())
        .with_cache(fpsa_core::CompileCache::global());

    // The unsharded single-fabric compilation: the modeled baseline, the
    // measured serving baseline, and the bit-identity reference.
    let single = sharder
        .compile_into_stages(graph, 1)
        .expect("sweep models compile on one fabric");
    let single_perf = single.performance();
    let direct = single
        .executor(&params, &Precision::Float)
        .expect("sweep models bind");

    // The shared workload scenario this sweep replays — same record →
    // replay pipeline as the serving driver, no per-driver arrival loop.
    let scenario = Scenario::steady(
        format!("sharding-sweep-{}", graph.name),
        graph.name.clone(),
        SEED,
        requests,
    );
    let trace = TraceRecorder::new(&scenario)
        .record()
        .expect("scenario is valid");
    let input_len = graph.input_elements();
    let reference_outputs: Vec<Vec<f32>> = (0..CHECKED_OUTPUTS.min(requests))
        .map(|i| {
            direct
                .run(&trace.input_for(i, input_len))
                .expect("direct execution succeeds")
        })
        .collect();
    let replayer = TraceReplayer::new(&trace, input_len);

    // Measured single-fabric serving on the same trace (default policy).
    let single_requests_per_s = {
        let engine = single
            .serve(&params, &Precision::Float, ServeConfig::default())
            .expect("single-fabric model serves");
        let outcome = replayer.replay(&engine);
        drop(engine);
        outcome.throughput_rps()
    };

    let mut points = Vec::new();
    for &stages in stage_counts {
        // The 1-stage point IS the baseline compilation; don't redo its
        // place & route (the dominant cost on the 1-core bench container).
        let sharded = if stages == 1 {
            single.clone()
        } else {
            sharder
                .compile_into_stages(graph, stages)
                .expect("sweep models shard")
        };
        let perf = sharded.performance();
        for &(max_batch, window_us) in batch_configs {
            let config = ServeConfig {
                replicas: 1,
                max_batch,
                batch_window_us: window_us,
            };
            let engine = sharded
                .serve(&params, &Precision::Float, config)
                .expect("sharded models serve");
            let outcome = replayer.replay(&engine);
            drop(engine);
            for (i, (out, want)) in outcome.outputs.iter().zip(&reference_outputs).enumerate() {
                assert_eq!(
                    out, want,
                    "{}: sharded output {i} diverged from the unsharded run",
                    graph.name
                );
            }
            let mut latencies: Vec<f64> = outcome.latencies_us.iter().map(|&l| l as f64).collect();
            latencies.sort_by(f64::total_cmp);
            points.push(ShardingPoint {
                model: graph.name.clone(),
                stages: sharded.stage_count(),
                max_batch,
                window_us,
                requests: trace.len(),
                requests_per_s: outcome.throughput_rps(),
                p50_latency_us: nearest_rank_percentile(&latencies, 0.50),
                p99_latency_us: nearest_rank_percentile(&latencies, 0.99),
                modeled_throughput_samples_per_s: perf.throughput_samples_per_s,
                modeled_latency_us: perf.latency_us,
                modeled_speedup_vs_single_fabric: perf.throughput_samples_per_s
                    / single_perf.throughput_samples_per_s.max(1e-9),
                per_chip_pes: perf.stages.iter().map(|r| r.pe_count).collect(),
                per_chip_utilization: perf.per_chip_utilization.clone(),
                transport_ns: perf.transports.iter().map(|t| t.transfer_ns).collect(),
            });
        }
    }

    ShardingReport {
        model: graph.name.clone(),
        single_modeled_throughput_samples_per_s: single_perf.throughput_samples_per_s,
        single_modeled_latency_us: single_perf.latency_us,
        single_requests_per_s,
        points,
    }
}

/// Render the sweep as text.
pub fn to_table(reports: &[ShardingReport]) -> String {
    let mut rows = Vec::new();
    for report in reports {
        rows.push(vec![
            report.model.clone(),
            "1 (single fabric)".to_string(),
            "-".to_string(),
            format!("{:.0}", report.single_requests_per_s),
            "-".to_string(),
            format!("{:.0}", report.single_modeled_throughput_samples_per_s),
            format!("{:.2}", report.single_modeled_latency_us),
            "1.00".to_string(),
        ]);
        for p in &report.points {
            rows.push(vec![
                p.model.clone(),
                p.stages.to_string(),
                format!("{}x{}us", p.max_batch, p.window_us),
                format!("{:.0}", p.requests_per_s),
                format!("{:.0}/{:.0}", p.p50_latency_us, p.p99_latency_us),
                format!("{:.0}", p.modeled_throughput_samples_per_s),
                format!("{:.2}", p.modeled_latency_us),
                format!("{:.2}", p.modeled_speedup_vs_single_fabric),
            ]);
        }
    }
    format_table(
        &[
            "model",
            "chips",
            "batch",
            "req/s",
            "p50/p99 us",
            "modeled samples/s",
            "modeled lat us",
            "modeled speedup",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_grid_and_outputs_stay_bit_identical() {
        // Bit-identity to the unsharded run is asserted inside the driver
        // for every compared request.
        let graph = mlp_graph("sweep", &[64, 48, 32, 4]);
        let report = run_with(&graph, &[1, 3], &[(4, 100)], 6);
        assert_eq!(report.points.len(), 2);
        assert!(report.single_modeled_throughput_samples_per_s > 0.0);
        assert!(report.single_requests_per_s > 0.0);
        // The 1-stage point is the baseline itself.
        assert_eq!(report.points[0].stages, 1);
        assert!((report.points[0].modeled_speedup_vs_single_fabric - 1.0).abs() < 1e-9);
        assert!(report.points[0].transport_ns.is_empty());
        // The 3-stage point splits the chips and pays the links.
        let p3 = &report.points[1];
        assert_eq!(p3.stages, 3);
        assert_eq!(p3.per_chip_pes.len(), 3);
        assert_eq!(p3.transport_ns.len(), 2);
        assert!(p3.p50_latency_us <= p3.p99_latency_us);
        let table = to_table(&[report]);
        assert!(table.contains("single fabric"));
        assert!(table.contains("modeled speedup"));
    }

    /// The PR's acceptance criterion: on a ≥2-stage MLP sweep,
    /// pipeline-parallel sharded serving beats the single fabric in modeled
    /// pipeline throughput — each chip's smaller netlist routes a shorter
    /// critical path than the whole die, and the link does not erase the
    /// gain — with bit-identical outputs (asserted inside the driver).
    /// Release-only: debug-build wall-clock would dominate the measured
    /// columns, not the modeled ones, but the P&R runs are slow in debug.
    #[cfg(not(debug_assertions))]
    #[test]
    fn sharded_serving_beats_the_single_fabric_on_the_mlp_sweep() {
        let graph = mlp_graph("MLP-300-280-260-10", &[300, 280, 260, 10]);
        let report = run_with(&graph, &[2, 3], &[(8, 200)], 64);
        for point in &report.points {
            assert!(point.stages >= 2);
            assert!(
                point.modeled_speedup_vs_single_fabric > 1.0,
                "{} chips: modeled speedup {:.3} <= 1.0 (sharded {:.0} vs single {:.0})",
                point.stages,
                point.modeled_speedup_vs_single_fabric,
                point.modeled_throughput_samples_per_s,
                report.single_modeled_throughput_samples_per_s
            );
        }
    }
}
