//! The pipeline partitioner: contiguous stages under a per-fabric budget.
//!
//! A partition cuts the model at *compute-node boundaries* where exactly one
//! live tensor crosses: every data dependency that spans the cut must
//! resolve (through ReLU/Flatten/Concat pass-through wiring) to the cut
//! node's activation buffer. That single-tensor rule is what lets each stage
//! become an ordinary single-input/single-output `ComputationalGraph` that
//! the existing compiler and executor handle unchanged — and what makes the
//! chained stage executors bit-identical to the unsharded run (each stage's
//! input buffer *is* the previous stage's output buffer).
//!
//! Cut legality is decided on the resolved data-flow views (the same
//! `fpsa_nn::reference::resolve_view` collapse the executor gathers with):
//! a cut after compute node `c` is legal iff every view edge `(s, v)` with
//! `s ≤ c < v` has `s == c`. Residual blocks and inception fan-outs are
//! therefore atomic — a boundary there would need to carry several tensors,
//! which a pipeline link does not.
//!
//! PE demand is estimated from the *full-model* synthesis (groups per source
//! node × allocated duplicates), so auto mode packs stages against exactly
//! the demand the unsharded compilation realizes.

use crate::ShardError;
use fpsa_mapper::{Allocation, AllocationPolicy};
use fpsa_nn::reference::{self, is_compute_node};
use fpsa_nn::{ComputationalGraph, NodeId, Operator, TensorShape};
use fpsa_synthesis::CoreOpGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The capacity budget of one fabric (chip) in the sharded system.
///
/// The PE budget is the binding constraint — weight tiles must live
/// somewhere — while the SMB allowance bounds the buffer blocks the mapped
/// schedule may insert. [`FabricBudget::with_pes`] grants one SMB slot per
/// PE slot, a deliberately generous allowance: SMBs are an order of
/// magnitude smaller than PEs, so the PE budget is what sizes the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricBudget {
    /// Processing elements per fabric.
    pub pes: usize,
    /// Spiking memory blocks per fabric.
    pub smbs: usize,
}

impl FabricBudget {
    /// A budget of `pes` processing elements with a matching SMB allowance.
    pub fn with_pes(pes: usize) -> Self {
        let pes = pes.max(1);
        FabricBudget { pes, smbs: pes }
    }
}

impl std::fmt::Display for FabricBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} PEs / {} SMBs", self.pes, self.smbs)
    }
}

/// One pipeline stage of a partition: the original node ids it owns and the
/// self-contained subgraph built from them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePlan {
    /// Original node ids assigned to this stage, ascending.
    pub nodes: Vec<NodeId>,
    /// The stage as an ordinary computational graph: stage 0 keeps the
    /// model's input node, later stages get a fresh input node (local id 0)
    /// shaped like the previous stage's boundary tensor.
    pub graph: ComputationalGraph,
    /// `(original id, local id)` for every original node in the stage.
    pub node_map: Vec<(NodeId, NodeId)>,
    /// The boundary compute node whose activation buffer leaves this stage
    /// (`None` for the final stage, whose output is the model output).
    pub boundary: Option<NodeId>,
    /// Elements crossing the outgoing boundary (the final stage reports its
    /// logits width).
    pub boundary_elements: usize,
    /// Estimated PE demand (full-model groups × duplicates of this stage's
    /// nodes).
    pub pe_demand: u64,
}

/// A full partition of one model into contiguous pipeline stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Per-stage plans, in pipeline order.
    pub stages: Vec<StagePlan>,
    /// Stage index of every original node.
    pub stage_of_node: Vec<usize>,
    /// The boundary compute nodes, one per cut (`stages.len() - 1` of them).
    pub cuts: Vec<NodeId>,
}

impl PartitionPlan {
    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }
}

/// Everything the partitioner precomputes about one model.
pub struct Partitioner<'g> {
    graph: &'g ComputationalGraph,
    shapes: HashMap<NodeId, TensorShape>,
    /// Resolved view edges `(source compute node, consumer compute node)`.
    view_edges: Vec<(NodeId, NodeId)>,
    /// Non-input compute nodes, ascending by id.
    compute: Vec<NodeId>,
    /// Estimated PE demand per original node (0 for pass-throughs).
    node_demand: Vec<u64>,
}

impl<'g> Partitioner<'g> {
    /// Analyze a model against its full synthesis: resolve the data-flow
    /// views that decide cut legality and attribute the allocated PE demand
    /// to source nodes.
    ///
    /// # Errors
    ///
    /// [`ShardError::Model`] for malformed graphs.
    pub fn new(
        graph: &'g ComputationalGraph,
        core: &CoreOpGraph,
        policy: AllocationPolicy,
    ) -> Result<Self, ShardError> {
        let shapes = graph.infer_shapes().map_err(ShardError::Model)?;
        let mut view_edges = Vec::new();
        let mut compute = Vec::new();
        for node in graph.nodes() {
            if !is_compute_node(&node.op) {
                continue;
            }
            if matches!(node.op, Operator::Input { .. }) {
                continue;
            }
            compute.push(node.id);
            let view =
                reference::resolve_view(graph, &shapes, &node.inputs).map_err(ShardError::Model)?;
            for segment in &view {
                view_edges.push((segment.source, node.id));
            }
        }
        // Attribute the full-model allocation to source nodes: this is the
        // PE count each node's tiles occupy in the unsharded compilation.
        let allocation = Allocation::allocate(core, policy);
        let mut node_demand = vec![0u64; graph.len()];
        for group in core.groups() {
            if let Some(slot) = node_demand.get_mut(group.source_node) {
                *slot += allocation.per_group.get(group.id).copied().unwrap_or(1);
            }
        }
        Ok(Partitioner {
            graph,
            shapes,
            view_edges,
            compute,
            node_demand,
        })
    }

    /// The non-input compute nodes, in pipeline order.
    pub fn compute_nodes(&self) -> &[NodeId] {
        &self.compute
    }

    /// Estimated PE demand of one node.
    pub fn demand_of(&self, node: NodeId) -> u64 {
        self.node_demand.get(node).copied().unwrap_or(0)
    }

    /// Whether a cut directly after compute node `c` is legal: exactly one
    /// live tensor (c's buffer) crosses it.
    pub fn cut_is_legal(&self, c: NodeId) -> bool {
        if !self.compute.contains(&c) || self.compute.last() == Some(&c) {
            return false;
        }
        self.view_edges
            .iter()
            .all(|&(s, v)| !(s <= c && c < v) || s == c)
    }

    /// All legal cut nodes, in pipeline order.
    pub fn legal_cuts(&self) -> Vec<NodeId> {
        self.compute
            .iter()
            .copied()
            .filter(|&c| self.cut_is_legal(c))
            .collect()
    }

    /// Auto mode: the minimum number of contiguous stages such that every
    /// stage's estimated PE demand fits `budget`, found greedily (fill the
    /// current fabric as far as the last legal cut permits, then start the
    /// next one — latest-legal-cut greed is optimal for contiguous packing).
    ///
    /// # Errors
    ///
    /// * [`ShardError::NodeExceedsFabric`] — one node's tiles alone outgrow
    ///   a fabric: no partition can help, the budget must grow;
    /// * [`ShardError::NoLegalCut`] — an atomic span (e.g. a residual block)
    ///   exceeds the budget but has no legal cut inside.
    pub fn partition_auto(&self, budget: FabricBudget) -> Result<PartitionPlan, ShardError> {
        let n = self.compute.len();
        if n == 0 {
            return Err(ShardError::Unshardable {
                reason: "model has no compute nodes".into(),
            });
        }
        let budget_pes = budget.pes as u64;
        let mut cuts: Vec<NodeId> = Vec::new();
        let mut seg_start = 0usize;
        let mut seg_demand = 0u64;
        let mut last_legal: Option<(usize, u64)> = None; // (index, demand up to and incl.)
        for idx in 0..n {
            let node = self.compute[idx];
            let demand = self.demand_of(node);
            if demand > budget_pes {
                let node_ref = self.graph.node(node).map_err(ShardError::Model)?;
                return Err(ShardError::NodeExceedsFabric {
                    node,
                    name: node_ref.name.clone(),
                    required_pes: demand,
                    budget_pes: budget.pes,
                });
            }
            seg_demand += demand;
            if seg_demand > budget_pes {
                let Some((cut_idx, cut_demand)) = last_legal else {
                    return Err(ShardError::NoLegalCut {
                        from: self.compute[seg_start],
                        to: node,
                        required_pes: seg_demand,
                        budget_pes: budget.pes,
                    });
                };
                cuts.push(self.compute[cut_idx]);
                seg_start = cut_idx + 1;
                seg_demand -= cut_demand;
                last_legal = None;
                if seg_demand > budget_pes {
                    // The only legal cut sat too far back: the remainder is
                    // an atomic over-budget span.
                    return Err(ShardError::NoLegalCut {
                        from: self.compute[seg_start],
                        to: node,
                        required_pes: seg_demand,
                        budget_pes: budget.pes,
                    });
                }
            }
            if idx + 1 < n && self.cut_is_legal(node) {
                last_legal = Some((idx, seg_demand));
            }
        }
        self.plan_for_cuts(&cuts)
    }

    /// Explicit mode: partition at user-given cut nodes.
    ///
    /// # Errors
    ///
    /// [`ShardError::IllegalCut`] when a cut is not a legal single-tensor
    /// boundary (or the cuts are unordered / duplicated).
    pub fn partition_at(&self, cuts: &[NodeId]) -> Result<PartitionPlan, ShardError> {
        let mut previous: Option<NodeId> = None;
        for &cut in cuts {
            if previous.is_some_and(|p| cut <= p) {
                return Err(ShardError::IllegalCut {
                    at: cut,
                    reason: "cut nodes must be strictly ascending".into(),
                });
            }
            if !self.cut_is_legal(cut) {
                return Err(ShardError::IllegalCut {
                    at: cut,
                    reason: "more than one live tensor crosses this boundary \
                             (or the node is not an interior compute node)"
                        .into(),
                });
            }
            previous = Some(cut);
        }
        self.plan_for_cuts(cuts)
    }

    /// Cut nodes splitting the model into (up to) `stages` demand-balanced
    /// stages: the `k`-th cut is placed at the legal boundary whose
    /// cumulative PE demand lies closest to the `k/stages` demand quantile.
    /// Returns fewer cuts when the model has fewer legal boundaries than
    /// requested.
    pub fn balanced_cuts(&self, stages: usize) -> Vec<NodeId> {
        let stages = stages.max(1);
        let n = self.compute.len();
        if stages == 1 || n < 2 {
            return Vec::new();
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0u64;
        for &c in &self.compute {
            total += self.demand_of(c);
            cumulative.push(total);
        }
        let total = total.max(1) as f64;
        let mut cuts = Vec::new();
        let mut next_index = 0usize;
        for k in 1..stages {
            let ideal = k as f64 * total / stages as f64;
            let mut best: Option<(f64, usize)> = None;
            for (i, &cum) in cumulative.iter().enumerate().take(n - 1).skip(next_index) {
                if !self.cut_is_legal(self.compute[i]) {
                    continue;
                }
                let diff = (cum as f64 - ideal).abs();
                if best.is_none_or(|(bd, _)| diff < bd) {
                    best = Some((diff, i));
                }
            }
            let Some((_, index)) = best else { break };
            cuts.push(self.compute[index]);
            next_index = index + 1;
        }
        cuts
    }

    /// Build the full plan for a validated cut list: assign every node to a
    /// stage, construct the per-stage graphs, and verify each stage is the
    /// single-input / single-output pipeline segment the executor needs.
    fn plan_for_cuts(&self, cuts: &[NodeId]) -> Result<PartitionPlan, ShardError> {
        let stage_of_node = self.assign_stages(cuts)?;
        let stage_count = cuts.len() + 1;
        let mut stages = Vec::with_capacity(stage_count);
        for s in 0..stage_count {
            stages.push(self.build_stage(s, cuts, &stage_of_node)?);
        }
        Ok(PartitionPlan {
            stages,
            stage_of_node,
            cuts: cuts.to_vec(),
        })
    }

    /// Stage assignment: compute nodes by cut position; ReLU with its
    /// producer (so synthesis fuses it exactly like the unsharded compile);
    /// other pass-throughs (Flatten, Concat, folded norms, …) with their
    /// first consumer (so stage-graph shape inference sees them applied).
    fn assign_stages(&self, cuts: &[NodeId]) -> Result<Vec<usize>, ShardError> {
        let len = self.graph.len();
        let mut stage_of = vec![0usize; len];
        for &c in &self.compute {
            stage_of[c] = cuts.iter().filter(|&&cut| cut < c).count();
        }
        let order = self.graph.topological_order().map_err(ShardError::Model)?;
        // Forward: provisional producer-side assignment for pass-throughs.
        for &id in &order {
            let node = self.graph.node(id).map_err(ShardError::Model)?;
            if is_compute_node(&node.op) {
                continue;
            }
            stage_of[id] = node.inputs.iter().map(|&u| stage_of[u]).max().unwrap_or(0);
        }
        // Backward: non-ReLU pass-throughs move to their first consumer's
        // stage (ReLU must stay with its producer, whose tiles fuse it).
        for &id in order.iter().rev() {
            let node = self.graph.node(id).map_err(ShardError::Model)?;
            if is_compute_node(&node.op) || matches!(node.op, Operator::Relu) {
                continue;
            }
            let consumer_min = self.graph.consumers(id).iter().map(|&c| stage_of[c]).min();
            if let Some(stage) = consumer_min {
                stage_of[id] = stage;
            }
        }
        Ok(stage_of)
    }

    /// Materialize one stage as a self-contained graph.
    fn build_stage(
        &self,
        stage: usize,
        cuts: &[NodeId],
        stage_of_node: &[usize],
    ) -> Result<StagePlan, ShardError> {
        let model = &self.graph.name;
        let mut graph = ComputationalGraph::new(format!("{model}::stage{stage}"));
        let mut node_map: Vec<(NodeId, NodeId)> = Vec::new();
        let mut local_of: HashMap<NodeId, NodeId> = HashMap::new();
        let mut nodes: Vec<NodeId> = Vec::new();
        if stage > 0 {
            let boundary_in = cuts[stage - 1];
            let local = graph.add_input("shard_in", self.shapes[&boundary_in]);
            debug_assert_eq!(local, 0);
        }
        for node in self.graph.nodes() {
            if stage_of_node[node.id] != stage {
                continue;
            }
            let mut inputs = Vec::with_capacity(node.inputs.len());
            for &u in &node.inputs {
                if stage_of_node[u] == stage {
                    let &local = local_of.get(&u).ok_or_else(|| ShardError::IllegalCut {
                        at: node.id,
                        reason: format!(
                            "node {} consumes same-stage node {u} that is not ordered before it",
                            node.name
                        ),
                    })?;
                    inputs.push(local);
                } else if stage_of_node[u] < stage && stage > 0 {
                    inputs.push(0); // the stage's boundary input
                } else {
                    return Err(ShardError::IllegalCut {
                        at: node.id,
                        reason: format!(
                            "edge {u} -> {} crosses stages backwards or into stage 0",
                            node.id
                        ),
                    });
                }
            }
            let local = graph.add_node(node.name.clone(), node.op.clone(), inputs);
            local_of.insert(node.id, local);
            node_map.push((node.id, local));
            nodes.push(node.id);
        }
        // Every stage must be the shape the executor binds: one input node,
        // one output node, and (except for the last stage) an output that
        // resolves to exactly the boundary compute node.
        let input_count = graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Operator::Input { .. }))
            .count();
        if input_count != 1 {
            return Err(ShardError::IllegalCut {
                at: *nodes.first().unwrap_or(&0),
                reason: format!("stage {stage} has {input_count} input nodes, needs exactly 1"),
            });
        }
        let outputs = graph.outputs();
        if outputs.len() != 1 {
            return Err(ShardError::IllegalCut {
                at: *nodes.first().unwrap_or(&0),
                reason: format!(
                    "stage {stage} has {} output nodes, needs exactly 1 \
                     (a mid-stage value escapes the pipeline)",
                    outputs.len()
                ),
            });
        }
        let boundary = cuts.get(stage).copied();
        if let Some(boundary_node) = boundary {
            let stage_shapes = graph.infer_shapes().map_err(ShardError::Model)?;
            let view = reference::resolve_view(&graph, &stage_shapes, &outputs)
                .map_err(ShardError::Model)?;
            let expected = local_of.get(&boundary_node).copied();
            if view.len() != 1 || Some(view[0].source) != expected {
                return Err(ShardError::IllegalCut {
                    at: boundary_node,
                    reason: format!("stage {stage}'s output does not resolve to its boundary node"),
                });
            }
        }
        let boundary_elements = match boundary {
            Some(node) => self.shapes[&node].elements(),
            None => outputs
                .first()
                .and_then(|local| {
                    node_map
                        .iter()
                        .find(|&&(_, l)| l == *local)
                        .map(|&(orig, _)| self.shapes[&orig].elements())
                })
                .unwrap_or(0),
        };
        let pe_demand = nodes.iter().map(|&n| self.demand_of(n)).sum();
        Ok(StagePlan {
            nodes,
            graph,
            node_map,
            boundary,
            boundary_elements,
            pe_demand,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_nn::params::mlp_graph;
    use fpsa_nn::zoo;
    use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};

    fn analyzed(graph: &ComputationalGraph) -> (CoreOpGraph, HashMap<NodeId, TensorShape>) {
        let core = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(graph)
            .unwrap();
        let shapes = graph.infer_shapes().unwrap();
        (core, shapes)
    }

    fn partitioner<'g>(graph: &'g ComputationalGraph, core: &CoreOpGraph) -> Partitioner<'g> {
        Partitioner::new(graph, core, AllocationPolicy::DuplicationDegree(1)).unwrap()
    }

    #[test]
    fn every_linear_boundary_of_an_mlp_is_a_legal_cut() {
        let graph = mlp_graph("deep", &[32, 24, 16, 8, 4]);
        let (core, _) = analyzed(&graph);
        let p = partitioner(&graph, &core);
        // Four Linear nodes; all but the last are legal cuts.
        assert_eq!(p.compute_nodes().len(), 4);
        assert_eq!(p.legal_cuts().len(), 3);
    }

    #[test]
    fn residual_blocks_are_atomic() {
        let graph = zoo::tiny_resnet();
        let (core, _) = analyzed(&graph);
        let p = partitioner(&graph, &core);
        // No cut may fall between a residual source and its Add.
        for cut in p.legal_cuts() {
            let plan = p.partition_at(&[cut]).unwrap();
            assert_eq!(plan.stage_count(), 2);
        }
        // And the branchy interior rejects at least one compute boundary.
        let interior_illegal = p
            .compute_nodes()
            .iter()
            .any(|&c| !p.cut_is_legal(c) && Some(&c) != p.compute_nodes().last());
        assert!(interior_illegal, "tiny_resnet must have an atomic span");
    }

    #[test]
    fn auto_partition_minimizes_stages_under_the_budget() {
        let graph = mlp_graph("deep", &[300, 280, 260, 240, 10]);
        let (core, _) = analyzed(&graph);
        let p = partitioner(&graph, &core);
        let total: u64 = p.compute_nodes().iter().map(|&c| p.demand_of(c)).sum();
        // A budget covering everything → one stage.
        let one = p
            .partition_auto(FabricBudget::with_pes(total as usize))
            .unwrap();
        assert_eq!(one.stage_count(), 1);
        // A budget of roughly half → two stages, each within budget.
        let half = total.div_ceil(2) as usize + 1;
        let two = p.partition_auto(FabricBudget::with_pes(half)).unwrap();
        assert!(two.stage_count() >= 2);
        for stage in &two.stages {
            assert!(stage.pe_demand <= half as u64);
        }
    }

    #[test]
    fn a_single_oversized_node_is_a_typed_error() {
        let graph = mlp_graph("wide", &[600, 600, 4]);
        let (core, _) = analyzed(&graph);
        let p = partitioner(&graph, &core);
        let err = p.partition_auto(FabricBudget::with_pes(2)).unwrap_err();
        match err {
            ShardError::NodeExceedsFabric {
                name,
                required_pes,
                budget_pes,
                ..
            } => {
                assert_eq!(name, "fc1");
                assert!(required_pes > 2);
                assert_eq!(budget_pes, 2);
            }
            other => panic!("expected NodeExceedsFabric, got {other:?}"),
        }
    }

    #[test]
    fn explicit_cuts_are_validated() {
        let graph = mlp_graph("deep", &[32, 24, 16, 4]);
        let (core, _) = analyzed(&graph);
        let p = partitioner(&graph, &core);
        // fc1 is node 1, fc2 node 3 (relu between); both legal.
        let plan = p.partition_at(&[1, 3]).unwrap();
        assert_eq!(plan.stage_count(), 3);
        // The relu node (2) is not a compute node.
        assert!(matches!(
            p.partition_at(&[2]),
            Err(ShardError::IllegalCut { at: 2, .. })
        ));
        // Unordered cuts are rejected.
        assert!(matches!(
            p.partition_at(&[3, 1]),
            Err(ShardError::IllegalCut { .. })
        ));
    }

    #[test]
    fn stage_graphs_are_self_contained_pipeline_segments() {
        let graph = mlp_graph("deep", &[32, 24, 16, 4]);
        let (core, shapes) = analyzed(&graph);
        let p = partitioner(&graph, &core);
        let plan = p.partition_at(&[1, 3]).unwrap();
        // ReLUs ride with their producing Linear (fusion), so stage 0 is
        // [fc1, fc1_relu] and stage 1 is [fc2, fc2_relu].
        assert_eq!(plan.stages[0].nodes, vec![0, 1, 2]); // input, fc1, relu
        assert_eq!(plan.stages[1].nodes, vec![3, 4]);
        assert_eq!(plan.stages[2].nodes, vec![5]);
        // Boundary tensors carry the hidden widths.
        assert_eq!(plan.stages[0].boundary_elements, 24);
        assert_eq!(plan.stages[1].boundary_elements, 16);
        assert_eq!(plan.stages[2].boundary_elements, 4);
        // Later stages open with the boundary-shaped input node.
        let s1 = &plan.stages[1].graph;
        assert!(matches!(
            s1.nodes()[0].op,
            Operator::Input {
                shape: TensorShape::Features(24)
            }
        ));
        assert_eq!(s1.outputs().len(), 1);
        // The full node set is partitioned exactly.
        let assigned: usize = plan.stages.iter().map(|s| s.nodes.len()).sum();
        assert_eq!(assigned, graph.len());
        let _ = shapes;
    }

    #[test]
    fn flatten_joins_its_consumer_stage_so_shapes_still_infer() {
        // conv (Chw) | cut | flatten -> fc: the flatten must move into the
        // fc's stage or the Linear would see a Chw input node.
        let graph = zoo::lenet();
        let (core, _) = analyzed(&graph);
        let p = partitioner(&graph, &core);
        for cut in p.legal_cuts() {
            let plan = p.partition_at(&[cut]).unwrap();
            for stage in &plan.stages {
                stage
                    .graph
                    .infer_shapes()
                    .unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            }
        }
    }

    #[test]
    fn balanced_cuts_hit_the_requested_stage_count_on_chains() {
        let graph = mlp_graph("deep", &[64, 56, 48, 40, 32, 4]);
        let (core, _) = analyzed(&graph);
        let p = partitioner(&graph, &core);
        for stages in 1..=4 {
            let cuts = p.balanced_cuts(stages);
            assert_eq!(cuts.len(), stages - 1, "stages={stages}");
            let plan = p.partition_at(&cuts).unwrap();
            assert_eq!(plan.stage_count(), stages);
        }
    }
}
