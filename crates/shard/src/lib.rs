//! `fpsa_shard` — multi-fabric model-parallel sharding.
//!
//! The compile flow below this crate targets **one** reconfigurable fabric.
//! This crate scales it out: a model whose PE demand exceeds a single chip
//! is split into contiguous pipeline stages, each stage is compiled through
//! the existing `Synthesize → Map → PlaceRoute → Estimate` pipeline onto its
//! own fabric, and inference chains (or pipeline-parallel-serves) the stage
//! executors — each a bound `fpsa_sim` executor running its stage's
//! compiled bytecode stream — with an explicit chip-to-chip transport cost
//! in the performance model.
//!
//! ```text
//!  ComputationalGraph ── Partitioner ──► PartitionPlan (contiguous stages,
//!        │                               single-tensor boundaries, under a
//!        │                               per-fabric PE/SMB budget)
//!        ▼
//!  ShardCompiler ── per-stage fpsa_core::Compiler ──► ShardedModel
//!        │            (stage CompiledModels, StageTraces, netlist demand)
//!        ▼
//!  ShardedModel::executor ──► ShardedExecutor   (bit-identical to the
//!  ShardedModel::serve    ──► fpsa_serve::ShardedEngine      unsharded run)
//!  ShardedModel::performance ──► ShardedPerformanceReport
//!                                (per-chip reports + ChipLink transport)
//! ```
//!
//! Determinism is the contract everything rests on: stage boundaries pass
//! exactly the activation buffer the unsharded executor holds at the cut
//! node (f32 buffers in the float domains; codes round-trip losslessly
//! through the boundary dequantize/requantize in the integer domain; noisy
//! binds reuse the unsharded per-PE seed stream via
//! `Executor::bind_with_noise_offset`), so sharded outputs are bit-identical
//! to the single-large-fabric compilation — asserted by the sharded
//! determinism suite in `tests/`.
//!
//! # Quick start
//!
//! ```
//! use fpsa_nn::{params::mlp_graph, GraphParameters};
//! use fpsa_shard::{FabricBudget, ShardCompiler};
//! use fpsa_sim::Precision;
//!
//! let graph = mlp_graph("deep", &[64, 48, 32, 4]);
//! let params = GraphParameters::seeded(&graph, 7);
//! // Pretend a chip only offers 2 PEs: the model must spill across chips.
//! let sharded = ShardCompiler::fpsa(FabricBudget::with_pes(2))
//!     .compile_auto(&graph)?;
//! assert!(sharded.stage_count() >= 2);
//! let exec = sharded.executor(&params, &Precision::Float)?;
//! let logits = exec.run(&vec![0.5; 64])?;
//! assert_eq!(logits.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod exec;
pub mod experiments;
pub mod model;
pub mod partition;

pub use exec::ShardedExecutor;
pub use model::{
    ChipLink, ShardCompiler, ShardStage, ShardedModel, ShardedPerformanceReport, TransportEstimate,
};
pub use partition::{FabricBudget, PartitionPlan, Partitioner, StagePlan};

use fpsa_arch::FabricCapacity;
use fpsa_core::CompileError;
use fpsa_nn::{NnError, NodeId};
use fpsa_sim::ExecError;
use std::fmt;

/// Why sharding failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// The source model is malformed.
    Model(NnError),
    /// A stage failed to compile on its fabric.
    Compile(CompileError),
    /// Binding a stage executor failed.
    Exec(ExecError),
    /// One node's tiles alone exceed a fabric: no partition can help.
    NodeExceedsFabric {
        /// The offending node.
        node: NodeId,
        /// Its name.
        name: String,
        /// PEs the node's tiles demand.
        required_pes: u64,
        /// PEs one fabric offers.
        budget_pes: usize,
    },
    /// An atomic span (no legal single-tensor boundary inside) exceeds the
    /// per-fabric budget.
    NoLegalCut {
        /// First compute node of the span.
        from: NodeId,
        /// Last compute node of the span.
        to: NodeId,
        /// PEs the span demands.
        required_pes: u64,
        /// PEs one fabric offers.
        budget_pes: usize,
    },
    /// A requested or derived cut is not a legal pipeline boundary.
    IllegalCut {
        /// The cut (or offending) node.
        at: NodeId,
        /// Why it is illegal.
        reason: String,
    },
    /// A compiled stage's realized netlist outgrew the fabric budget.
    StageOverCapacity {
        /// Which stage.
        stage: usize,
        /// Realized netlist demand.
        required: FabricCapacity,
        /// The per-fabric budget.
        budget: FabricBudget,
    },
    /// The model cannot be sharded at all (or artifacts disagree).
    Unshardable {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Model(e) => write!(f, "model error: {e}"),
            ShardError::Compile(e) => write!(f, "stage compilation failed: {e}"),
            ShardError::Exec(e) => write!(f, "stage binding failed: {e}"),
            ShardError::NodeExceedsFabric {
                node,
                name,
                required_pes,
                budget_pes,
            } => write!(
                f,
                "node {name} (id {node}) needs {required_pes} PEs but one fabric offers \
                 {budget_pes}; grow the per-fabric budget"
            ),
            ShardError::NoLegalCut {
                from,
                to,
                required_pes,
                budget_pes,
            } => write!(
                f,
                "nodes {from}..={to} form an atomic span needing {required_pes} PEs \
                 (fabric offers {budget_pes}) with no single-tensor boundary inside"
            ),
            ShardError::IllegalCut { at, reason } => {
                write!(f, "illegal cut at node {at}: {reason}")
            }
            ShardError::StageOverCapacity {
                stage,
                required,
                budget,
            } => write!(
                f,
                "stage {stage} mapped to {required}, exceeding the fabric budget of {budget}"
            ),
            ShardError::Unshardable { reason } => write!(f, "model is unshardable: {reason}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<NnError> for ShardError {
    fn from(e: NnError) -> Self {
        ShardError::Model(e)
    }
}

impl From<CompileError> for ShardError {
    fn from(e: CompileError) -> Self {
        ShardError::Compile(e)
    }
}

impl From<ExecError> for ShardError {
    fn from(e: ExecError) -> Self {
        ShardError::Exec(e)
    }
}
