//! Chained execution of the sharded stages.
//!
//! A [`ShardedExecutor`] owns one bound `fpsa_sim::Executor` per fabric and
//! runs a sample by piping each stage's output buffer into the next stage's
//! input. Because a stage boundary carries exactly the activation buffer the
//! unsharded executor holds at the cut node (see the crate docs), chaining
//! is bit-identical to the single-fabric run — there is no arithmetic at the
//! boundary in the float domains, and the integer boundary round-trip is the
//! identity on in-range codes.

use fpsa_sim::exec::{ExecArena, ExecError, Executor};

/// Pre-bound stage executors, chained in pipeline order.
#[derive(Debug)]
pub struct ShardedExecutor {
    stages: Vec<Executor>,
}

impl ShardedExecutor {
    /// Chain bound stage executors (produced by
    /// `fpsa_shard::ShardedModel::executor`).
    pub fn new(stages: Vec<Executor>) -> Self {
        assert!(!stages.is_empty(), "a sharded pipeline needs >= 1 stage");
        ShardedExecutor { stages }
    }

    /// Number of chained stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The element count the first stage's input node expects.
    pub fn input_len(&self) -> Option<usize> {
        self.stages[0].input_len()
    }

    /// The bound stage executors, in pipeline order.
    pub fn stages(&self) -> &[Executor] {
        &self.stages
    }

    /// Consume the chain, yielding the stage executors — the form
    /// `fpsa_serve::ShardedEngine::start` takes (each stage becomes a worker
    /// pool of the pipeline-parallel engine).
    pub fn into_stages(self) -> Vec<Executor> {
        self.stages
    }

    /// Reusable per-stage scratch for [`ShardedExecutor::run_into`].
    pub fn arenas(&self) -> Vec<ExecArena> {
        self.stages.iter().map(Executor::arena).collect()
    }

    /// Execute one sample through every stage, returning the final logits.
    ///
    /// # Errors
    ///
    /// The first stage's input-length mismatch or any stage's execution
    /// error.
    pub fn run(&self, input: &[f32]) -> Result<Vec<f32>, ExecError> {
        let mut value = self.stages[0].run(input)?;
        for stage in &self.stages[1..] {
            value = stage.run(&value)?;
        }
        Ok(value)
    }

    /// Execute one sample reusing per-stage arenas (the allocation-free hot
    /// path; bit-identical to [`ShardedExecutor::run`]).
    ///
    /// # Errors
    ///
    /// Mirrors [`ShardedExecutor::run`]. `out` is cleared and refilled.
    ///
    /// # Panics
    ///
    /// Panics if `arenas` does not have one arena per stage (use
    /// [`ShardedExecutor::arenas`]).
    pub fn run_into(
        &self,
        input: &[f32],
        arenas: &mut [ExecArena],
        out: &mut Vec<f32>,
    ) -> Result<(), ExecError> {
        assert_eq!(arenas.len(), self.stages.len(), "one arena per stage");
        let mut value = input.to_vec();
        for (stage, arena) in self.stages.iter().zip(arenas.iter_mut()) {
            out.clear();
            stage.run_into(&value, arena, out)?;
            std::mem::swap(&mut value, out);
        }
        std::mem::swap(&mut value, out);
        Ok(())
    }

    /// Execute a batch of samples, preserving order.
    ///
    /// # Errors
    ///
    /// The first per-sample error, if any.
    pub fn run_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ExecError> {
        inputs.iter().map(|x| self.run(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{FabricBudget, ShardCompiler};
    use fpsa_nn::params::mlp_graph;
    use fpsa_nn::GraphParameters;
    use fpsa_sim::Precision;

    fn sample(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| ((seed + i as u64) % 13) as f32 * 0.07)
            .collect()
    }

    #[test]
    fn run_into_matches_run_bit_for_bit() {
        let graph = mlp_graph("arena", &[48, 32, 16, 4]);
        let params = GraphParameters::seeded(&graph, 9);
        let sharded = ShardCompiler::fpsa(FabricBudget::with_pes(1))
            .compile_into_stages(&graph, 3)
            .unwrap();
        let exec = sharded.executor(&params, &Precision::Float).unwrap();
        assert_eq!(exec.stage_count(), 3);
        assert_eq!(exec.input_len(), Some(48));
        let mut arenas = exec.arenas();
        let mut out = Vec::new();
        for seed in 0..4 {
            let x = sample(48, seed);
            let want = exec.run(&x).unwrap();
            exec.run_into(&x, &mut arenas, &mut out).unwrap();
            assert_eq!(out, want);
        }
    }

    #[test]
    fn batch_execution_preserves_order() {
        let graph = mlp_graph("batch", &[32, 24, 4]);
        let params = GraphParameters::seeded(&graph, 5);
        let sharded = ShardCompiler::fpsa(FabricBudget::with_pes(1))
            .compile_into_stages(&graph, 2)
            .unwrap();
        let exec = sharded.executor(&params, &Precision::Float).unwrap();
        let inputs: Vec<Vec<f32>> = (0..5).map(|i| sample(32, i)).collect();
        let batch = exec.run_batch(&inputs).unwrap();
        for (x, got) in inputs.iter().zip(&batch) {
            assert_eq!(got, &exec.run(x).unwrap());
        }
    }
}
