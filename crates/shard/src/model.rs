//! Per-stage compilation onto multiple fabrics and the sharded artifacts.
//!
//! [`ShardCompiler`] partitions a model (see [`crate::partition`]) and runs
//! the **existing** `fpsa_core::Compiler` on every stage subgraph — each
//! stage gets its own `Synthesize → Map → PlaceRoute → Estimate` run, its
//! own `StageTrace` and its own fabric-local communication estimate. The
//! result is a [`ShardedModel`]: per-chip `CompiledModel`s plus the
//! inter-chip transport cost ([`ChipLink`]: serialized activation bytes over
//! a bandwidth + fixed hop latency) that the aggregated
//! [`ShardedPerformanceReport`] charges between stages.
//!
//! A safety net runs at compile time: the per-stage synthesized groups are
//! cross-checked positionally against the full-model synthesis (same tile
//! geometry, kind, reuse and fused-ReLU flags, in the same global order), so
//! a partition that would change *what* is computed is rejected instead of
//! silently diverging.

use crate::exec::ShardedExecutor;
use crate::partition::{FabricBudget, PartitionPlan, Partitioner, StagePlan};
use crate::ShardError;
use fpsa_arch::FabricCapacity;
use fpsa_core::sweep::parallel_map;
use fpsa_core::{CompileCache, CompiledModel, Compiler};
use fpsa_mapper::AllocationPolicy;
use fpsa_nn::reference::QuantizationPlan;
use fpsa_nn::{ComputationalGraph, GraphParameters, NodeId};
use fpsa_serve::{ServeConfig, ShardedEngine};
use fpsa_sim::{Executor, PerformanceReport, Precision};
use fpsa_synthesis::{CoreOpGraph, NeuralSynthesizer};
use serde::{Deserialize, Serialize};

/// The chip-to-chip interconnect model: a point-to-point link with a fixed
/// per-hop latency plus a bandwidth term over the serialized activation
/// bytes. (1 GB/s transfers exactly one byte per nanosecond, which keeps the
/// arithmetic honest.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipLink {
    /// Link bandwidth in gigabytes per second.
    pub bandwidth_gbps: f64,
    /// Fixed per-transfer latency (SerDes + board trace) in nanoseconds.
    pub hop_latency_ns: f64,
}

impl Default for ChipLink {
    /// A conservative board-level link: 25 GB/s, 100 ns hop.
    fn default() -> Self {
        ChipLink {
            bandwidth_gbps: 25.0,
            hop_latency_ns: 100.0,
        }
    }
}

impl ChipLink {
    /// Time to move `bytes` across the link, in nanoseconds.
    pub fn transfer_ns(&self, bytes: f64) -> f64 {
        self.hop_latency_ns + bytes / self.bandwidth_gbps.max(1e-12)
    }
}

/// The cost of one stage boundary: what crosses and what it costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportEstimate {
    /// Activation elements crossing the boundary per sample.
    pub elements: usize,
    /// Serialized bytes per sample (elements × the architecture's
    /// activation precision, rounded up to whole bytes).
    pub bytes: usize,
    /// Transfer time per sample over the configured [`ChipLink`], ns.
    pub transfer_ns: f64,
}

/// One compiled pipeline stage: a whole single-fabric compilation plus its
/// place in the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStage {
    /// The stage subgraph (see [`StagePlan`]).
    pub graph: ComputationalGraph,
    /// Original node ids this stage owns.
    pub nodes: Vec<NodeId>,
    /// `(original id, local id)` mapping into `graph`.
    pub node_map: Vec<(NodeId, NodeId)>,
    /// The full single-fabric compilation of the stage (core-op graph,
    /// mapping, optional physical design, communication estimate and
    /// `StageTrace`).
    pub compiled: CompiledModel,
    /// Group-id offset of this stage within the full-model synthesis — the
    /// noise-seed hook for bit-identical `Precision::Noisy` binds.
    pub noise_group_offset: usize,
    /// Realized netlist demand of the stage.
    pub demand: FabricCapacity,
    /// Elements leaving this stage per sample (the final stage reports its
    /// logits width).
    pub boundary_elements: usize,
}

impl ShardStage {
    /// Slice the original model's parameters down to this stage (tensors
    /// re-indexed to the stage graph's local node ids).
    fn slice_params(&self, params: &GraphParameters) -> GraphParameters {
        let mut tensors: Vec<Option<Vec<f32>>> = vec![None; self.graph.len()];
        for &(orig, local) in &self.node_map {
            tensors[local] = params.weights(orig).map(<[f32]>::to_vec);
        }
        GraphParameters::from_parts(tensors)
    }
}

/// The aggregated performance of a sharded model: per-chip reports plus the
/// pipeline-level roll-up with inter-chip transport charged between stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedPerformanceReport {
    /// One single-fabric report per stage (chip).
    pub stages: Vec<PerformanceReport>,
    /// One transport estimate per boundary (`stages.len() - 1`).
    pub transports: Vec<TransportEstimate>,
    /// Steady-state pipeline period: the slowest chip or link, ns.
    pub pipeline_period_ns: f64,
    /// Sustained pipeline throughput, samples per second.
    pub throughput_samples_per_s: f64,
    /// End-to-end latency of one sample: every chip plus every link, µs.
    pub latency_us: f64,
    /// Total silicon area across all chips, mm².
    pub total_area_mm2: f64,
    /// Total PEs across all chips.
    pub total_pes: usize,
    /// Per-chip PE utilization against the fabric budget.
    pub per_chip_utilization: Vec<f64>,
    /// Index of the stage (chip) that clocks the pipeline; `usize::MAX`
    /// when a link is the bottleneck.
    pub bottleneck_stage: usize,
}

/// A model compiled across multiple fabrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedModel {
    /// Model name.
    pub model: String,
    /// The compiled pipeline stages, in order.
    pub stages: Vec<ShardStage>,
    /// Transport cost per boundary.
    pub transports: Vec<TransportEstimate>,
    /// The interconnect the transports were costed on.
    pub link: ChipLink,
    /// The per-fabric budget the partition was packed under.
    pub budget: FabricBudget,
    /// The duplication degree the stages were compiled with.
    pub duplication: u64,
    /// Stage index per original node.
    pub stage_of_node: Vec<usize>,
    /// Boundary compute nodes (original ids), one per cut.
    pub cuts: Vec<NodeId>,
}

impl ShardedModel {
    /// Number of fabrics (pipeline stages).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Bind every stage to its slice of the model parameters, producing the
    /// chained [`ShardedExecutor`] (bit-identical to the unsharded bind —
    /// see the crate docs for the per-precision argument).
    ///
    /// # Errors
    ///
    /// * [`ShardError::Unshardable`] — `params` / an integer plan cover a
    ///   different graph;
    /// * [`ShardError::Exec`] — a stage bind failed.
    pub fn executor(
        &self,
        params: &GraphParameters,
        precision: &Precision,
    ) -> Result<ShardedExecutor, ShardError> {
        if params.len() != self.stage_of_node.len() {
            return Err(ShardError::Unshardable {
                reason: format!(
                    "parameters cover {} nodes, model has {}",
                    params.len(),
                    self.stage_of_node.len()
                ),
            });
        }
        // Per-group duplicate counts come from DuplicationDegree allocation,
        // which targets the *whole graph's* max reuse degree — a stage's
        // local allocation can differ at duplication > 1, and Noisy
        // realizations are drawn per duplicate. Refusing the combination is
        // the only way to keep the bit-identity guarantee honest.
        if matches!(precision, Precision::Noisy { .. }) && self.duplication > 1 {
            return Err(ShardError::Unshardable {
                reason: format!(
                    "Precision::Noisy is only bit-identical to the unsharded bind at \
                     duplication degree 1 (stage-local allocation would realize different \
                     per-group duplicate counts); this model was compiled at degree {}",
                    self.duplication
                ),
            });
        }
        let mut stage_execs = Vec::with_capacity(self.stages.len());
        for (index, stage) in self.stages.iter().enumerate() {
            let stage_params = stage.slice_params(params);
            let stage_precision = self.stage_precision(index, precision)?;
            let exec = Executor::bind_with_noise_offset(
                &stage.graph,
                &stage_params,
                &stage.compiled.core_graph,
                &stage.compiled.mapping,
                &stage_precision,
                stage.noise_group_offset,
            )?;
            stage_execs.push(exec);
        }
        Ok(ShardedExecutor::new(stage_execs))
    }

    /// Bind once and serve pipeline-parallel: each stage (chip) gets its own
    /// worker pool in a `fpsa_serve::ShardedEngine`; batches coalesce at the
    /// entry stage and stream through the chips.
    ///
    /// # Errors
    ///
    /// Mirrors [`ShardedModel::executor`].
    pub fn serve(
        &self,
        params: &GraphParameters,
        precision: &Precision,
        config: ServeConfig,
    ) -> Result<ShardedEngine, ShardError> {
        let exec = self.executor(params, precision)?;
        Ok(ShardedEngine::start(exec.into_stages(), config))
    }

    /// The numeric domain each stage binds in: shared precisions pass
    /// through, integer plans are re-indexed to the stage graph with the
    /// boundary node's activation range on the stage's input node (so the
    /// boundary requantization is the identity on in-range codes).
    fn stage_precision(
        &self,
        stage: usize,
        precision: &Precision,
    ) -> Result<Precision, ShardError> {
        let Precision::Integer(plan) = precision else {
            return Ok(precision.clone());
        };
        if plan.weight_range.len() != self.stage_of_node.len()
            || plan.activation_range.len() != self.stage_of_node.len()
        {
            return Err(ShardError::Unshardable {
                reason: "quantization plan covers a different graph".into(),
            });
        }
        let shard = &self.stages[stage];
        let mut weight_range = vec![0.0f32; shard.graph.len()];
        let mut activation_range = vec![0.0f32; shard.graph.len()];
        for &(orig, local) in &shard.node_map {
            weight_range[local] = plan.weight_range[orig];
            activation_range[local] = plan.activation_range[orig];
        }
        if stage > 0 {
            // The fresh input node (local id 0) carries the boundary node's
            // calibrated range, so its step matches the producing stage.
            let boundary = self.cuts[stage - 1];
            activation_range[0] = plan.activation_range[boundary];
        }
        Ok(Precision::Integer(QuantizationPlan {
            weight_bits: plan.weight_bits,
            activation_bits: plan.activation_bits,
            weight_range,
            activation_range,
        }))
    }

    /// Aggregate the per-chip performance reports and the link transports
    /// into the pipeline-level numbers.
    pub fn performance(&self) -> ShardedPerformanceReport {
        let stages: Vec<PerformanceReport> = self
            .stages
            .iter()
            .map(|s| s.compiled.performance())
            .collect();
        let mut pipeline_period_ns = 0.0f64;
        let mut bottleneck_stage = 0usize;
        for (i, report) in stages.iter().enumerate() {
            if report.pipeline_period_ns > pipeline_period_ns {
                pipeline_period_ns = report.pipeline_period_ns;
                bottleneck_stage = i;
            }
        }
        for transport in &self.transports {
            if transport.transfer_ns > pipeline_period_ns {
                pipeline_period_ns = transport.transfer_ns;
                bottleneck_stage = usize::MAX;
            }
        }
        let latency_ns: f64 = stages.iter().map(|r| r.latency_us * 1e3).sum::<f64>()
            + self.transports.iter().map(|t| t.transfer_ns).sum::<f64>();
        ShardedPerformanceReport {
            throughput_samples_per_s: 1e9 / pipeline_period_ns.max(1e-9),
            latency_us: latency_ns * 1e-3,
            total_area_mm2: stages.iter().map(|r| r.area_mm2).sum(),
            total_pes: stages.iter().map(|r| r.pe_count).sum(),
            per_chip_utilization: {
                let budget = FabricCapacity::new(self.budget.pes, self.budget.smbs, 0);
                self.stages
                    .iter()
                    .map(|s| budget.pe_utilization(&s.demand))
                    .collect()
            },
            pipeline_period_ns,
            bottleneck_stage,
            stages,
            transports: self.transports.clone(),
        }
    }
}

/// Compiles models across multiple fabrics.
#[derive(Debug, Clone)]
pub struct ShardCompiler {
    /// The single-fabric compiler every stage runs through (architecture,
    /// duplication degree, physical-design configuration).
    pub compiler: Compiler,
    /// The capacity of one fabric.
    pub budget: FabricBudget,
    /// The chip-to-chip interconnect.
    pub link: ChipLink,
    /// Whether stage subgraphs compile concurrently (the default; each
    /// stage is an independent single-fabric compile with a fixed seed, so
    /// results are bit-identical to a sequential loop).
    parallel_stages: bool,
    /// Optional shared compile cache for stage compiles.
    cache: Option<std::sync::Arc<CompileCache>>,
}

impl PartialEq for ShardCompiler {
    fn eq(&self, other: &Self) -> bool {
        // The attached cache is a performance detail, not configuration.
        self.compiler == other.compiler
            && self.budget == other.budget
            && self.link == other.link
            && self.parallel_stages == other.parallel_stages
    }
}

impl ShardCompiler {
    /// A sharding compiler over an arbitrary single-fabric compiler.
    pub fn new(compiler: Compiler, budget: FabricBudget) -> Self {
        ShardCompiler {
            compiler,
            budget,
            link: ChipLink::default(),
            parallel_stages: true,
            cache: None,
        }
    }

    /// A sharding compiler targeting the default FPSA architecture.
    pub fn fpsa(budget: FabricBudget) -> Self {
        Self::new(Compiler::fpsa(), budget)
    }

    /// Use an explicit chip-to-chip link model.
    pub fn with_link(mut self, link: ChipLink) -> Self {
        self.link = link;
        self
    }

    /// Compile stage subgraphs one at a time instead of concurrently. The
    /// result is bit-identical either way (fixed per-stage seeds); this
    /// exists for the determinism suite to prove exactly that, and as an
    /// escape hatch on memory-tight machines.
    pub fn with_sequential_stage_compile(mut self) -> Self {
        self.parallel_stages = false;
        self
    }

    /// Route every stage compile through a shared [`CompileCache`]:
    /// repeated stage subgraphs (across sweep points, chip counts or
    /// drivers) compile once and reuse the artifact.
    pub fn with_cache(mut self, cache: std::sync::Arc<CompileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Auto mode: partition into the minimum number of stages that fit the
    /// per-fabric budget and compile each stage.
    ///
    /// # Errors
    ///
    /// Partitioning errors ([`ShardError::NodeExceedsFabric`],
    /// [`ShardError::NoLegalCut`]) and per-stage compile/capacity errors.
    pub fn compile_auto(&self, graph: &ComputationalGraph) -> Result<ShardedModel, ShardError> {
        let core = self.synthesize_full(graph)?;
        let partitioner = self.partitioner(graph, &core)?;
        let plan = partitioner.partition_auto(self.budget)?;
        self.compile_plan(graph, &core, plan, self.budget)
    }

    /// Explicit mode: partition at the given boundary compute nodes.
    ///
    /// # Errors
    ///
    /// [`ShardError::IllegalCut`] for invalid boundaries, plus the compile
    /// and capacity errors of the stages.
    pub fn compile_with_cuts(
        &self,
        graph: &ComputationalGraph,
        cuts: &[NodeId],
    ) -> Result<ShardedModel, ShardError> {
        let core = self.synthesize_full(graph)?;
        let partitioner = self.partitioner(graph, &core)?;
        let plan = partitioner.partition_at(cuts)?;
        self.compile_plan(graph, &core, plan, self.budget)
    }

    /// Convenience for sweeps: split into (up to) `stages` demand-balanced
    /// stages, sizing the effective per-fabric budget to the largest stage
    /// (the configured budget still applies when it is larger).
    ///
    /// # Errors
    ///
    /// Mirrors [`ShardCompiler::compile_with_cuts`].
    pub fn compile_into_stages(
        &self,
        graph: &ComputationalGraph,
        stages: usize,
    ) -> Result<ShardedModel, ShardError> {
        let core = self.synthesize_full(graph)?;
        let partitioner = self.partitioner(graph, &core)?;
        let cuts = partitioner.balanced_cuts(stages);
        let plan = partitioner.partition_at(&cuts)?;
        let max_demand = plan
            .stages
            .iter()
            .map(|s| s.pe_demand as usize)
            .max()
            .unwrap_or(1);
        let budget = if max_demand > self.budget.pes {
            FabricBudget::with_pes(max_demand)
        } else {
            self.budget
        };
        self.compile_plan(graph, &core, plan, budget)
    }

    /// The full-model synthesis the partitioner (and the group cross-check)
    /// works against — the same configuration the stage compiles tile with.
    fn synthesize_full(&self, graph: &ComputationalGraph) -> Result<CoreOpGraph, ShardError> {
        NeuralSynthesizer::new(fpsa_core::pipeline::synthesis_config_for(
            &self.compiler.arch,
        ))
        .synthesize(graph)
        .map_err(ShardError::Model)
    }

    fn partitioner<'g>(
        &self,
        graph: &'g ComputationalGraph,
        core: &CoreOpGraph,
    ) -> Result<Partitioner<'g>, ShardError> {
        Partitioner::new(
            graph,
            core,
            AllocationPolicy::DuplicationDegree(self.compiler.duplication),
        )
    }

    /// Compile every stage of a partition and assemble the sharded model.
    fn compile_plan(
        &self,
        graph: &ComputationalGraph,
        full_core: &CoreOpGraph,
        plan: PartitionPlan,
        budget: FabricBudget,
    ) -> Result<ShardedModel, ShardError> {
        let PartitionPlan {
            stages: stage_plans,
            stage_of_node,
            cuts,
        } = plan;
        // Group-id offsets within the full-model synthesis: groups are
        // emitted in topological order, so a contiguous node partition owns
        // a contiguous group range. Verified below, not assumed.
        let mut stage_group_count = vec![0usize; stage_plans.len()];
        for group in full_core.groups() {
            stage_group_count[stage_of_node[group.source_node]] += 1;
        }
        let mut offsets = vec![0usize; stage_plans.len()];
        for s in 1..stage_plans.len() {
            offsets[s] = offsets[s - 1] + stage_group_count[s - 1];
        }

        // Compile every stage subgraph — concurrently unless configured
        // sequential. Stages are independent compiles with fixed per-stage
        // seeds and `parallel_map` preserves order, so both modes produce
        // bit-identical sharded models (the determinism suite asserts it).
        // Errors keep sequential semantics: the lowest-index failure wins.
        let compile_stage = |stage_graph: &ComputationalGraph| match &self.cache {
            Some(cache) => cache
                .compile(&self.compiler, stage_graph)
                .map(|model| (*model).clone()),
            None => self.compiler.compile(stage_graph),
        };
        let compiled_stages: Vec<Result<CompiledModel, fpsa_core::CompileError>> =
            if self.parallel_stages {
                parallel_map(&stage_plans, |p| compile_stage(&p.graph))
            } else {
                stage_plans
                    .iter()
                    .map(|p| compile_stage(&p.graph))
                    .collect()
            };

        let io_bits = self.compiler.arch.io_bits as usize;
        let mut stages = Vec::with_capacity(stage_plans.len());
        let mut transports = Vec::new();
        let last = stage_plans.len() - 1;
        for (index, (stage_plan, compiled)) in
            stage_plans.into_iter().zip(compiled_stages).enumerate()
        {
            let StagePlan {
                nodes,
                graph: stage_graph,
                node_map,
                boundary: _,
                boundary_elements,
                pe_demand: _,
            } = stage_plan;
            let compiled = compiled?;
            verify_stage_groups(
                full_core,
                &compiled.core_graph,
                offsets[index],
                stage_group_count[index],
                index,
            )?;
            let stats = compiled.mapping.netlist.stats();
            let demand = FabricCapacity::new(stats.pe_count, stats.smb_count, stats.clb_count);
            if demand.pes > budget.pes || demand.smbs > budget.smbs {
                return Err(ShardError::StageOverCapacity {
                    stage: index,
                    required: demand,
                    budget,
                });
            }
            if index < last {
                let bytes = (boundary_elements * io_bits).div_ceil(8);
                transports.push(TransportEstimate {
                    elements: boundary_elements,
                    bytes,
                    transfer_ns: self.link.transfer_ns(bytes as f64),
                });
            }
            stages.push(ShardStage {
                graph: stage_graph,
                nodes,
                node_map,
                compiled,
                noise_group_offset: offsets[index],
                demand,
                boundary_elements,
            });
        }
        Ok(ShardedModel {
            model: graph.name.clone(),
            stages,
            transports,
            link: self.link,
            budget,
            duplication: self.compiler.duplication,
            stage_of_node,
            cuts,
        })
    }
}

/// The compile-time safety net: stage `index`'s synthesized groups must be
/// exactly the full-model groups `[offset, offset + expected)` — same group
/// *count* (a stage that fuses or drops a group is as wrong as one that
/// reshapes it), same tile geometry, kind, reuse and fused ReLU, in the
/// same order. Anything else means the partition changed what is computed.
fn verify_stage_groups(
    full: &CoreOpGraph,
    stage: &CoreOpGraph,
    offset: usize,
    expected: usize,
    index: usize,
) -> Result<(), ShardError> {
    let mismatch = |reason: String| ShardError::Unshardable { reason };
    if stage.len() != expected || offset + stage.len() > full.len() {
        return Err(mismatch(format!(
            "stage {index} synthesized {} groups at offset {offset}, expected {expected} \
             of the full model's {}",
            stage.len(),
            full.len()
        )));
    }
    for (i, got) in stage.groups().iter().enumerate() {
        let want = &full.groups()[offset + i];
        if got.rows != want.rows
            || got.cols != want.cols
            || got.kind != want.kind
            || got.reuse_degree != want.reuse_degree
            || got.relu != want.relu
            || got.row_offset != want.row_offset
            || got.col_offset != want.col_offset
        {
            return Err(mismatch(format!(
                "stage {index} group {i} ({}) diverges from full-model group {} ({})",
                got.name,
                offset + i,
                want.name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_nn::params::mlp_graph;
    use fpsa_sim::CommunicationEstimate;

    #[test]
    fn chip_link_costs_latency_plus_bandwidth() {
        let link = ChipLink {
            bandwidth_gbps: 10.0,
            hop_latency_ns: 50.0,
        };
        // 1000 bytes at 10 GB/s = 100 ns on the wire, plus the 50 ns hop.
        assert!((link.transfer_ns(1000.0) - 150.0).abs() < 1e-9);
        assert!(ChipLink::default().transfer_ns(0.0) > 0.0);
    }

    #[test]
    fn auto_sharding_splits_an_over_budget_model() {
        let graph = mlp_graph("over", &[300, 280, 260, 10]);
        let sharded = ShardCompiler::fpsa(FabricBudget::with_pes(8))
            .compile_auto(&graph)
            .unwrap();
        assert!(sharded.stage_count() >= 2, "8 PEs cannot hold the model");
        for stage in &sharded.stages {
            assert!(stage.demand.pes <= 8);
            assert!(stage.compiled.physical.is_some(), "tiny stages get P&R");
            // Every stage carries its own full instrumentation trace.
            assert_eq!(stage.compiled.trace.records().len(), 4);
        }
        assert_eq!(sharded.transports.len(), sharded.stage_count() - 1);
        // Boundary 0 carries fc1's 280 activations as 6-bit values.
        assert_eq!(sharded.transports[0].elements, 280);
        assert_eq!(sharded.transports[0].bytes, (280 * 6usize).div_ceil(8));
    }

    #[test]
    fn single_stage_sharding_degenerates_to_the_plain_compile() {
        let graph = mlp_graph("small", &[40, 20, 4]);
        let sharded = ShardCompiler::fpsa(FabricBudget::with_pes(64))
            .compile_auto(&graph)
            .unwrap();
        assert_eq!(sharded.stage_count(), 1);
        assert!(sharded.transports.is_empty());
        let direct = Compiler::fpsa().compile(&graph).unwrap();
        assert_eq!(
            sharded.stages[0].compiled.core_graph.len(),
            direct.core_graph.len()
        );
    }

    #[test]
    fn sharded_performance_charges_the_link_between_chips() {
        let graph = mlp_graph("perf", &[300, 280, 260, 10]);
        let compiler = ShardCompiler::fpsa(FabricBudget::with_pes(64));
        let single = compiler.compile_into_stages(&graph, 1).unwrap();
        let double = compiler.compile_into_stages(&graph, 2).unwrap();
        assert_eq!(single.stage_count(), 1);
        assert_eq!(double.stage_count(), 2);
        let single_perf = single.performance();
        let double_perf = double.performance();
        // Two chips: per-chip netlists are smaller, so each chip's routed
        // critical path — and with it the pipeline period — shrinks.
        assert!(double_perf.throughput_samples_per_s > single_perf.throughput_samples_per_s);
        // But a sample now also crosses the link, so end-to-end latency
        // includes every chip and every transport.
        let stage_latency: f64 = double_perf.stages.iter().map(|r| r.latency_us).sum();
        assert!(double_perf.latency_us > stage_latency);
        assert_eq!(double_perf.per_chip_utilization.len(), 2);
        for utilization in &double_perf.per_chip_utilization {
            assert!(*utilization > 0.0 && *utilization <= 1.0);
        }
        assert!(double_perf.total_area_mm2 > 0.0);
        assert!(double_perf.total_pes >= single_perf.total_pes);
    }

    #[test]
    fn a_slow_link_becomes_the_pipeline_bottleneck() {
        let graph = mlp_graph("slowlink", &[300, 280, 10]);
        let crawl = ChipLink {
            bandwidth_gbps: 1e-6,
            hop_latency_ns: 1e6,
        };
        let sharded = ShardCompiler::fpsa(FabricBudget::with_pes(8))
            .with_link(crawl)
            .compile_auto(&graph)
            .unwrap();
        assert!(sharded.stage_count() >= 2);
        let perf = sharded.performance();
        assert_eq!(perf.bottleneck_stage, usize::MAX, "the link must clock it");
        assert!(perf.pipeline_period_ns >= 1e6);
    }

    #[test]
    fn noisy_binds_are_refused_above_duplication_degree_one() {
        use fpsa_device::variation::{CellVariation, WeightScheme};
        let graph = mlp_graph("dup", &[64, 48, 32, 4]);
        let params = fpsa_nn::GraphParameters::seeded(&graph, 3);
        let sharded = ShardCompiler::new(
            Compiler::fpsa().with_duplication(2),
            FabricBudget::with_pes(64),
        )
        .compile_into_stages(&graph, 2)
        .unwrap();
        let noisy = Precision::Noisy {
            scheme: WeightScheme::fpsa_add(),
            variation: CellVariation::measured(),
            seed: 1,
        };
        // Stage-local allocation can realize different duplicate counts
        // than the unsharded bind at duplication > 1, so a Noisy bind
        // cannot honor the bit-identity contract and must refuse.
        let err = sharded.executor(&params, &noisy).unwrap_err();
        assert!(matches!(err, ShardError::Unshardable { .. }), "{err}");
        // The noise-free precisions are unaffected (duplicates share one
        // exact weight matrix).
        assert!(sharded.executor(&params, &Precision::Float).is_ok());
    }

    #[test]
    fn stage_capacity_is_enforced_after_mapping() {
        // An explicit one-stage partition under a tiny budget: the realized
        // netlist cannot fit and the typed error says so.
        let graph = mlp_graph("tight", &[300, 280, 10]);
        let err = ShardCompiler::fpsa(FabricBudget::with_pes(1))
            .compile_with_cuts(&graph, &[])
            .unwrap_err();
        match err {
            ShardError::StageOverCapacity {
                stage,
                required,
                budget,
            } => {
                assert_eq!(stage, 0);
                assert!(required.pes > budget.pes);
            }
            other => panic!("expected StageOverCapacity, got {other:?}"),
        }
    }

    #[test]
    fn stage_estimates_route_on_their_own_fabric() {
        let graph = mlp_graph("routes", &[300, 280, 260, 10]);
        let sharded = ShardCompiler::fpsa(FabricBudget::with_pes(8))
            .compile_auto(&graph)
            .unwrap();
        for stage in &sharded.stages {
            assert!(matches!(
                stage.compiled.communication_estimate(),
                CommunicationEstimate::Routed { .. }
            ));
        }
    }
}
