//! The golden-model reference executor for computational graphs.
//!
//! This module gives [`ComputationalGraph`] + [`GraphParameters`] a numeric
//! forward pass at *layer* granularity — no tiling, no scheduling, no
//! netlist. It is the independent reference the compiled-model execution
//! engine (`fpsa_sim::exec`) is differentially tested against: the compiled
//! path computes the same function through synthesized tiles, mapped
//! schedules and routed nets, and must agree with this one.
//!
//! Two numeric domains are provided:
//!
//! * [`Reference::forward`] — floating point (f64 accumulation, f32
//!   storage at node boundaries). The compiled executor matches this within
//!   a small tolerance: both sides accumulate in f64 and round to f32 at
//!   the same node boundaries, so the only divergence is summation *order*
//!   (tiles sum partial products in tile order).
//! * [`Reference::quantized_forward`] — integer-code execution on a
//!   calibrated [`QuantizationPlan`]: weights as 8-bit codes, activations as
//!   6-bit codes (the fabric's 64-cycle sampling window), all accumulation
//!   in `i64`. Integer addition is associative, so tiling order cannot
//!   perturb results — the compiled executor matches this **bit for bit**.
//!
//! # Lowering-faithful semantics
//!
//! The reference intentionally mirrors the neural synthesizer's semantics
//! rather than idealized framework semantics, because that is the function
//! the fabric actually computes:
//!
//! * ReLU is *fused* into the producing compute node when any consumer is a
//!   `Relu` node, and only for operators whose lowering fuses it (dense,
//!   convolution, element-wise add — not poolings). The `Relu` node itself
//!   is transparent.
//! * `BatchNorm`, `LocalResponseNorm`, `Dropout` and `Softmax` are identity
//!   (inference-folded / evaluated off-accelerator), exactly as the
//!   synthesizer treats them. Comparisons therefore happen on logits.
//! * `Flatten` and `Concat` are wiring: consumers read their inputs through
//!   an [`InputView`] that resolves pass-through chains down to the compute
//!   nodes that actually produced values.

use crate::error::NnError;
use crate::graph::{ComputationalGraph, NodeId};
use crate::ops::Operator;
use crate::params::GraphParameters;
use crate::quant::{quantize_code, rescale_code};
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One contiguous slice of a consumer's logical input vector, produced by a
/// value-producing ("compute") node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewSegment {
    /// The compute node whose buffer backs this segment.
    pub source: NodeId,
    /// Number of elements contributed.
    pub elements: usize,
}

/// The resolved logical input of a node: pass-through chains (ReLU, Flatten,
/// Concat, folded normalizations) collapsed into an ordered list of compute
/// node segments. Flattened-CHW concatenation is channel-major, so segment
/// concatenation reproduces `Concat` exactly.
pub type InputView = Vec<ViewSegment>;

/// Whether a node produces an activation buffer of its own (as opposed to
/// pass-through wiring).
pub fn is_compute_node(op: &Operator) -> bool {
    matches!(
        op,
        Operator::Input { .. }
            | Operator::Conv2d { .. }
            | Operator::Linear { .. }
            | Operator::MaxPool2d { .. }
            | Operator::AvgPool2d { .. }
            | Operator::GlobalAvgPool
            | Operator::Add
    )
}

/// Whether the lowering fuses a following ReLU into this operator's tiles.
/// Poolings never fuse (their constructs are fixed matrices), matching
/// `fpsa_synthesis::lower`.
pub fn fuses_relu(op: &Operator) -> bool {
    matches!(
        op,
        Operator::Conv2d { .. } | Operator::Linear { .. } | Operator::Add
    )
}

/// Resolve the logical input view of the given producer nodes.
///
/// # Errors
///
/// Propagates shape/graph errors from traversal.
pub fn resolve_view(
    graph: &ComputationalGraph,
    shapes: &HashMap<NodeId, TensorShape>,
    inputs: &[NodeId],
) -> Result<InputView, NnError> {
    let mut view = Vec::new();
    for &input in inputs {
        let node = graph.node(input)?;
        if is_compute_node(&node.op) {
            view.push(ViewSegment {
                source: input,
                elements: shapes[&input].elements(),
            });
        } else {
            let inner = resolve_view(graph, shapes, &node.inputs)?;
            view.extend(inner);
        }
    }
    Ok(view)
}

/// A symmetric uniform quantization plan for one graph: per-node weight and
/// activation ranges plus the bit widths of the fabric (8-bit weights via
/// the add representation, 6-bit activations from the 64-cycle sampling
/// window).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizationPlan {
    /// Weight bits including sign.
    pub weight_bits: u32,
    /// Activation bits including sign.
    pub activation_bits: u32,
    /// Per-node symmetric weight range (0 for weight-free nodes).
    pub weight_range: Vec<f32>,
    /// Per-node symmetric activation range, calibrated on sample data
    /// (0 for pass-through nodes).
    pub activation_range: Vec<f32>,
}

impl QuantizationPlan {
    /// Positive weight code levels (127 for 8 bits).
    pub fn weight_levels(&self) -> i64 {
        (1i64 << (self.weight_bits - 1)) - 1
    }

    /// Positive activation code levels (31 for 6 bits).
    pub fn activation_levels(&self) -> i64 {
        (1i64 << (self.activation_bits - 1)) - 1
    }

    /// The real value of one weight code step at a node.
    pub fn weight_step(&self, node: NodeId) -> f64 {
        f64::from(self.weight_range[node].max(1e-12)) / self.weight_levels() as f64
    }

    /// The real value of one activation code step at a node.
    pub fn activation_step(&self, node: NodeId) -> f64 {
        f64::from(self.activation_range[node].max(1e-12)) / self.activation_levels() as f64
    }

    /// The common step a consumer rescales its gathered inputs to: the step
    /// of the widest-range segment of its input view (so no gathered code
    /// can overflow the activation levels).
    pub fn gather_step(&self, view: &InputView) -> f64 {
        view.iter()
            .map(|s| self.activation_step(s.source))
            .fold(1e-12 / self.activation_levels() as f64, f64::max)
    }

    /// Calibrate a plan for `graph`/`params`: weight ranges from the
    /// parameters, activation ranges from float reference forward passes
    /// over `samples`.
    ///
    /// # Errors
    ///
    /// Propagates graph/shape errors; requires at least one sample.
    pub fn calibrate(
        graph: &ComputationalGraph,
        params: &GraphParameters,
        samples: &[Vec<f32>],
    ) -> Result<Self, NnError> {
        let reference = Reference::new(graph, params)?;
        let mut activation_range = vec![0.0f32; graph.len()];
        for sample in samples {
            let buffers = reference.forward(sample)?;
            for (node, buffer) in buffers.iter().enumerate() {
                if let Some(values) = buffer {
                    let m = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    activation_range[node] = activation_range[node].max(m);
                }
            }
        }
        let weight_range = (0..graph.len()).map(|n| params.max_abs_weight(n)).collect();
        Ok(QuantizationPlan {
            weight_bits: 8,
            activation_bits: 6,
            weight_range,
            activation_range,
        })
    }
}

/// Per-compute-node metadata resolved once per graph.
struct NodePlan {
    view: InputView,
    fused_relu: bool,
}

/// The golden-model reference executor.
pub struct Reference<'a> {
    graph: &'a ComputationalGraph,
    params: &'a GraphParameters,
    shapes: HashMap<NodeId, TensorShape>,
    order: Vec<NodeId>,
    plans: Vec<Option<NodePlan>>,
    output_view: InputView,
}

impl<'a> Reference<'a> {
    /// Prepare a reference executor (shape inference, topological order,
    /// input-view and ReLU-fusion resolution).
    ///
    /// # Errors
    ///
    /// Propagates graph and shape errors; requires exactly one output node.
    pub fn new(
        graph: &'a ComputationalGraph,
        params: &'a GraphParameters,
    ) -> Result<Self, NnError> {
        let shapes = graph.infer_shapes()?;
        let order = graph.topological_order()?;
        let mut plans: Vec<Option<NodePlan>> = Vec::with_capacity(graph.len());
        for node in graph.nodes() {
            if !is_compute_node(&node.op) {
                plans.push(None);
                continue;
            }
            let view = resolve_view(graph, &shapes, &node.inputs)?;
            let fused_relu = fuses_relu(&node.op)
                && graph
                    .consumers(node.id)
                    .iter()
                    .any(|&c| matches!(graph.node(c).map(|n| &n.op), Ok(Operator::Relu)));
            plans.push(Some(NodePlan { view, fused_relu }));
        }
        let outputs = graph.outputs();
        let [output] = outputs[..] else {
            return Err(NnError::ShapeMismatch {
                node: graph.name.clone(),
                reason: format!("reference execution needs one output node, got {outputs:?}"),
            });
        };
        let output_view = resolve_view(graph, &shapes, &[output])?;
        Ok(Reference {
            graph,
            params,
            shapes,
            order,
            plans,
            output_view,
        })
    }

    /// The inferred shape of every node.
    pub fn shapes(&self) -> &HashMap<NodeId, TensorShape> {
        &self.shapes
    }

    /// The resolved input view of a compute node (`None` for pass-through
    /// nodes).
    pub fn view(&self, node: NodeId) -> Option<&InputView> {
        self.plans
            .get(node)
            .and_then(|p| p.as_ref())
            .map(|p| &p.view)
    }

    /// Whether the lowering-faithful semantics fuse a ReLU into `node`.
    pub fn fused_relu(&self, node: NodeId) -> bool {
        self.plans
            .get(node)
            .and_then(|p| p.as_ref())
            .is_some_and(|p| p.fused_relu)
    }

    /// The output node's resolved view (for reading final logits).
    pub fn output_view(&self) -> &InputView {
        &self.output_view
    }

    /// Gather a node's logical input vector from the per-node buffers.
    fn gather<T: Copy>(view: &InputView, buffers: &[Option<Vec<T>>]) -> Vec<T> {
        let mut out = Vec::with_capacity(view.iter().map(|s| s.elements).sum());
        for segment in view {
            out.extend_from_slice(
                buffers[segment.source]
                    .as_deref()
                    .expect("topological order fills producer buffers"),
            );
        }
        out
    }

    /// Float forward pass: per-node activation buffers (index = node id,
    /// `None` for pass-through nodes). Accumulation in f64, storage in f32.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the input length does not match
    /// the graph's input node.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<Option<Vec<f32>>>, NnError> {
        let mut buffers: Vec<Option<Vec<f32>>> = vec![None; self.graph.len()];
        for &id in &self.order {
            let node = self.graph.node(id)?;
            let Some(plan) = &self.plans[id] else {
                continue;
            };
            let out_shape = self.shapes[&id];
            let buffer = match &node.op {
                Operator::Input { shape } => {
                    if input.len() != shape.elements() {
                        return Err(NnError::ShapeMismatch {
                            node: node.name.clone(),
                            reason: format!(
                                "input has {} elements, graph expects {}",
                                input.len(),
                                shape.elements()
                            ),
                        });
                    }
                    input.to_vec()
                }
                Operator::Linear { in_features, .. } => {
                    let x = Self::gather(&plan.view, &buffers);
                    let w = self.params.weights(id).expect("linear node has weights");
                    dense_forward(w, &x, *in_features, plan.fused_relu)
                }
                Operator::Conv2d { .. } => {
                    let x = Self::gather(&plan.view, &buffers);
                    let w = self.params.weights(id).expect("conv node has weights");
                    let in_shape = self.shapes[&view_shape_node(node)?];
                    conv_forward(&node.op, w, &x, in_shape, out_shape, plan.fused_relu)
                }
                Operator::MaxPool2d { kernel, stride } => {
                    let x = Self::gather(&plan.view, &buffers);
                    let in_shape = self.shapes[&view_shape_node(node)?];
                    pool_forward(&x, in_shape, out_shape, *kernel, *stride, true)
                }
                Operator::AvgPool2d { kernel, stride } => {
                    let x = Self::gather(&plan.view, &buffers);
                    let in_shape = self.shapes[&view_shape_node(node)?];
                    pool_forward(&x, in_shape, out_shape, *kernel, *stride, false)
                }
                Operator::GlobalAvgPool => {
                    let x = Self::gather(&plan.view, &buffers);
                    let in_shape = self.shapes[&view_shape_node(node)?];
                    let (h, w) = in_shape.spatial();
                    let window = (h * w) as f64;
                    (0..in_shape.channels())
                        .map(|c| {
                            let sum: f64 = (0..h * w).map(|p| f64::from(x[c * h * w + p])).sum();
                            (sum / window) as f32
                        })
                        .collect()
                }
                Operator::Add => {
                    let elements = out_shape.elements();
                    let mut acc = vec![0.0f64; elements];
                    for &input_id in &node.inputs {
                        let segment_view = resolve_view(self.graph, &self.shapes, &[input_id])?;
                        let x = Self::gather(&segment_view, &buffers);
                        for (a, &v) in acc.iter_mut().zip(&x) {
                            *a += f64::from(v);
                        }
                    }
                    acc.iter()
                        .map(|&v| {
                            let v = if plan.fused_relu { v.max(0.0) } else { v };
                            v as f32
                        })
                        .collect()
                }
                _ => unreachable!("pass-through nodes have no plan"),
            };
            buffers[id] = Some(buffer);
        }
        Ok(buffers)
    }

    /// Float logits: the output node's view gathered from a forward pass.
    ///
    /// # Errors
    ///
    /// Propagates [`Reference::forward`] errors.
    pub fn logits(&self, input: &[f32]) -> Result<Vec<f32>, NnError> {
        let buffers = self.forward(input)?;
        Ok(Self::gather(&self.output_view, &buffers))
    }

    /// Integer-code forward pass on a calibrated plan: per-node code buffers.
    /// All accumulation is exact `i64` arithmetic; real-valued rescaling
    /// happens only at node boundaries through the shared helpers of
    /// [`crate::quant`], so a tiled executor performing the same per-element
    /// composition reproduces these codes bit for bit.
    ///
    /// # Errors
    ///
    /// Mirrors [`Reference::forward`].
    pub fn quantized_forward(
        &self,
        plan: &QuantizationPlan,
        input: &[f32],
    ) -> Result<Vec<Option<Vec<i64>>>, NnError> {
        let alevels = plan.activation_levels();
        let wlevels = plan.weight_levels();
        let mut buffers: Vec<Option<Vec<i64>>> = vec![None; self.graph.len()];
        for &id in &self.order {
            let node = self.graph.node(id)?;
            let Some(node_plan) = &self.plans[id] else {
                continue;
            };
            let out_step = plan.activation_step(id);
            let out_shape = self.shapes[&id];
            let relu = node_plan.fused_relu;
            let buffer = match &node.op {
                Operator::Input { shape } => {
                    if input.len() != shape.elements() {
                        return Err(NnError::ShapeMismatch {
                            node: node.name.clone(),
                            reason: format!(
                                "input has {} elements, graph expects {}",
                                input.len(),
                                shape.elements()
                            ),
                        });
                    }
                    input
                        .iter()
                        .map(|&v| quantize_code(f64::from(v), out_step, alevels))
                        .collect()
                }
                Operator::Linear { in_features, .. } => {
                    let x = self.gather_codes(&node_plan.view, &buffers, plan);
                    let w = self.params.weights(id).expect("linear node has weights");
                    let wstep = plan.weight_step(id);
                    let gstep = plan.gather_step(&node_plan.view);
                    let out_features = w.len() / in_features;
                    (0..out_features)
                        .map(|o| {
                            let mut acc = 0i64;
                            for (i, &xi) in x.iter().enumerate() {
                                let wq = quantize_code(
                                    f64::from(w[o * in_features + i]),
                                    wstep,
                                    wlevels,
                                );
                                acc += wq * xi;
                            }
                            requantize_mac(acc, wstep, gstep, relu, out_step, alevels)
                        })
                        .collect()
                }
                Operator::Conv2d {
                    in_channels,
                    out_channels,
                    kernel,
                    stride,
                    padding,
                    groups,
                } => {
                    let x = self.gather_codes(&node_plan.view, &buffers, plan);
                    let w = self.params.weights(id).expect("conv node has weights");
                    let wstep = plan.weight_step(id);
                    let gstep = plan.gather_step(&node_plan.view);
                    let in_shape = self.shapes[&view_shape_node(node)?];
                    let (ih, iw) = in_shape.spatial();
                    let (oh, ow) = out_shape.spatial();
                    let icg = in_channels / groups;
                    let ocg = out_channels / groups;
                    let mut out = vec![0i64; out_channels * oh * ow];
                    for o in 0..*out_channels {
                        let g = o / ocg;
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut acc = 0i64;
                                for c in 0..icg {
                                    for ky in 0..*kernel {
                                        for kx in 0..*kernel {
                                            let y = (oy * stride + ky) as isize - *padding as isize;
                                            let xpos =
                                                (ox * stride + kx) as isize - *padding as isize;
                                            if y < 0
                                                || xpos < 0
                                                || y >= ih as isize
                                                || xpos >= iw as isize
                                            {
                                                continue;
                                            }
                                            let ci = g * icg + c;
                                            let xi =
                                                x[ci * ih * iw + y as usize * iw + xpos as usize];
                                            let wi = w[o * icg * kernel * kernel
                                                + (c * kernel + ky) * kernel
                                                + kx];
                                            acc +=
                                                quantize_code(f64::from(wi), wstep, wlevels) * xi;
                                        }
                                    }
                                }
                                out[o * oh * ow + oy * ow + ox] =
                                    requantize_mac(acc, wstep, gstep, relu, out_step, alevels);
                            }
                        }
                    }
                    out
                }
                Operator::MaxPool2d { kernel, stride } | Operator::AvgPool2d { kernel, stride } => {
                    let is_max = matches!(node.op, Operator::MaxPool2d { .. });
                    let x = self.gather_codes(&node_plan.view, &buffers, plan);
                    let gstep = plan.gather_step(&node_plan.view);
                    let in_shape = self.shapes[&view_shape_node(node)?];
                    let (ih, iw) = in_shape.spatial();
                    let (oh, ow) = out_shape.spatial();
                    let channels = in_shape.channels();
                    let mut out = vec![0i64; channels * oh * ow];
                    for c in 0..channels {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let real = pooled_window_real(
                                    &x, c, oy, ox, *kernel, *stride, ih, iw, gstep, is_max,
                                );
                                out[c * oh * ow + oy * ow + ox] =
                                    quantize_code(real, out_step, alevels);
                            }
                        }
                    }
                    out
                }
                Operator::GlobalAvgPool => {
                    let x = self.gather_codes(&node_plan.view, &buffers, plan);
                    let gstep = plan.gather_step(&node_plan.view);
                    let in_shape = self.shapes[&view_shape_node(node)?];
                    let (h, w) = in_shape.spatial();
                    (0..in_shape.channels())
                        .map(|c| {
                            let sum: i64 = (0..h * w).map(|p| x[c * h * w + p]).sum();
                            let real = sum as f64 * gstep / (h * w) as f64;
                            quantize_code(real, out_step, alevels)
                        })
                        .collect()
                }
                Operator::Add => {
                    let gstep = plan.gather_step(&node_plan.view);
                    let elements = out_shape.elements();
                    let mut acc = vec![0i64; elements];
                    for &input_id in &node.inputs {
                        let segment_view = resolve_view(self.graph, &self.shapes, &[input_id])?;
                        let x = self.gather_codes(&segment_view, &buffers, plan);
                        // Rescale each side to the *node's* gather step so the
                        // integer sum is exact and side-order independent.
                        let sstep = plan.gather_step(&segment_view);
                        for (a, &v) in acc.iter_mut().zip(&x) {
                            *a += rescale_code(v, sstep, gstep, alevels);
                        }
                    }
                    acc.iter()
                        .map(|&code| {
                            let code = if relu { code.max(0) } else { code };
                            rescale_code(code, gstep, out_step, alevels)
                        })
                        .collect()
                }
                _ => unreachable!("pass-through nodes have no plan"),
            };
            buffers[id] = Some(buffer);
        }
        Ok(buffers)
    }

    /// Integer logits: the output node's code buffer, dequantized.
    ///
    /// # Errors
    ///
    /// Mirrors [`Reference::quantized_forward`].
    pub fn quantized_logits(
        &self,
        plan: &QuantizationPlan,
        input: &[f32],
    ) -> Result<Vec<i64>, NnError> {
        let buffers = self.quantized_forward(plan, input)?;
        Ok(Self::gather(&self.output_view, &buffers))
    }

    /// Gather a node's logical input codes, rescaled to the view's common
    /// gather step (identical rule in the compiled executor).
    fn gather_codes(
        &self,
        view: &InputView,
        buffers: &[Option<Vec<i64>>],
        plan: &QuantizationPlan,
    ) -> Vec<i64> {
        let gstep = plan.gather_step(view);
        let alevels = plan.activation_levels();
        let mut out = Vec::with_capacity(view.iter().map(|s| s.elements).sum());
        for segment in view {
            let step = plan.activation_step(segment.source);
            let codes = buffers[segment.source]
                .as_deref()
                .expect("topological order fills producer buffers");
            out.extend(codes.iter().map(|&c| rescale_code(c, step, gstep, alevels)));
        }
        out
    }
}

/// The node whose shape describes a consumer's (single-tensor) input.
/// Multi-segment views of spatial operators concatenate channel-major, so
/// the *shape* is the consumer's declared input; we recover it from the
/// first declared input of the graph node.
fn view_shape_node(node: &crate::graph::Node) -> Result<NodeId, NnError> {
    node.inputs
        .first()
        .copied()
        .ok_or_else(|| NnError::ShapeMismatch {
            node: node.name.clone(),
            reason: "operator requires an input".into(),
        })
}

/// `y[o] = Σ_i w[o][i] x[i]` with optional fused ReLU; f64 accumulation.
fn dense_forward(w: &[f32], x: &[f32], in_features: usize, relu: bool) -> Vec<f32> {
    let out_features = w.len() / in_features;
    (0..out_features)
        .map(|o| {
            let mut acc = 0.0f64;
            for (i, &xi) in x.iter().enumerate() {
                acc += f64::from(w[o * in_features + i]) * f64::from(xi);
            }
            if relu {
                acc = acc.max(0.0);
            }
            acc as f32
        })
        .collect()
}

/// Standard direct convolution with zero padding; f64 accumulation.
fn conv_forward(
    op: &Operator,
    w: &[f32],
    x: &[f32],
    in_shape: TensorShape,
    out_shape: TensorShape,
    relu: bool,
) -> Vec<f32> {
    let Operator::Conv2d {
        in_channels,
        out_channels,
        kernel,
        stride,
        padding,
        groups,
    } = *op
    else {
        unreachable!("conv_forward requires a Conv2d operator");
    };
    let (ih, iw) = in_shape.spatial();
    let (oh, ow) = out_shape.spatial();
    let icg = in_channels / groups;
    let ocg = out_channels / groups;
    let mut out = vec![0.0f32; out_channels * oh * ow];
    for o in 0..out_channels {
        let g = o / ocg;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f64;
                for c in 0..icg {
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let y = (oy * stride + ky) as isize - padding as isize;
                            let xpos = (ox * stride + kx) as isize - padding as isize;
                            if y < 0 || xpos < 0 || y >= ih as isize || xpos >= iw as isize {
                                continue;
                            }
                            let ci = g * icg + c;
                            let xi = x[ci * ih * iw + y as usize * iw + xpos as usize];
                            let wi = w[o * icg * kernel * kernel + (c * kernel + ky) * kernel + kx];
                            acc += f64::from(wi) * f64::from(xi);
                        }
                    }
                }
                if relu {
                    acc = acc.max(0.0);
                }
                out[o * oh * ow + oy * ow + ox] = acc as f32;
            }
        }
    }
    out
}

/// Max or average pooling over CHW data (no padding, like the operator).
fn pool_forward(
    x: &[f32],
    in_shape: TensorShape,
    out_shape: TensorShape,
    kernel: usize,
    stride: usize,
    is_max: bool,
) -> Vec<f32> {
    let (ih, iw) = in_shape.spatial();
    let (oh, ow) = out_shape.spatial();
    let channels = in_shape.channels();
    let mut out = vec![0.0f32; channels * oh * ow];
    for c in 0..channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut max = f64::NEG_INFINITY;
                let mut sum = 0.0f64;
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let v =
                            f64::from(x[c * ih * iw + (oy * stride + ky) * iw + ox * stride + kx]);
                        max = max.max(v);
                        sum += v;
                    }
                }
                out[c * oh * ow + oy * ow + ox] = if is_max {
                    max as f32
                } else {
                    (sum / (kernel * kernel) as f64) as f32
                };
            }
        }
    }
    out
}

/// One pooled window in the integer domain, returned as a real value ready
/// for requantization. Shared composition with the compiled executor.
#[allow(clippy::too_many_arguments)]
pub fn pooled_window_real(
    codes: &[i64],
    channel: usize,
    oy: usize,
    ox: usize,
    kernel: usize,
    stride: usize,
    ih: usize,
    iw: usize,
    gather_step: f64,
    is_max: bool,
) -> f64 {
    let mut max = i64::MIN;
    let mut sum = 0i64;
    for ky in 0..kernel {
        for kx in 0..kernel {
            let v = codes[channel * ih * iw + (oy * stride + ky) * iw + ox * stride + kx];
            max = max.max(v);
            sum += v;
        }
    }
    if is_max {
        max as f64 * gather_step
    } else {
        sum as f64 * gather_step / (kernel * kernel) as f64
    }
}

/// The shared MAC requantization composition: `acc` integer codes at scale
/// `wstep * gather_step`, optional ReLU on the real value, requantized to
/// the producing node's activation step. The compiled executor must call
/// exactly this function so integer-mode results stay bit-identical.
pub fn requantize_mac(
    acc: i64,
    wstep: f64,
    gather_step: f64,
    relu: bool,
    out_step: f64,
    out_levels: i64,
) -> i64 {
    let mut real = acc as f64 * wstep * gather_step;
    if relu {
        real = real.max(0.0);
    }
    quantize_code(real, out_step, out_levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::mlp_graph;
    use crate::zoo;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0.0f32..1.0)).collect()
    }

    #[test]
    fn linear_reference_matches_hand_computation() {
        let g = mlp_graph("m", &[2, 2]);
        let mut p = GraphParameters::seeded(&g, 1);
        p = p.map_weights(|_| 0.5);
        let r = Reference::new(&g, &p).unwrap();
        let y = r.logits(&[1.0, 2.0]).unwrap();
        assert_eq!(y, vec![1.5, 1.5]);
    }

    #[test]
    fn relu_is_fused_into_the_producing_layer() {
        let g = mlp_graph("m", &[2, 2, 1]);
        let p = GraphParameters::seeded(&g, 9).map_weights(|_| -1.0);
        let r = Reference::new(&g, &p).unwrap();
        assert!(r.fused_relu(1), "hidden layer fuses its ReLU");
        assert!(!r.fused_relu(3), "output layer has no ReLU");
        let buffers = r.forward(&[1.0, 1.0]).unwrap();
        // Hidden activations are relu(-2) = 0 -> logits are exactly 0.
        assert_eq!(buffers[1].as_deref(), Some(&[0.0f32, 0.0][..]));
        assert_eq!(r.logits(&[1.0, 1.0]).unwrap(), vec![0.0]);
    }

    #[test]
    fn reference_mlp_matches_trained_mlp_forward() {
        let sizes = [8, 16, 4];
        let g = mlp_graph("m", &sizes);
        let mlp = crate::mlp::Mlp::new(&sizes, 3);
        let p = GraphParameters::from_mlp(&g, &mlp).unwrap();
        let r = Reference::new(&g, &p).unwrap();
        let x = sample(8, 0);
        let expected = mlp.forward(&x);
        let got = r.logits(&x).unwrap();
        for (a, b) in expected.iter().zip(&got) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn lenet_reference_runs_and_shapes_line_up() {
        let g = zoo::lenet();
        let p = GraphParameters::seeded(&g, 11);
        let r = Reference::new(&g, &p).unwrap();
        let y = r.logits(&sample(28 * 28, 1)).unwrap();
        assert_eq!(y.len(), 10);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn views_resolve_through_pass_through_chains() {
        let g = zoo::lenet();
        let p = GraphParameters::seeded(&g, 0);
        let r = Reference::new(&g, &p).unwrap();
        // fc1 reads through flatten down to pool2.
        let fc1 = g.nodes().iter().find(|n| n.name == "fc1").unwrap().id;
        let view = r.view(fc1).unwrap();
        assert_eq!(view.len(), 1);
        let pool2 = g.nodes().iter().find(|n| n.name == "pool2").unwrap().id;
        assert_eq!(view[0].source, pool2);
        assert_eq!(view[0].elements, 50 * 4 * 4);
    }

    #[test]
    fn quantized_forward_is_deterministic_and_close_to_float() {
        let g = mlp_graph("m", &[8, 16, 4]);
        let p = GraphParameters::seeded(&g, 5);
        let r = Reference::new(&g, &p).unwrap();
        let samples: Vec<Vec<f32>> = (0..4).map(|i| sample(8, i)).collect();
        let plan = QuantizationPlan::calibrate(&g, &p, &samples).unwrap();
        let a = r.quantized_logits(&plan, &samples[0]).unwrap();
        let b = r.quantized_logits(&plan, &samples[0]).unwrap();
        assert_eq!(a, b);
        // Dequantized codes land within a few activation steps of the float
        // reference.
        let float = r.logits(&samples[0]).unwrap();
        let out = g.outputs()[0];
        let step = plan.activation_step(r.output_view()[0].source);
        let _ = out;
        for (&code, &f) in a.iter().zip(&float) {
            let real = code as f64 * step;
            assert!(
                (real - f64::from(f)).abs() < 8.0 * step,
                "code {code} -> {real} vs float {f}"
            );
        }
    }

    #[test]
    fn calibration_records_weight_and_activation_ranges() {
        let g = mlp_graph("m", &[4, 8, 2]);
        let p = GraphParameters::seeded(&g, 2);
        let plan = QuantizationPlan::calibrate(&g, &p, &[sample(4, 0)]).unwrap();
        assert_eq!(plan.weight_levels(), 127);
        assert_eq!(plan.activation_levels(), 31);
        assert!(plan.weight_range[1] > 0.0);
        assert!(plan.activation_range[0] > 0.0, "input node calibrated");
        assert_eq!(plan.weight_range[0], 0.0, "input has no weights");
    }
}
