//! Workload statistics derived from a computational graph.
//!
//! The FPSA performance model is driven almost entirely by three per-layer
//! quantities: the number of weights (which determines the minimum number of
//! PEs), the number of operations (which determines compute time), and the
//! weight-reuse degree (which determines how unbalanced the pipeline is and
//! how much duplication helps — the *temporal utilization* analysis of the
//! paper's Section 3).

use serde::{Deserialize, Serialize};

/// Statistics of one weight-bearing or compute-bearing layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Node id in the source graph.
    pub node_id: usize,
    /// Layer name.
    pub name: String,
    /// Operator mnemonic ("conv", "fc", ...).
    pub mnemonic: String,
    /// Number of trainable weights.
    pub weights: u64,
    /// Multiply-accumulate count per sample.
    pub macs: u64,
    /// Operation count per sample (2 x MACs).
    pub ops: u64,
    /// How many output positions reuse the same weights.
    pub reuse_degree: u64,
    /// Number of output elements produced per sample (used to size buffers
    /// and communication traffic).
    pub output_elements: u64,
}

/// Aggregate statistics of a whole model.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Model name.
    pub model: String,
    /// Per-layer statistics in graph order.
    pub layers: Vec<LayerStats>,
    /// Total trainable weights.
    pub total_weights: u64,
    /// Total operations per sample.
    pub total_ops: u64,
    /// Total MACs per sample.
    pub total_macs: u64,
    /// Total activation elements communicated between layers per sample.
    pub total_activations: u64,
}

impl WorkloadStats {
    /// Build the aggregate from per-layer entries.
    pub fn from_layers(model: String, layers: Vec<LayerStats>) -> Self {
        let total_weights = layers.iter().map(|l| l.weights).sum();
        let total_ops = layers.iter().map(|l| l.ops).sum();
        let total_macs = layers.iter().map(|l| l.macs).sum();
        let total_activations = layers.iter().map(|l| l.output_elements).sum();
        WorkloadStats {
            model,
            layers,
            total_weights,
            total_ops,
            total_macs,
            total_activations,
        }
    }

    /// The maximum reuse degree across all layers (the paper's duplication
    /// degree is defined relative to this group).
    pub fn max_reuse_degree(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.reuse_degree)
            .max()
            .unwrap_or(1)
    }

    /// Fraction of the total weights held by the `k` layers with the largest
    /// weight counts. Used to reproduce the paper's motivation numbers
    /// (e.g. "fully connected layers take 89.3% of VGG16's storage").
    pub fn weight_share_of_top_layers(&self, k: usize) -> f64 {
        if self.total_weights == 0 {
            return 0.0;
        }
        let mut weights: Vec<u64> = self.layers.iter().map(|l| l.weights).collect();
        weights.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = weights.into_iter().take(k).sum();
        top as f64 / self.total_weights as f64
    }

    /// Fraction of total weights held by layers whose mnemonic matches.
    pub fn weight_share_of(&self, mnemonic: &str) -> f64 {
        if self.total_weights == 0 {
            return 0.0;
        }
        let share: u64 = self
            .layers
            .iter()
            .filter(|l| l.mnemonic == mnemonic)
            .map(|l| l.weights)
            .sum();
        share as f64 / self.total_weights as f64
    }

    /// Fraction of total operations consumed by layers whose mnemonic matches.
    pub fn ops_share_of(&self, mnemonic: &str) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        let share: u64 = self
            .layers
            .iter()
            .filter(|l| l.mnemonic == mnemonic)
            .map(|l| l.ops)
            .sum();
        share as f64 / self.total_ops as f64
    }

    /// Fraction of weights and of operations contributed by the first `k`
    /// weight-bearing layers in graph order — the paper's observation that
    /// VGG16's first two convolutional layers hold 0.028% of the weights but
    /// 12.5% of the computation.
    pub fn front_layer_imbalance(&self, k: usize) -> (f64, f64) {
        if self.total_weights == 0 || self.total_ops == 0 {
            return (0.0, 0.0);
        }
        let w: u64 = self.layers.iter().take(k).map(|l| l.weights).sum();
        let o: u64 = self.layers.iter().take(k).map(|l| l.ops).sum();
        (
            w as f64 / self.total_weights as f64,
            o as f64 / self.total_ops as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, mnemonic: &str, weights: u64, macs: u64, reuse: u64) -> LayerStats {
        LayerStats {
            node_id: 0,
            name: name.into(),
            mnemonic: mnemonic.into(),
            weights,
            macs,
            ops: 2 * macs,
            reuse_degree: reuse,
            output_elements: 10,
        }
    }

    #[test]
    fn aggregates_sum_layers() {
        let stats = WorkloadStats::from_layers(
            "m".into(),
            vec![
                layer("a", "conv", 100, 1000, 10),
                layer("b", "fc", 900, 900, 1),
            ],
        );
        assert_eq!(stats.total_weights, 1000);
        assert_eq!(stats.total_macs, 1900);
        assert_eq!(stats.total_ops, 3800);
        assert_eq!(stats.total_activations, 20);
        assert_eq!(stats.max_reuse_degree(), 10);
    }

    #[test]
    fn share_helpers_compute_fractions() {
        let stats = WorkloadStats::from_layers(
            "m".into(),
            vec![
                layer("a", "conv", 100, 1000, 10),
                layer("b", "fc", 900, 900, 1),
            ],
        );
        assert!((stats.weight_share_of("fc") - 0.9).abs() < 1e-12);
        assert!((stats.ops_share_of("conv") - 2000.0 / 3800.0).abs() < 1e-12);
        assert!((stats.weight_share_of_top_layers(1) - 0.9).abs() < 1e-12);
        let (w, o) = stats.front_layer_imbalance(1);
        assert!((w - 0.1).abs() < 1e-12);
        assert!((o - 2000.0 / 3800.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let stats = WorkloadStats::from_layers("m".into(), vec![]);
        assert_eq!(stats.weight_share_of("fc"), 0.0);
        assert_eq!(stats.ops_share_of("conv"), 0.0);
        assert_eq!(stats.max_reuse_degree(), 1);
        assert_eq!(stats.front_layer_imbalance(3), (0.0, 0.0));
    }
}
