//! Quantization helpers for accelerator deployment.
//!
//! The FPSA configuration stores 8-bit weights (via the add method) and uses
//! 6-bit activations (a 64-cycle sampling window). These helpers perform the
//! symmetric uniform quantization the neural synthesizer applies before
//! mapping weights onto cells.

use serde::{Deserialize, Serialize};

/// A symmetric uniform quantizer for values in `[-range, range]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    /// Number of bits (including sign).
    pub bits: u32,
    /// Symmetric clipping range.
    pub range: f32,
}

impl Quantizer {
    /// Create a quantizer.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `range` is not positive and finite.
    pub fn new(bits: u32, range: f32) -> Self {
        assert!(bits >= 1, "quantizer needs at least one bit");
        assert!(range > 0.0 && range.is_finite(), "range must be positive");
        Quantizer { bits, range }
    }

    /// The 8-bit weight quantizer used by the FPSA configuration.
    pub fn weights_8bit(range: f32) -> Self {
        Self::new(8, range)
    }

    /// The 6-bit activation quantizer (64-cycle sampling window).
    pub fn activations_6bit(range: f32) -> Self {
        Self::new(6, range)
    }

    /// Number of positive quantization levels.
    pub fn positive_levels(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Quantize a value to its integer code in `[-levels, levels]`.
    pub fn quantize(&self, value: f32) -> i64 {
        let levels = self.positive_levels() as f32;
        let scaled = (value / self.range * levels).round();
        scaled.clamp(-levels, levels) as i64
    }

    /// Map an integer code back to a real value.
    pub fn dequantize(&self, code: i64) -> f32 {
        code as f32 * self.range / self.positive_levels() as f32
    }

    /// Quantize-dequantize round trip (the value the accelerator effectively
    /// computes with).
    pub fn round_trip(&self, value: f32) -> f32 {
        self.dequantize(self.quantize(value))
    }

    /// The worst-case absolute quantization error inside the range.
    pub fn max_error(&self) -> f32 {
        0.5 * self.range / self.positive_levels() as f32
    }
}

/// Quantize a real value onto a symmetric integer-code grid: `round(value /
/// step)` (half away from zero), clamped to `[-levels, levels]`.
///
/// This is the single rounding rule of the integer execution domain: the
/// golden-model reference (`fpsa_nn::reference`) and the compiled-model
/// executor (`fpsa_sim::exec`) both requantize through this function, which
/// is what makes their integer results comparable bit for bit.
pub fn quantize_code(value: f64, step: f64, levels: i64) -> i64 {
    let code = (value / step).round();
    let bound = levels as f64;
    code.clamp(-bound, bound) as i64
}

/// Rescale an integer code from one step size to another (identity when the
/// steps are equal, so rescaling to a code's own grid is always lossless).
pub fn rescale_code(code: i64, step_from: f64, step_to: f64, levels: i64) -> i64 {
    if step_from == step_to {
        return code.clamp(-levels, levels);
    }
    quantize_code(code as f64 * step_from, step_to, levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_code_rounds_half_away_and_clamps() {
        assert_eq!(quantize_code(0.5, 1.0, 31), 1);
        assert_eq!(quantize_code(-0.5, 1.0, 31), -1);
        assert_eq!(quantize_code(0.49, 1.0, 31), 0);
        assert_eq!(quantize_code(100.0, 1.0, 31), 31);
        assert_eq!(quantize_code(-100.0, 1.0, 31), -31);
    }

    #[test]
    fn rescale_to_same_step_is_identity() {
        for code in -31i64..=31 {
            assert_eq!(rescale_code(code, 0.1, 0.1, 31), code);
        }
    }

    #[test]
    fn rescale_halving_step_doubles_codes() {
        assert_eq!(rescale_code(3, 0.2, 0.1, 127), 6);
        assert_eq!(rescale_code(-3, 0.2, 0.1, 127), -6);
    }

    #[test]
    fn codes_cover_the_symmetric_range() {
        let q = Quantizer::weights_8bit(1.0);
        assert_eq!(q.positive_levels(), 127);
        assert_eq!(q.quantize(1.0), 127);
        assert_eq!(q.quantize(-1.0), -127);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn out_of_range_values_are_clipped() {
        let q = Quantizer::weights_8bit(1.0);
        assert_eq!(q.quantize(5.0), 127);
        assert_eq!(q.quantize(-5.0), -127);
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let q = Quantizer::weights_8bit(2.0);
        for i in -100..=100 {
            let v = i as f32 * 0.02;
            let err = (q.round_trip(v) - v).abs();
            assert!(err <= q.max_error() + 1e-6, "error {err} at {v}");
        }
    }

    #[test]
    fn six_bit_quantizer_is_coarser_than_eight_bit() {
        let q8 = Quantizer::weights_8bit(1.0);
        let q6 = Quantizer::activations_6bit(1.0);
        assert!(q6.max_error() > q8.max_error());
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn non_positive_range_is_rejected() {
        let _ = Quantizer::new(8, 0.0);
    }
}
