//! The repository-wide seeded-RNG convention.
//!
//! Every stochastic component (weight initialization, Monte-Carlo variation
//! trials, per-PE noise injection) derives its RNG seed through this module
//! instead of consuming a shared stream. The convention:
//!
//! ```text
//! seed(component) = mix(mix(mix(base) ^ STREAM) ^ index)
//! ```
//!
//! where `mix` is the SplitMix64 finalizer, `STREAM` is a compile-time
//! constant naming the consumer (so different components never collide even
//! for the same base seed), and `index` identifies the draw within the
//! component (trial number, node id, PE slot, ...). Deriving instead of
//! streaming means:
//!
//! * adding a draw to one component never shifts any other component's
//!   randomness (no cross-contamination across refactors);
//! * trials / PEs can be evaluated in any order — including in parallel —
//!   and still see exactly the same noise;
//! * a result is reproducible from `(base, STREAM, index)` alone.

/// The SplitMix64 finalizer: a high-quality 64-bit mixing permutation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stream tag: deterministic graph-parameter initialization
/// ([`crate::params::GraphParameters`]); `index` is the node id.
pub const STREAM_PARAMS: u64 = 0x5041_5241_4D53; // "PARAMS"

/// Stream tag: Monte-Carlo variation trials (`fpsa_sim::VariationStudy`);
/// `index` is the trial number.
pub const STREAM_TRIAL: u64 = 0x0054_5249_414C; // "TRIAL"

/// Stream tag: per-PE weight-programming noise in the compiled-model
/// executor (`fpsa_sim::exec`); `index` packs `(group, duplicate)`.
pub const STREAM_PE_NOISE: u64 = 0x0050_454E_4F49_5345; // "PENOISE"

/// Stream tag: input-sample generation in tests and examples; `index` is the
/// sample number.
pub const STREAM_SAMPLES: u64 = 0x5341_4D50_4C45; // "SAMPLE"

/// Stream tag: workload arrival-process draws (`fpsa_workload`); `index`
/// names the sub-stream within the recorder (0 = inter-arrival, 1 =
/// thinning/acceptance).
pub const STREAM_ARRIVAL: u64 = 0x0041_5252_4956_4545; // "ARRIVEE"

/// Stream tag: workload mix draws — tenant, model and client-batch-size
/// selection (`fpsa_workload`); `index` names the mix (0 = tenant,
/// 1 = model, 2 = batch size).
pub const STREAM_MIX: u64 = 0x0057_4C4D_4958; // "WLMIX"

/// Stream tag: per-request input features in trace replay
/// (`fpsa_workload`); `index` is the request's position in the trace, so a
/// replayer can regenerate any request without scanning the stream.
pub const STREAM_REQUEST: u64 = 0x0052_4551_5545_5354; // "REQUEST"

/// Stream tag: phase-clustering initialization (`fpsa_workload`); `index`
/// is the k-means restart number.
pub const STREAM_PHASE: u64 = 0x0050_4841_5345; // "PHASE"

/// Derive the seed for `(base, stream, index)` per the convention above.
pub fn derive(base: u64, stream: u64, index: u64) -> u64 {
    mix(mix(mix(base) ^ stream) ^ index)
}

/// Pack a `(group, duplicate)` pair into one stream index for
/// [`STREAM_PE_NOISE`]. Duplicates get the low 16 bits, which no allocation
/// in this repository comes close to exceeding.
pub fn pe_index(group: usize, duplicate: u64) -> u64 {
    ((group as u64) << 16) | (duplicate & 0xFFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive(1, STREAM_TRIAL, 0), derive(1, STREAM_TRIAL, 0));
    }

    #[test]
    fn streams_and_indices_separate() {
        let base = 42;
        let a = derive(base, STREAM_TRIAL, 0);
        let b = derive(base, STREAM_TRIAL, 1);
        let c = derive(base, STREAM_PARAMS, 0);
        let d = derive(base.wrapping_add(1), STREAM_TRIAL, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn pe_index_keeps_groups_apart() {
        assert_ne!(pe_index(1, 0), pe_index(0, 1));
        assert_ne!(pe_index(2, 3), pe_index(3, 2));
        assert_eq!(pe_index(5, 7), (5 << 16) | 7);
    }
}
