//! A tiny trainable multi-layer perceptron.
//!
//! This is the "real network" behind the Figure 9 accuracy experiment: it is
//! trained with plain SGD on a synthetic dataset, its weights are then
//! quantized and mapped onto noisy ReRAM cells with either the splice or the
//! add representation, and the resulting classification accuracy is compared
//! against the full-precision accuracy.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One dense layer: `y = relu(W x + b)` (the last layer omits the ReLU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Weight matrix, `weights[o][i]`.
    pub weights: Vec<Vec<f32>>,
    /// Bias vector.
    pub bias: Vec<f32>,
}

impl DenseLayer {
    /// Create a layer with small random weights.
    pub fn random(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / inputs as f32).sqrt();
        DenseLayer {
            weights: (0..outputs)
                .map(|_| (0..inputs).map(|_| rng.gen_range(-scale..scale)).collect())
                .collect(),
            bias: vec![0.0; outputs],
        }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.weights.first().map_or(0, Vec::len)
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.weights.len()
    }

    /// Forward pass without activation.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.weights
            .iter()
            .zip(&self.bias)
            .map(|(row, b)| row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f32>() + b)
            .collect()
    }
}

/// A multi-layer perceptron with ReLU activations between layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// The dense layers, input to output.
    pub layers: Vec<DenseLayer>,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.05,
            epochs: 60,
            seed: 0xF95A,
        }
    }
}

impl Mlp {
    /// Create an MLP with the given layer sizes (e.g. `[2, 32, 3]`).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .map(|w| DenseLayer::random(w[0], w[1], &mut rng))
            .collect();
        Mlp { layers }
    }

    /// Forward pass returning the activations of every layer (the last entry
    /// holds the logits).
    pub fn forward_trace(&self, x: &[f32]) -> Vec<Vec<f32>> {
        let mut activations = Vec::with_capacity(self.layers.len());
        let mut current = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(&current);
            if i + 1 != self.layers.len() {
                for v in &mut z {
                    *v = v.max(0.0);
                }
            }
            activations.push(z.clone());
            current = z;
        }
        activations
    }

    /// Logits for one sample.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.forward_trace(x).pop().unwrap_or_default()
    }

    /// Predicted class for one sample.
    pub fn predict(&self, x: &[f32]) -> usize {
        argmax(&self.forward(x))
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .samples
            .iter()
            .zip(&data.labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Train with SGD + softmax cross-entropy.
    pub fn train(&mut self, data: &Dataset, config: TrainConfig) {
        self.train_impl(data, config, true);
    }

    /// Train with SGD while keeping every bias frozen at zero.
    ///
    /// Layers initialize their biases to zero, so the result is a pure
    /// weight-matrix network — the form [`crate::params::GraphParameters::from_mlp`]
    /// can import into a computational graph (the graph IR, like the ReRAM
    /// crossbar, has no bias term).
    pub fn train_without_bias(&mut self, data: &Dataset, config: TrainConfig) {
        self.train_impl(data, config, false);
    }

    fn train_impl(&mut self, data: &Dataset, config: TrainConfig, update_bias: bool) {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = data.len();
        for _ in 0..config.epochs {
            for _ in 0..n {
                let idx = rng.gen_range(0..n);
                self.sgd_step(
                    &data.samples[idx],
                    data.labels[idx],
                    config.learning_rate,
                    update_bias,
                );
            }
        }
    }

    fn sgd_step(&mut self, x: &[f32], label: usize, lr: f32, update_bias: bool) {
        // Forward, keeping pre-activation inputs per layer.
        let mut inputs: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len());
        let mut current = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(current.clone());
            let mut z = layer.forward(&current);
            if i + 1 != self.layers.len() {
                for v in &mut z {
                    *v = v.max(0.0);
                }
            }
            current = z;
        }
        // Softmax cross-entropy gradient at the output.
        let probs = softmax(&current);
        let mut delta: Vec<f32> = probs;
        delta[label] -= 1.0;
        // Backward.
        for i in (0..self.layers.len()).rev() {
            let input = &inputs[i];
            let mut next_delta = vec![0.0f32; input.len()];
            {
                let layer = &self.layers[i];
                for (o, row) in layer.weights.iter().enumerate() {
                    for (j, w) in row.iter().enumerate() {
                        next_delta[j] += w * delta[o];
                    }
                }
            }
            // ReLU derivative with respect to this layer's input applies to
            // the *previous* layer's output, i.e. when propagating further.
            let layer = &mut self.layers[i];
            for (o, row) in layer.weights.iter_mut().enumerate() {
                for (j, w) in row.iter_mut().enumerate() {
                    *w -= lr * delta[o] * input[j];
                }
                if update_bias {
                    layer.bias[o] -= lr * delta[o];
                }
            }
            if i > 0 {
                for (j, d) in next_delta.iter_mut().enumerate() {
                    if inputs[i][j] <= 0.0 {
                        *d = 0.0;
                    }
                }
                delta = next_delta;
            }
        }
    }

    /// Apply a transformation to every weight (used to inject quantization
    /// and device variation), returning a new network.
    pub fn map_weights<F: FnMut(f32) -> f32>(&self, mut f: F) -> Mlp {
        Mlp {
            layers: self
                .layers
                .iter()
                .map(|l| DenseLayer {
                    weights: l
                        .weights
                        .iter()
                        .map(|row| row.iter().map(|&w| f(w)).collect())
                        .collect(),
                    bias: l.bias.clone(),
                })
                .collect(),
        }
    }

    /// The largest absolute weight in the network (used as quantization range).
    pub fn max_abs_weight(&self) -> f32 {
        self.layers
            .iter()
            .flat_map(|l| l.weights.iter().flatten())
            .fold(0.0f32, |m, &w| m.max(w.abs()))
    }

    /// Total number of weights.
    pub fn weight_count(&self) -> usize {
        self.layers.iter().map(|l| l.outputs() * l.inputs()).sum()
    }
}

/// Index of the maximum element (0 for empty input).
pub fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter()
        .map(|e| e / sum.max(f32::MIN_POSITIVE))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_and_softmax_behave() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[]), 0);
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn forward_dimensions_follow_layer_sizes() {
        let mlp = Mlp::new(&[4, 8, 3], 1);
        let out = mlp.forward(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(out.len(), 3);
        assert_eq!(mlp.weight_count(), 4 * 8 + 8 * 3);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_rejects_single_layer_spec() {
        let _ = Mlp::new(&[4], 1);
    }

    #[test]
    fn training_learns_gaussian_blobs() {
        let data = Dataset::gaussian_blobs(3, 80, 6, 0.25, 11);
        let (train, test) = data.split(0.8);
        let mut mlp = Mlp::new(&[6, 24, 3], 5);
        let before = mlp.accuracy(&test);
        mlp.train(
            &train,
            TrainConfig {
                learning_rate: 0.05,
                epochs: 40,
                seed: 3,
            },
        );
        let after = mlp.accuracy(&test);
        assert!(
            after > before,
            "accuracy should improve ({before} -> {after})"
        );
        assert!(
            after > 0.9,
            "blobs should be almost perfectly separable, got {after}"
        );
    }

    #[test]
    fn training_learns_concentric_rings() {
        let data = Dataset::concentric_rings(2, 200, 4);
        let (train, test) = data.split(0.8);
        let mut mlp = Mlp::new(&[2, 32, 2], 6);
        mlp.train(
            &train,
            TrainConfig {
                learning_rate: 0.08,
                epochs: 120,
                seed: 9,
            },
        );
        assert!(mlp.accuracy(&test) > 0.85);
    }

    #[test]
    fn map_weights_applies_transformation() {
        let mlp = Mlp::new(&[3, 4, 2], 2);
        let zeroed = mlp.map_weights(|_| 0.0);
        assert!(zeroed
            .layers
            .iter()
            .flat_map(|l| l.weights.iter().flatten())
            .all(|&w| w == 0.0));
        assert_eq!(zeroed.weight_count(), mlp.weight_count());
    }

    #[test]
    fn max_abs_weight_bounds_all_weights() {
        let mlp = Mlp::new(&[5, 10, 4], 3);
        let m = mlp.max_abs_weight();
        assert!(mlp
            .layers
            .iter()
            .flat_map(|l| l.weights.iter().flatten())
            .all(|&w| w.abs() <= m));
        assert!(m > 0.0);
    }

    #[test]
    fn bias_free_training_learns_and_keeps_biases_zero() {
        let data = Dataset::gaussian_blobs(3, 80, 6, 0.25, 13);
        let (train, test) = data.split(0.8);
        let mut mlp = Mlp::new(&[6, 24, 3], 5);
        mlp.train_without_bias(
            &train,
            TrainConfig {
                learning_rate: 0.05,
                epochs: 40,
                seed: 3,
            },
        );
        assert!(mlp.layers.iter().all(|l| l.bias.iter().all(|&b| b == 0.0)));
        assert!(mlp.accuracy(&test) > 0.85, "bias-free blobs stay separable");
    }

    #[test]
    fn accuracy_of_empty_dataset_is_zero() {
        let mlp = Mlp::new(&[2, 2], 0);
        let empty = Dataset {
            samples: vec![],
            labels: vec![],
            classes: 2,
        };
        assert_eq!(mlp.accuracy(&empty), 0.0);
    }
}
