//! Operators of the computational-graph IR.
//!
//! The set mirrors what the paper's benchmark networks need: convolutions,
//! fully connected layers, poolings, ReLU, element-wise residual addition,
//! channel concatenation (GoogLeNet inception), flattening, local response
//! normalization (AlexNet/GoogLeNet) and batch normalization (ResNet, folded
//! into the preceding convolution for inference).

use crate::error::NnError;
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};

/// One tensor operation in the computational graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operator {
    /// Graph input with a fixed shape.
    Input {
        /// Shape of the input sample.
        shape: TensorShape,
    },
    /// 2-D convolution.
    Conv2d {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
        /// Channel groups (1 for dense convolution).
        groups: usize,
    },
    /// Fully connected layer.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Rectified linear activation.
    Relu,
    /// Max pooling.
    MaxPool2d {
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling.
    AvgPool2d {
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling over the full spatial extent.
    GlobalAvgPool,
    /// Element-wise addition of two tensors (residual connections).
    Add,
    /// Channel-wise concatenation of several tensors.
    Concat,
    /// Flatten a CHW tensor into a feature vector.
    Flatten,
    /// Batch normalization (inference mode, folded scale/shift).
    BatchNorm {
        /// Number of channels.
        channels: usize,
    },
    /// Local response normalization (treated as a cheap element-wise op).
    LocalResponseNorm,
    /// Dropout (identity at inference time).
    Dropout,
    /// Softmax classifier output (evaluated off-accelerator).
    Softmax,
}

impl Operator {
    /// Short mnemonic used in reports and netlist names.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Operator::Input { .. } => "input",
            Operator::Conv2d { .. } => "conv",
            Operator::Linear { .. } => "fc",
            Operator::Relu => "relu",
            Operator::MaxPool2d { .. } => "maxpool",
            Operator::AvgPool2d { .. } => "avgpool",
            Operator::GlobalAvgPool => "gap",
            Operator::Add => "add",
            Operator::Concat => "concat",
            Operator::Flatten => "flatten",
            Operator::BatchNorm { .. } => "bn",
            Operator::LocalResponseNorm => "lrn",
            Operator::Dropout => "dropout",
            Operator::Softmax => "softmax",
        }
    }

    /// Whether this operator carries trainable weights that must be stored in
    /// ReRAM crossbars.
    pub fn has_weights(&self) -> bool {
        matches!(
            self,
            Operator::Conv2d { .. } | Operator::Linear { .. } | Operator::BatchNorm { .. }
        )
    }

    /// Number of trainable weights (biases are folded into the weight count
    /// the same way the paper's Table 3 counts parameters).
    pub fn weight_count(&self) -> usize {
        match *self {
            Operator::Conv2d {
                in_channels,
                out_channels,
                kernel,
                groups,
                ..
            } => out_channels * (in_channels / groups) * kernel * kernel,
            Operator::Linear {
                in_features,
                out_features,
            } => in_features * out_features,
            Operator::BatchNorm { channels } => 2 * channels,
            _ => 0,
        }
    }

    /// Infer the output shape for the given input shapes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the inputs are incompatible
    /// with the operator and [`NnError::InvalidOperator`] for degenerate
    /// configurations (zero stride, missing inputs, ...).
    pub fn infer_shape(&self, name: &str, inputs: &[TensorShape]) -> Result<TensorShape, NnError> {
        let mismatch = |reason: String| NnError::ShapeMismatch {
            node: name.to_string(),
            reason,
        };
        let single = |inputs: &[TensorShape]| -> Result<TensorShape, NnError> {
            inputs
                .first()
                .copied()
                .ok_or_else(|| mismatch("operator requires one input".into()))
        };
        match *self {
            Operator::Input { shape } => Ok(shape),
            Operator::Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
                ..
            } => {
                if stride == 0 || kernel == 0 {
                    return Err(NnError::InvalidOperator {
                        node: name.to_string(),
                        reason: "kernel and stride must be non-zero".into(),
                    });
                }
                let input = single(inputs)?;
                match input {
                    TensorShape::Chw {
                        channels,
                        height,
                        width,
                    } => {
                        if channels != in_channels {
                            return Err(mismatch(format!(
                                "expected {in_channels} input channels, got {channels}"
                            )));
                        }
                        if height + 2 * padding < kernel || width + 2 * padding < kernel {
                            return Err(mismatch(format!(
                                "kernel {kernel} larger than padded input {height}x{width}"
                            )));
                        }
                        let oh = (height + 2 * padding - kernel) / stride + 1;
                        let ow = (width + 2 * padding - kernel) / stride + 1;
                        Ok(TensorShape::chw(out_channels, oh, ow))
                    }
                    TensorShape::Features(_) => {
                        Err(mismatch("convolution requires a CHW input".into()))
                    }
                }
            }
            Operator::Linear {
                in_features,
                out_features,
            } => {
                let input = single(inputs)?;
                if input.elements() != in_features {
                    return Err(mismatch(format!(
                        "expected {in_features} input features, got {}",
                        input.elements()
                    )));
                }
                Ok(TensorShape::Features(out_features))
            }
            Operator::Relu
            | Operator::BatchNorm { .. }
            | Operator::LocalResponseNorm
            | Operator::Dropout
            | Operator::Softmax => single(inputs),
            Operator::MaxPool2d { kernel, stride } | Operator::AvgPool2d { kernel, stride } => {
                if stride == 0 || kernel == 0 {
                    return Err(NnError::InvalidOperator {
                        node: name.to_string(),
                        reason: "kernel and stride must be non-zero".into(),
                    });
                }
                let input = single(inputs)?;
                match input {
                    TensorShape::Chw {
                        channels,
                        height,
                        width,
                    } => {
                        if height < kernel || width < kernel {
                            return Err(mismatch(format!(
                                "pooling window {kernel} larger than input {height}x{width}"
                            )));
                        }
                        let oh = (height - kernel) / stride + 1;
                        let ow = (width - kernel) / stride + 1;
                        Ok(TensorShape::chw(channels, oh, ow))
                    }
                    TensorShape::Features(_) => {
                        Err(mismatch("pooling requires a CHW input".into()))
                    }
                }
            }
            Operator::GlobalAvgPool => {
                let input = single(inputs)?;
                Ok(TensorShape::Features(input.channels()))
            }
            Operator::Add => {
                if inputs.len() < 2 {
                    return Err(mismatch("element-wise add requires two inputs".into()));
                }
                if inputs.iter().any(|s| s.elements() != inputs[0].elements()) {
                    return Err(mismatch("element-wise add requires equal shapes".into()));
                }
                Ok(inputs[0])
            }
            Operator::Concat => {
                if inputs.is_empty() {
                    return Err(mismatch("concat requires at least one input".into()));
                }
                match inputs[0] {
                    TensorShape::Chw { height, width, .. } => {
                        let mut channels = 0;
                        for s in inputs {
                            match *s {
                                TensorShape::Chw {
                                    channels: c,
                                    height: h,
                                    width: w,
                                } if h == height && w == width => channels += c,
                                _ => {
                                    return Err(mismatch(
                                        "concat inputs must share spatial dimensions".into(),
                                    ))
                                }
                            }
                        }
                        Ok(TensorShape::chw(channels, height, width))
                    }
                    TensorShape::Features(_) => {
                        let total = inputs.iter().map(TensorShape::elements).sum();
                        Ok(TensorShape::Features(total))
                    }
                }
            }
            Operator::Flatten => {
                let input = single(inputs)?;
                Ok(input.flattened())
            }
        }
    }

    /// Number of multiply-accumulate operations this operator performs for
    /// one sample, given its (already inferred) output shape.
    pub fn mac_count(&self, output: TensorShape) -> u64 {
        match *self {
            Operator::Conv2d {
                in_channels,
                kernel,
                groups,
                ..
            } => {
                let (oh, ow) = output.spatial();
                let oc = output.channels();
                (oc * oh * ow) as u64 * ((in_channels / groups) * kernel * kernel) as u64
            }
            Operator::Linear {
                in_features,
                out_features,
            } => (in_features * out_features) as u64,
            _ => 0,
        }
    }

    /// The weight-reuse degree: how many different output positions reuse the
    /// same weights. Convolutions reuse their kernels across all spatial
    /// output positions; fully connected layers do not reuse weights at all.
    pub fn reuse_degree(&self, output: TensorShape) -> u64 {
        match *self {
            Operator::Conv2d { .. } => {
                let (oh, ow) = output.spatial();
                (oh * ow) as u64
            }
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chw(c: usize, h: usize, w: usize) -> TensorShape {
        TensorShape::chw(c, h, w)
    }

    #[test]
    fn conv_shape_inference_matches_formula() {
        let conv = Operator::Conv2d {
            in_channels: 3,
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        let out = conv.infer_shape("conv1", &[chw(3, 224, 224)]).unwrap();
        assert_eq!(out, chw(64, 224, 224));
    }

    #[test]
    fn conv_rejects_channel_mismatch_and_flat_input() {
        let conv = Operator::Conv2d {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 0,
            groups: 1,
        };
        assert!(conv.infer_shape("c", &[chw(4, 8, 8)]).is_err());
        assert!(conv
            .infer_shape("c", &[TensorShape::Features(100)])
            .is_err());
    }

    #[test]
    fn conv_rejects_zero_stride() {
        let conv = Operator::Conv2d {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 0,
            padding: 0,
            groups: 1,
        };
        assert!(matches!(
            conv.infer_shape("c", &[chw(3, 8, 8)]),
            Err(NnError::InvalidOperator { .. })
        ));
    }

    #[test]
    fn linear_checks_feature_count() {
        let fc = Operator::Linear {
            in_features: 100,
            out_features: 10,
        };
        assert_eq!(
            fc.infer_shape("fc", &[TensorShape::Features(100)]).unwrap(),
            TensorShape::Features(10)
        );
        assert!(fc.infer_shape("fc", &[TensorShape::Features(99)]).is_err());
    }

    #[test]
    fn pooling_shrinks_spatial_dimensions() {
        let pool = Operator::MaxPool2d {
            kernel: 2,
            stride: 2,
        };
        assert_eq!(
            pool.infer_shape("p", &[chw(16, 8, 8)]).unwrap(),
            chw(16, 4, 4)
        );
        let gap = Operator::GlobalAvgPool;
        assert_eq!(
            gap.infer_shape("g", &[chw(1024, 7, 7)]).unwrap(),
            TensorShape::Features(1024)
        );
    }

    #[test]
    fn add_requires_matching_shapes() {
        let add = Operator::Add;
        assert!(add.infer_shape("a", &[chw(8, 4, 4), chw(8, 4, 4)]).is_ok());
        assert!(add.infer_shape("a", &[chw(8, 4, 4)]).is_err());
        assert!(add.infer_shape("a", &[chw(8, 4, 4), chw(4, 4, 4)]).is_err());
    }

    #[test]
    fn concat_sums_channels() {
        let cat = Operator::Concat;
        let out = cat
            .infer_shape("cat", &[chw(64, 28, 28), chw(32, 28, 28), chw(16, 28, 28)])
            .unwrap();
        assert_eq!(out, chw(112, 28, 28));
        assert!(cat
            .infer_shape("cat", &[chw(64, 28, 28), chw(32, 14, 14)])
            .is_err());
    }

    #[test]
    fn flatten_produces_feature_vector() {
        let out = Operator::Flatten
            .infer_shape("f", &[chw(512, 7, 7)])
            .unwrap();
        assert_eq!(out, TensorShape::Features(512 * 49));
    }

    #[test]
    fn weight_counts_match_closed_forms() {
        let conv = Operator::Conv2d {
            in_channels: 64,
            out_channels: 128,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        assert_eq!(conv.weight_count(), 128 * 64 * 9);
        let fc = Operator::Linear {
            in_features: 4096,
            out_features: 1000,
        };
        assert_eq!(fc.weight_count(), 4096 * 1000);
        assert_eq!(Operator::Relu.weight_count(), 0);
    }

    #[test]
    fn mac_count_uses_output_positions() {
        let conv = Operator::Conv2d {
            in_channels: 3,
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        let out = conv.infer_shape("c", &[chw(3, 224, 224)]).unwrap();
        assert_eq!(conv.mac_count(out), 64 * 224 * 224 * 3 * 9);
    }

    #[test]
    fn reuse_degree_is_spatial_positions_for_conv_only() {
        let conv = Operator::Conv2d {
            in_channels: 3,
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        let out = conv.infer_shape("c", &[chw(3, 224, 224)]).unwrap();
        assert_eq!(conv.reuse_degree(out), 224 * 224);
        let fc = Operator::Linear {
            in_features: 10,
            out_features: 10,
        };
        assert_eq!(fc.reuse_degree(TensorShape::Features(10)), 1);
    }

    #[test]
    fn grouped_convolution_divides_weights_and_macs() {
        let conv = Operator::Conv2d {
            in_channels: 96,
            out_channels: 256,
            kernel: 5,
            stride: 1,
            padding: 2,
            groups: 2,
        };
        assert_eq!(conv.weight_count(), 256 * 48 * 25);
        let out = conv.infer_shape("c", &[chw(96, 27, 27)]).unwrap();
        assert_eq!(conv.mac_count(out), 256 * 27 * 27 * 48 * 25);
    }
}
