//! AlexNet and VGG16 for ImageNet.

use super::builder::{conv_relu, fc_relu, maxpool};
use crate::graph::ComputationalGraph;
use crate::ops::Operator;
use crate::shape::TensorShape;

/// AlexNet (the grouped Caffe variant) for ImageNet.
///
/// Table 3 reports 60.6 M weights and 1.4 G operations.
pub fn alexnet() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("AlexNet");
    let input = g.add_input("input", TensorShape::chw(3, 227, 227));

    let c1 = conv_relu(&mut g, "conv1", input, 3, 96, 11, 4, 0, 1);
    let n1 = g.add_node("norm1", Operator::LocalResponseNorm, vec![c1]);
    let p1 = maxpool(&mut g, "pool1", n1, 3, 2);

    let c2 = conv_relu(&mut g, "conv2", p1, 96, 256, 5, 1, 2, 2);
    let n2 = g.add_node("norm2", Operator::LocalResponseNorm, vec![c2]);
    let p2 = maxpool(&mut g, "pool2", n2, 3, 2);

    let c3 = conv_relu(&mut g, "conv3", p2, 256, 384, 3, 1, 1, 1);
    let c4 = conv_relu(&mut g, "conv4", c3, 384, 384, 3, 1, 1, 2);
    let c5 = conv_relu(&mut g, "conv5", c4, 384, 256, 3, 1, 1, 2);
    let p5 = maxpool(&mut g, "pool5", c5, 3, 2);

    let flat = g.add_node("flatten", Operator::Flatten, vec![p5]);
    let f6 = fc_relu(&mut g, "fc6", flat, 256 * 6 * 6, 4096);
    let d6 = g.add_node("drop6", Operator::Dropout, vec![f6]);
    let f7 = fc_relu(&mut g, "fc7", d6, 4096, 4096);
    let d7 = g.add_node("drop7", Operator::Dropout, vec![f7]);
    let f8 = g.add_node(
        "fc8",
        Operator::Linear {
            in_features: 4096,
            out_features: 1000,
        },
        vec![d7],
    );
    g.add_node("softmax", Operator::Softmax, vec![f8]);
    g
}

/// VGG16 (configuration D) for ImageNet.
///
/// Table 3 reports 138.3 M weights and 30.9 G operations; this is also the
/// network used by every performance figure of the paper.
pub fn vgg16() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("VGG16");
    let input = g.add_input("input", TensorShape::chw(3, 224, 224));

    // (block, channels, convs-per-block) for configuration D.
    let blocks: [(usize, usize, usize); 5] = [
        (1, 64, 2),
        (2, 128, 2),
        (3, 256, 3),
        (4, 512, 3),
        (5, 512, 3),
    ];
    let mut prev = input;
    let mut in_channels = 3;
    for (block, channels, convs) in blocks {
        for i in 1..=convs {
            prev = conv_relu(
                &mut g,
                &format!("conv{block}_{i}"),
                prev,
                in_channels,
                channels,
                3,
                1,
                1,
                1,
            );
            in_channels = channels;
        }
        prev = maxpool(&mut g, &format!("pool{block}"), prev, 2, 2);
    }

    let flat = g.add_node("flatten", Operator::Flatten, vec![prev]);
    let f6 = fc_relu(&mut g, "fc6", flat, 512 * 7 * 7, 4096);
    let f7 = fc_relu(&mut g, "fc7", f6, 4096, 4096);
    let f8 = g.add_node(
        "fc8",
        Operator::Linear {
            in_features: 4096,
            out_features: 1000,
        },
        vec![f7],
    );
    g.add_node("softmax", Operator::Softmax, vec![f8]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_weight_count_matches_table3() {
        let stats = alexnet().statistics();
        let w = stats.total_weights as f64;
        assert!((w - 60.6e6).abs() / 60.6e6 < 0.02, "weights = {w}");
    }

    #[test]
    fn alexnet_op_count_matches_table3() {
        let stats = alexnet().statistics();
        let o = stats.total_ops as f64;
        assert!((o - 1.4e9).abs() / 1.4e9 < 0.06, "ops = {o}");
    }

    #[test]
    fn alexnet_fc_layers_dominate_storage() {
        let stats = alexnet().statistics();
        assert!(stats.weight_share_of("fc") > 0.9);
    }

    #[test]
    fn vgg16_weight_count_matches_table3() {
        let stats = vgg16().statistics();
        let w = stats.total_weights as f64;
        assert!((w - 138.3e6).abs() / 138.3e6 < 0.01, "weights = {w}");
    }

    #[test]
    fn vgg16_op_count_matches_table3() {
        let stats = vgg16().statistics();
        let o = stats.total_ops as f64;
        assert!((o - 30.9e9).abs() / 30.9e9 < 0.02, "ops = {o}");
    }

    #[test]
    fn vgg16_has_13_convs_and_3_fcs() {
        let g = vgg16();
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Operator::Conv2d { .. }))
            .count();
        let fcs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Operator::Linear { .. }))
            .count();
        assert_eq!(convs, 13);
        assert_eq!(fcs, 3);
    }

    #[test]
    fn vgg16_final_feature_map_is_7x7x512() {
        let g = vgg16();
        let shapes = g.infer_shapes().unwrap();
        let pool5 = g
            .nodes()
            .iter()
            .find(|n| n.name == "pool5")
            .expect("pool5 exists");
        assert_eq!(shapes[&pool5.id], TensorShape::chw(512, 7, 7));
    }

    #[test]
    fn vgg16_max_reuse_degree_is_first_conv_spatial_size() {
        let stats = vgg16().statistics();
        assert_eq!(stats.max_reuse_degree(), 224 * 224);
    }
}
