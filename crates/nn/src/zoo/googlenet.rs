//! GoogLeNet (Inception v1) for ImageNet.

use super::builder::{conv_relu, maxpool};
use crate::graph::{ComputationalGraph, NodeId};
use crate::ops::Operator;
use crate::shape::TensorShape;

/// The per-branch channel configuration of one inception module:
/// (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool projection).
struct InceptionCfg(usize, usize, usize, usize, usize, usize);

fn inception(
    g: &mut ComputationalGraph,
    name: &str,
    input: NodeId,
    in_channels: usize,
    cfg: InceptionCfg,
) -> (NodeId, usize) {
    let InceptionCfg(c1, r3, c3, r5, c5, pp) = cfg;
    // Branch 1: 1x1 convolution.
    let b1 = conv_relu(
        g,
        &format!("{name}_1x1"),
        input,
        in_channels,
        c1,
        1,
        1,
        0,
        1,
    );
    // Branch 2: 1x1 reduce then 3x3.
    let b2r = conv_relu(
        g,
        &format!("{name}_3x3r"),
        input,
        in_channels,
        r3,
        1,
        1,
        0,
        1,
    );
    let b2 = conv_relu(g, &format!("{name}_3x3"), b2r, r3, c3, 3, 1, 1, 1);
    // Branch 3: 1x1 reduce then 5x5.
    let b3r = conv_relu(
        g,
        &format!("{name}_5x5r"),
        input,
        in_channels,
        r5,
        1,
        1,
        0,
        1,
    );
    let b3 = conv_relu(g, &format!("{name}_5x5"), b3r, r5, c5, 5, 1, 2, 1);
    // Branch 4: 3x3 max pool then 1x1 projection.
    let b4p = g.add_node(
        format!("{name}_pool"),
        Operator::MaxPool2d {
            kernel: 3,
            stride: 1,
        },
        vec![input],
    );
    // The stride-1 3x3 pool shrinks the map by 2 pixels without padding; pad
    // is not modelled by the pool operator, so project from the pooled map
    // using a 1x1 conv applied to the same channel count.
    let b4 = conv_relu(g, &format!("{name}_proj"), b4p, in_channels, pp, 1, 1, 1, 1);
    let out = g.add_node(
        format!("{name}_concat"),
        Operator::Concat,
        vec![b1, b2, b3, b4],
    );
    (out, c1 + c3 + c5 + pp)
}

/// GoogLeNet for ImageNet. Table 3 reports 7.0 M weights and 3.2 G operations.
pub fn googlenet() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("GoogLeNet");
    let input = g.add_input("input", TensorShape::chw(3, 224, 224));

    let c1 = conv_relu(&mut g, "conv1", input, 3, 64, 7, 2, 3, 1);
    let p1 = maxpool(&mut g, "pool1", c1, 3, 2);
    let n1 = g.add_node("norm1", Operator::LocalResponseNorm, vec![p1]);

    let c2r = conv_relu(&mut g, "conv2_reduce", n1, 64, 64, 1, 1, 0, 1);
    let c2 = conv_relu(&mut g, "conv2", c2r, 64, 192, 3, 1, 1, 1);
    let n2 = g.add_node("norm2", Operator::LocalResponseNorm, vec![c2]);
    let p2 = maxpool(&mut g, "pool2", n2, 3, 2);

    let (i3a, c3a) = inception(
        &mut g,
        "inception_3a",
        p2,
        192,
        InceptionCfg(64, 96, 128, 16, 32, 32),
    );
    let (i3b, c3b) = inception(
        &mut g,
        "inception_3b",
        i3a,
        c3a,
        InceptionCfg(128, 128, 192, 32, 96, 64),
    );
    let p3 = maxpool(&mut g, "pool3", i3b, 3, 2);

    let (i4a, c4a) = inception(
        &mut g,
        "inception_4a",
        p3,
        c3b,
        InceptionCfg(192, 96, 208, 16, 48, 64),
    );
    let (i4b, c4b) = inception(
        &mut g,
        "inception_4b",
        i4a,
        c4a,
        InceptionCfg(160, 112, 224, 24, 64, 64),
    );
    let (i4c, c4c) = inception(
        &mut g,
        "inception_4c",
        i4b,
        c4b,
        InceptionCfg(128, 128, 256, 24, 64, 64),
    );
    let (i4d, c4d) = inception(
        &mut g,
        "inception_4d",
        i4c,
        c4c,
        InceptionCfg(112, 144, 288, 32, 64, 64),
    );
    let (i4e, c4e) = inception(
        &mut g,
        "inception_4e",
        i4d,
        c4d,
        InceptionCfg(256, 160, 320, 32, 128, 128),
    );
    let p4 = maxpool(&mut g, "pool4", i4e, 3, 2);

    let (i5a, c5a) = inception(
        &mut g,
        "inception_5a",
        p4,
        c4e,
        InceptionCfg(256, 160, 320, 32, 128, 128),
    );
    let (i5b, c5b) = inception(
        &mut g,
        "inception_5b",
        i5a,
        c5a,
        InceptionCfg(384, 192, 384, 48, 128, 128),
    );

    let gap = g.add_node("global_pool", Operator::GlobalAvgPool, vec![i5b]);
    let drop = g.add_node("dropout", Operator::Dropout, vec![gap]);
    let fc = g.add_node(
        "fc",
        Operator::Linear {
            in_features: c5b,
            out_features: 1000,
        },
        vec![drop],
    );
    g.add_node("softmax", Operator::Softmax, vec![fc]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn googlenet_weight_count_matches_table3() {
        let stats = googlenet().statistics();
        let w = stats.total_weights as f64;
        assert!((w - 7.0e6).abs() / 7.0e6 < 0.05, "weights = {w}");
    }

    #[test]
    fn googlenet_op_count_matches_table3() {
        // The inference-only graph (no auxiliary classifiers) lands ~10%
        // below the published 3.2G figure; see EXPERIMENTS.md.
        let stats = googlenet().statistics();
        let o = stats.total_ops as f64;
        assert!((o - 3.2e9).abs() / 3.2e9 < 0.12, "ops = {o}");
    }

    #[test]
    fn googlenet_has_nine_inception_modules() {
        let g = googlenet();
        let concats = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Operator::Concat))
            .count();
        assert_eq!(concats, 9);
    }

    #[test]
    fn inception_output_channels_follow_the_published_table() {
        let g = googlenet();
        let shapes = g.infer_shapes().unwrap();
        let i3a = g
            .nodes()
            .iter()
            .find(|n| n.name == "inception_3a_concat")
            .unwrap();
        assert_eq!(shapes[&i3a.id].channels(), 256);
        let i5b = g
            .nodes()
            .iter()
            .find(|n| n.name == "inception_5b_concat")
            .unwrap();
        assert_eq!(shapes[&i5b.id].channels(), 1024);
    }

    #[test]
    fn classifier_consumes_1024_features() {
        let g = googlenet();
        let fc = g.nodes().iter().find(|n| n.name == "fc").unwrap();
        match fc.op {
            Operator::Linear { in_features, .. } => assert_eq!(in_features, 1024),
            _ => panic!("fc should be a linear layer"),
        }
    }
}
