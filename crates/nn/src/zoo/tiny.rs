//! Tiny benchmark variants for the differential golden-model suite.
//!
//! The paper's seven benchmarks validate the *performance* stack, but
//! numerically executing a compiled model needs networks small enough to run
//! through both the golden-model reference and the tile-level executor in a
//! test suite. Each variant here is deliberately shaped to exercise one
//! corner of the synthesizer's lowering rules:
//!
//! | model                | exercises                                        |
//! |----------------------|--------------------------------------------------|
//! | [`tiny_mlp`]         | single-tile dense layers, fused ReLU             |
//! | [`tiny_wide_mlp`]    | row/column tiling + partial-sum reduction tiles  |
//! | [`tiny_cnn`]         | convolution reuse, two-stage max-pool construct  |
//! | [`tiny_avgpool_cnn`] | average pooling, global average pooling          |
//! | [`tiny_resnet`]      | residual element-wise add with fused ReLU        |
//! | [`tiny_concat`]      | multi-segment input views through `Concat`       |

use super::builder::{conv_relu, fc_relu, maxpool};
use crate::graph::ComputationalGraph;
use crate::ops::Operator;
use crate::shape::TensorShape;

/// 16 → 32 → 8 → 4 MLP: every layer fits one crossbar tile.
pub fn tiny_mlp() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("Tiny-MLP");
    let input = g.add_input("input", TensorShape::Features(16));
    let h1 = fc_relu(&mut g, "fc1", input, 16, 32);
    let h2 = fc_relu(&mut g, "fc2", h1, 32, 8);
    g.add_node(
        "fc3",
        Operator::Linear {
            in_features: 8,
            out_features: 4,
        },
        vec![h2],
    );
    g
}

/// 600 → 300 → 10 MLP: the first layer needs three row tiles and two column
/// tiles, forcing partial-sum reduction tiles into the core-op graph.
pub fn tiny_wide_mlp() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("Tiny-WideMLP");
    let input = g.add_input("input", TensorShape::Features(600));
    let h1 = fc_relu(&mut g, "fc1", input, 600, 300);
    g.add_node(
        "fc2",
        Operator::Linear {
            in_features: 300,
            out_features: 10,
        },
        vec![h1],
    );
    g
}

/// A miniature LeNet: conv → maxpool → conv → fc on a 12×12 input.
pub fn tiny_cnn() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("Tiny-CNN");
    let input = g.add_input("input", TensorShape::chw(3, 12, 12));
    let c1 = conv_relu(&mut g, "conv1", input, 3, 8, 3, 1, 1, 1);
    let p1 = maxpool(&mut g, "pool1", c1, 2, 2);
    let c2 = conv_relu(&mut g, "conv2", p1, 8, 12, 3, 1, 0, 1);
    let flat = g.add_node("flatten", Operator::Flatten, vec![c2]);
    g.add_node(
        "fc",
        Operator::Linear {
            in_features: 12 * 4 * 4,
            out_features: 10,
        },
        vec![flat],
    );
    g
}

/// Conv → average pool → conv → global average pool → fc on an 8×8 input.
pub fn tiny_avgpool_cnn() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("Tiny-AvgPoolCNN");
    let input = g.add_input("input", TensorShape::chw(4, 8, 8));
    let c1 = conv_relu(&mut g, "conv1", input, 4, 8, 3, 1, 1, 1);
    let p1 = g.add_node(
        "avgpool",
        Operator::AvgPool2d {
            kernel: 2,
            stride: 2,
        },
        vec![c1],
    );
    let c2 = conv_relu(&mut g, "conv2", p1, 8, 8, 3, 1, 1, 1);
    let gap = g.add_node("gap", Operator::GlobalAvgPool, vec![c2]);
    g.add_node(
        "fc",
        Operator::Linear {
            in_features: 8,
            out_features: 5,
        },
        vec![gap],
    );
    g
}

/// One residual block: conv1 → conv2 + skip → relu → gap → fc.
pub fn tiny_resnet() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("Tiny-ResNet");
    let input = g.add_input("input", TensorShape::chw(4, 8, 8));
    let c1 = conv_relu(&mut g, "conv1", input, 4, 8, 3, 1, 1, 1);
    let c2 = g.add_node(
        "conv2",
        Operator::Conv2d {
            in_channels: 8,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        },
        vec![c1],
    );
    let add = g.add_node("res_add", Operator::Add, vec![c2, c1]);
    let relu = g.add_node("res_relu", Operator::Relu, vec![add]);
    let gap = g.add_node("gap", Operator::GlobalAvgPool, vec![relu]);
    g.add_node(
        "fc",
        Operator::Linear {
            in_features: 8,
            out_features: 4,
        },
        vec![gap],
    );
    g
}

/// Two convolutional branches concatenated channel-wise, then pooled and
/// classified — consumers downstream of the concat read multi-segment views.
pub fn tiny_concat() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("Tiny-Concat");
    let input = g.add_input("input", TensorShape::chw(2, 6, 6));
    let a = conv_relu(&mut g, "branch_a", input, 2, 4, 3, 1, 1, 1);
    let b = conv_relu(&mut g, "branch_b", input, 2, 6, 1, 1, 0, 1);
    let cat = g.add_node("concat", Operator::Concat, vec![a, b]);
    let pool = maxpool(&mut g, "pool", cat, 2, 2);
    let flat = g.add_node("flatten", Operator::Flatten, vec![pool]);
    g.add_node(
        "fc",
        Operator::Linear {
            in_features: 10 * 3 * 3,
            out_features: 6,
        },
        vec![flat],
    );
    g
}

/// All tiny differential-suite variants, in documentation order.
pub fn differential_suite() -> Vec<ComputationalGraph> {
    vec![
        tiny_mlp(),
        tiny_wide_mlp(),
        tiny_cnn(),
        tiny_avgpool_cnn(),
        tiny_resnet(),
        tiny_concat(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_at_least_five_well_formed_models() {
        let suite = differential_suite();
        assert!(suite.len() >= 5);
        for g in &suite {
            assert!(g.infer_shapes().is_ok(), "{} fails shape inference", g.name);
            assert_eq!(g.outputs().len(), 1, "{} must have one output", g.name);
        }
    }

    #[test]
    fn wide_mlp_exceeds_one_crossbar_row_tile() {
        let g = tiny_wide_mlp();
        let stats = g.statistics();
        assert_eq!(stats.total_weights, 600 * 300 + 300 * 10);
    }

    #[test]
    fn concat_output_channels_add_up() {
        let g = tiny_concat();
        let shapes = g.infer_shapes().unwrap();
        let cat = g.nodes().iter().find(|n| n.name == "concat").unwrap().id;
        assert_eq!(shapes[&cat], TensorShape::chw(10, 6, 6));
    }

    #[test]
    fn resnet_block_keeps_shape_through_the_skip() {
        let g = tiny_resnet();
        let shapes = g.infer_shapes().unwrap();
        let add = g.nodes().iter().find(|n| n.name == "res_add").unwrap().id;
        assert_eq!(shapes[&add], TensorShape::chw(8, 8, 8));
    }
}
