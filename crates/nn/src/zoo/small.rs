//! The small benchmark models: MLP-500-100, LeNet and the CIFAR-10 VGG17.

use super::builder::{conv_relu, fc_relu, maxpool};
use crate::graph::ComputationalGraph;
use crate::ops::Operator;
use crate::shape::TensorShape;

/// MLP-500-100 for MNIST: 784 → 500 → 100 → 10 with ReLU activations.
///
/// Table 3 reports 443.0 K weights and 886.0 K operations.
pub fn mlp_500_100() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("MLP-500-100");
    let input = g.add_input("input", TensorShape::Features(28 * 28));
    let h1 = fc_relu(&mut g, "fc1", input, 784, 500);
    let h2 = fc_relu(&mut g, "fc2", h1, 500, 100);
    let logits = g.add_node(
        "fc3",
        Operator::Linear {
            in_features: 100,
            out_features: 10,
        },
        vec![h2],
    );
    g.add_node("softmax", Operator::Softmax, vec![logits]);
    g
}

/// LeNet (the Caffe variant) for MNIST.
///
/// conv(20@5x5) → pool → conv(50@5x5) → pool → fc(500) → fc(10).
/// Table 3 reports 430.5 K weights and 4.6 M operations.
pub fn lenet() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("LeNet");
    let input = g.add_input("input", TensorShape::chw(1, 28, 28));
    let c1 = conv_relu(&mut g, "conv1", input, 1, 20, 5, 1, 0, 1);
    let p1 = maxpool(&mut g, "pool1", c1, 2, 2);
    let c2 = conv_relu(&mut g, "conv2", p1, 20, 50, 5, 1, 0, 1);
    let p2 = maxpool(&mut g, "pool2", c2, 2, 2);
    let flat = g.add_node("flatten", Operator::Flatten, vec![p2]);
    let f1 = fc_relu(&mut g, "fc1", flat, 50 * 4 * 4, 500);
    let logits = g.add_node(
        "fc2",
        Operator::Linear {
            in_features: 500,
            out_features: 10,
        },
        vec![f1],
    );
    g.add_node("softmax", Operator::Softmax, vec![logits]);
    g
}

/// A VGG-style 17-layer network for CIFAR-10.
///
/// Eleven 3x3 convolutions in four blocks (64-64-64 / 128-128 / 128-128-128 /
/// 128-128-128) with max pooling between blocks, followed by a small
/// classifier. Sized to reproduce the ~1.1 M weights and ~333 M operations of
/// Table 3.
pub fn cifar_vgg17() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("CIFAR-VGG17");
    let input = g.add_input("input", TensorShape::chw(3, 32, 32));

    // Block 1: 32x32, 64 channels.
    let c11 = conv_relu(&mut g, "conv1_1", input, 3, 64, 3, 1, 1, 1);
    let c12 = conv_relu(&mut g, "conv1_2", c11, 64, 64, 3, 1, 1, 1);
    let c13 = conv_relu(&mut g, "conv1_3", c12, 64, 64, 3, 1, 1, 1);
    let p1 = maxpool(&mut g, "pool1", c13, 2, 2);

    // Block 2: 16x16, 128 channels.
    let c21 = conv_relu(&mut g, "conv2_1", p1, 64, 128, 3, 1, 1, 1);
    let c22 = conv_relu(&mut g, "conv2_2", c21, 128, 128, 3, 1, 1, 1);
    let p2 = maxpool(&mut g, "pool2", c22, 2, 2);

    // Block 3: 8x8, 128 channels.
    let c31 = conv_relu(&mut g, "conv3_1", p2, 128, 128, 3, 1, 1, 1);
    let c32 = conv_relu(&mut g, "conv3_2", c31, 128, 128, 3, 1, 1, 1);
    let c33 = conv_relu(&mut g, "conv3_3", c32, 128, 128, 3, 1, 1, 1);
    let p3 = maxpool(&mut g, "pool3", c33, 2, 2);

    // Block 4: 4x4, 128 channels.
    let c41 = conv_relu(&mut g, "conv4_1", p3, 128, 128, 3, 1, 1, 1);
    let c42 = conv_relu(&mut g, "conv4_2", c41, 128, 128, 3, 1, 1, 1);
    let c43 = conv_relu(&mut g, "conv4_3", c42, 128, 128, 3, 1, 1, 1);
    let p4 = maxpool(&mut g, "pool4", c43, 2, 2);

    let flat = g.add_node("flatten", Operator::Flatten, vec![p4]);
    let logits = g.add_node(
        "fc",
        Operator::Linear {
            in_features: 128 * 2 * 2,
            out_features: 10,
        },
        vec![flat],
    );
    g.add_node("softmax", Operator::Softmax, vec![logits]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_weight_count_is_exact() {
        let stats = mlp_500_100().statistics();
        assert_eq!(stats.total_weights, 784 * 500 + 500 * 100 + 100 * 10);
        assert_eq!(stats.total_ops, 2 * stats.total_weights);
    }

    #[test]
    fn mlp_has_no_weight_reuse() {
        let stats = mlp_500_100().statistics();
        assert_eq!(stats.max_reuse_degree(), 1);
    }

    #[test]
    fn lenet_weight_count_matches_caffe_lenet() {
        let stats = lenet().statistics();
        assert_eq!(stats.total_weights, 500 + 25_000 + 400_000 + 5_000);
    }

    #[test]
    fn lenet_op_count_matches_table3() {
        let stats = lenet().statistics();
        let ops = stats.total_ops as f64;
        assert!((ops - 4.6e6).abs() / 4.6e6 < 0.05, "ops = {ops}");
    }

    #[test]
    fn lenet_shapes_follow_the_caffe_topology() {
        let g = lenet();
        let shapes = g.infer_shapes().unwrap();
        let outputs = g.outputs();
        assert_eq!(shapes[&outputs[0]], TensorShape::Features(10));
    }

    #[test]
    fn cifar_vgg17_is_close_to_published_size() {
        let stats = cifar_vgg17().statistics();
        let w = stats.total_weights as f64;
        let o = stats.total_ops as f64;
        assert!((w - 1.1e6).abs() / 1.1e6 < 0.10, "weights = {w}");
        assert!((o - 333.4e6).abs() / 333.4e6 < 0.10, "ops = {o}");
    }

    #[test]
    fn cifar_vgg17_has_seventeen_named_layers() {
        // 11 convolutions + 4 poolings + 1 fully connected + softmax = 17.
        let g = cifar_vgg17();
        let layered = g
            .nodes()
            .iter()
            .filter(|n| {
                matches!(
                    n.op,
                    Operator::Conv2d { .. }
                        | Operator::Linear { .. }
                        | Operator::MaxPool2d { .. }
                        | Operator::Softmax
                )
            })
            .count();
        assert_eq!(layered, 17);
    }

    #[test]
    fn conv_layers_dominate_cifar_vgg17_compute() {
        let stats = cifar_vgg17().statistics();
        assert!(stats.ops_share_of("conv") > 0.99);
    }
}
