//! The benchmark model zoo.
//!
//! Seven networks, matching the paper's evaluation (Table 3):
//! MLP-500-100 and LeNet for MNIST, a VGG17-style network for CIFAR-10, and
//! AlexNet, VGG16, GoogLeNet and ResNet-152 for ImageNet. The constructors
//! build full computational graphs layer by layer; the graphs' derived
//! statistics reproduce the published weight and operation counts.

mod classic;
mod googlenet;
mod resnet;
mod small;
mod tiny;

pub use classic::{alexnet, vgg16};
pub use googlenet::googlenet;
pub use resnet::resnet152;
pub use small::{cifar_vgg17, lenet, mlp_500_100};
pub use tiny::{
    differential_suite, tiny_avgpool_cnn, tiny_cnn, tiny_concat, tiny_mlp, tiny_resnet,
    tiny_wide_mlp,
};

use crate::graph::ComputationalGraph;
use serde::{Deserialize, Serialize};

/// Identifier of a benchmark model, in the order the paper reports them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Two-hidden-layer MLP (500, 100) for MNIST.
    Mlp500x100,
    /// LeNet (Caffe variant) for MNIST.
    LeNet,
    /// VGG17-style CNN for CIFAR-10.
    CifarVgg17,
    /// AlexNet for ImageNet.
    AlexNet,
    /// VGG16 for ImageNet.
    Vgg16,
    /// GoogLeNet (Inception v1) for ImageNet.
    GoogLeNet,
    /// ResNet-152 for ImageNet.
    ResNet152,
}

impl Benchmark {
    /// All benchmarks in the paper's reporting order.
    pub fn all() -> [Benchmark; 7] {
        [
            Benchmark::Mlp500x100,
            Benchmark::LeNet,
            Benchmark::CifarVgg17,
            Benchmark::AlexNet,
            Benchmark::Vgg16,
            Benchmark::GoogLeNet,
            Benchmark::ResNet152,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Mlp500x100 => "MLP-500-100",
            Benchmark::LeNet => "LeNet",
            Benchmark::CifarVgg17 => "CIFAR-VGG17",
            Benchmark::AlexNet => "AlexNet",
            Benchmark::Vgg16 => "VGG16",
            Benchmark::GoogLeNet => "GoogLeNet",
            Benchmark::ResNet152 => "ResNet152",
        }
    }

    /// The dataset the model targets.
    pub fn dataset(&self) -> &'static str {
        match self {
            Benchmark::Mlp500x100 | Benchmark::LeNet => "MNIST",
            Benchmark::CifarVgg17 => "CIFAR-10",
            _ => "ImageNet",
        }
    }

    /// Build the computational graph for this benchmark.
    pub fn build(&self) -> ComputationalGraph {
        match self {
            Benchmark::Mlp500x100 => mlp_500_100(),
            Benchmark::LeNet => lenet(),
            Benchmark::CifarVgg17 => cifar_vgg17(),
            Benchmark::AlexNet => alexnet(),
            Benchmark::Vgg16 => vgg16(),
            Benchmark::GoogLeNet => googlenet(),
            Benchmark::ResNet152 => resnet152(),
        }
    }

    /// Published weight count from Table 3 (for regression tests/reports).
    pub fn published_weights(&self) -> f64 {
        match self {
            Benchmark::Mlp500x100 => 443.0e3,
            Benchmark::LeNet => 430.5e3,
            Benchmark::CifarVgg17 => 1.1e6,
            Benchmark::AlexNet => 60.6e6,
            Benchmark::Vgg16 => 138.3e6,
            Benchmark::GoogLeNet => 7.0e6,
            Benchmark::ResNet152 => 57.7e6,
        }
    }

    /// Published operation count from Table 3.
    pub fn published_ops(&self) -> f64 {
        match self {
            Benchmark::Mlp500x100 => 886.0e3,
            Benchmark::LeNet => 4.6e6,
            Benchmark::CifarVgg17 => 333.4e6,
            Benchmark::AlexNet => 1.4e9,
            Benchmark::Vgg16 => 30.9e9,
            Benchmark::GoogLeNet => 3.2e9,
            Benchmark::ResNet152 => 22.6e9,
        }
    }
}

pub(crate) mod builder {
    //! Small helpers shared by the model constructors.

    use crate::graph::{ComputationalGraph, NodeId};
    use crate::ops::Operator;

    /// Add `conv -> relu` and return the relu's id.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_relu(
        g: &mut ComputationalGraph,
        name: &str,
        input: NodeId,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> NodeId {
        let conv = g.add_node(
            name,
            Operator::Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
                groups,
            },
            vec![input],
        );
        g.add_node(format!("{name}_relu"), Operator::Relu, vec![conv])
    }

    /// Add a bare convolution (no activation) and return its id.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        g: &mut ComputationalGraph,
        name: &str,
        input: NodeId,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> NodeId {
        g.add_node(
            name,
            Operator::Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
                groups: 1,
            },
            vec![input],
        )
    }

    /// Add `linear -> relu` and return the relu's id.
    pub fn fc_relu(
        g: &mut ComputationalGraph,
        name: &str,
        input: NodeId,
        in_features: usize,
        out_features: usize,
    ) -> NodeId {
        let fc = g.add_node(
            name,
            Operator::Linear {
                in_features,
                out_features,
            },
            vec![input],
        );
        g.add_node(format!("{name}_relu"), Operator::Relu, vec![fc])
    }

    /// Add a max pooling node.
    pub fn maxpool(
        g: &mut ComputationalGraph,
        name: &str,
        input: NodeId,
        kernel: usize,
        stride: usize,
    ) -> NodeId {
        g.add_node(name, Operator::MaxPool2d { kernel, stride }, vec![input])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_seven_models_in_paper_order() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 7);
        assert_eq!(all[0].name(), "MLP-500-100");
        assert_eq!(all[6].name(), "ResNet152");
    }

    #[test]
    fn datasets_match_table3() {
        assert_eq!(Benchmark::Mlp500x100.dataset(), "MNIST");
        assert_eq!(Benchmark::CifarVgg17.dataset(), "CIFAR-10");
        assert_eq!(Benchmark::Vgg16.dataset(), "ImageNet");
    }

    #[test]
    fn every_benchmark_builds_and_matches_published_counts() {
        for b in Benchmark::all() {
            let stats = b.build().statistics();
            let w_err =
                (stats.total_weights as f64 - b.published_weights()).abs() / b.published_weights();
            let o_err = (stats.total_ops as f64 - b.published_ops()).abs() / b.published_ops();
            assert!(
                w_err < 0.10,
                "{}: weight count {} differs from published {} by {:.1}%",
                b.name(),
                stats.total_weights,
                b.published_weights(),
                w_err * 100.0
            );
            // GoogLeNet's published 3.2G ops includes overhead (auxiliary
            // classifiers / LRN accounting) that inference-only graphs do not
            // reproduce exactly; allow a slightly wider band there.
            let ops_tolerance = if b == Benchmark::GoogLeNet {
                0.12
            } else {
                0.10
            };
            assert!(
                o_err < ops_tolerance,
                "{}: op count {} differs from published {} by {:.1}%",
                b.name(),
                stats.total_ops,
                b.published_ops(),
                o_err * 100.0
            );
        }
    }

    #[test]
    fn vgg16_reproduces_the_motivation_imbalance() {
        let stats = vgg16().statistics();
        // §3: the first two convolutional layers hold ~0.028% of the weights
        // but consume ~12.5% of the computation; the fully connected layers
        // hold ~89.3% of the weights but only ~0.8% of the computation.
        let (w_front, o_front) = stats.front_layer_imbalance(2);
        assert!(w_front < 0.001, "front weight share {w_front}");
        assert!((o_front - 0.125).abs() < 0.02, "front ops share {o_front}");
        assert!((stats.weight_share_of("fc") - 0.893).abs() < 0.01);
        assert!(stats.ops_share_of("fc") < 0.01);
    }
}
