//! ResNet-152 for ImageNet.

use super::builder::{conv, maxpool};
use crate::graph::{ComputationalGraph, NodeId};
use crate::ops::Operator;
use crate::shape::TensorShape;

/// One bottleneck residual block (1x1 reduce, 3x3, 1x1 expand) with an
/// optional projection shortcut. Returns the output node id and channels.
fn bottleneck(
    g: &mut ComputationalGraph,
    name: &str,
    input: NodeId,
    in_channels: usize,
    mid_channels: usize,
    stride: usize,
) -> (NodeId, usize) {
    let out_channels = mid_channels * 4;
    let c1 = conv(
        g,
        &format!("{name}_conv1"),
        input,
        in_channels,
        mid_channels,
        1,
        1,
        0,
    );
    let r1 = g.add_node(format!("{name}_relu1"), Operator::Relu, vec![c1]);
    let c2 = g.add_node(
        format!("{name}_conv2"),
        Operator::Conv2d {
            in_channels: mid_channels,
            out_channels: mid_channels,
            kernel: 3,
            stride,
            padding: 1,
            groups: 1,
        },
        vec![r1],
    );
    let r2 = g.add_node(format!("{name}_relu2"), Operator::Relu, vec![c2]);
    let c3 = conv(
        g,
        &format!("{name}_conv3"),
        r2,
        mid_channels,
        out_channels,
        1,
        1,
        0,
    );

    let shortcut = if in_channels != out_channels || stride != 1 {
        g.add_node(
            format!("{name}_downsample"),
            Operator::Conv2d {
                in_channels,
                out_channels,
                kernel: 1,
                stride,
                padding: 0,
                groups: 1,
            },
            vec![input],
        )
    } else {
        input
    };
    let add = g.add_node(format!("{name}_add"), Operator::Add, vec![c3, shortcut]);
    let out = g.add_node(format!("{name}_relu"), Operator::Relu, vec![add]);
    (out, out_channels)
}

/// ResNet-152: bottleneck stages of 3 / 8 / 36 / 3 blocks.
///
/// Table 3 reports 57.7 M weights and 22.6 G operations.
pub fn resnet152() -> ComputationalGraph {
    let mut g = ComputationalGraph::new("ResNet152");
    let input = g.add_input("input", TensorShape::chw(3, 224, 224));

    let c1 = conv(&mut g, "conv1", input, 3, 64, 7, 2, 3);
    let r1 = g.add_node("conv1_relu", Operator::Relu, vec![c1]);
    let p1 = maxpool(&mut g, "pool1", r1, 3, 2);

    let stages: [(usize, usize, &str); 4] = [
        (3, 64, "layer1"),
        (8, 128, "layer2"),
        (36, 256, "layer3"),
        (3, 512, "layer4"),
    ];

    let mut prev = p1;
    let mut channels = 64;
    for (blocks, mid, stage_name) in stages {
        for b in 0..blocks {
            // The first block of stages 2-4 downsamples spatially.
            let stride = if b == 0 && mid != 64 { 2 } else { 1 };
            let (out, out_c) = bottleneck(
                &mut g,
                &format!("{stage_name}_block{b}"),
                prev,
                channels,
                mid,
                stride,
            );
            prev = out;
            channels = out_c;
        }
    }

    let gap = g.add_node("global_pool", Operator::GlobalAvgPool, vec![prev]);
    let fc = g.add_node(
        "fc",
        Operator::Linear {
            in_features: channels,
            out_features: 1000,
        },
        vec![gap],
    );
    g.add_node("softmax", Operator::Softmax, vec![fc]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet152_weight_count_matches_table3() {
        let stats = resnet152().statistics();
        let w = stats.total_weights as f64;
        assert!((w - 57.7e6).abs() / 57.7e6 < 0.06, "weights = {w}");
    }

    #[test]
    fn resnet152_op_count_matches_table3() {
        let stats = resnet152().statistics();
        let o = stats.total_ops as f64;
        assert!((o - 22.6e9).abs() / 22.6e9 < 0.05, "ops = {o}");
    }

    #[test]
    fn resnet152_has_fifty_bottleneck_blocks() {
        let g = resnet152();
        let adds = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Operator::Add))
            .count();
        assert_eq!(adds, 3 + 8 + 36 + 3);
    }

    #[test]
    fn final_feature_map_is_2048_channels_at_7x7() {
        let g = resnet152();
        let shapes = g.infer_shapes().unwrap();
        let last_relu = g
            .nodes()
            .iter()
            .rfind(|n| n.name.starts_with("layer4_block2"))
            .unwrap();
        assert_eq!(shapes[&last_relu.id], TensorShape::chw(2048, 7, 7));
    }

    #[test]
    fn residual_shortcuts_type_check() {
        // Shape inference succeeding on the whole graph means every Add node
        // received operands of identical shape (including downsampled ones).
        assert!(resnet152().infer_shapes().is_ok());
    }
}
