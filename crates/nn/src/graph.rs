//! The computational-graph IR.
//!
//! A [`ComputationalGraph`] is a DAG of [`Node`]s, each holding an
//! [`Operator`] and the ids of its input nodes — the same abstraction used by
//! the deep-learning frameworks the paper targets (TensorFlow/PyTorch/MXNet).
//! The graph offers shape inference, topological ordering and the workload
//! statistics that drive the rest of the FPSA stack.

use crate::error::NnError;
use crate::ops::Operator;
use crate::shape::TensorShape;
use crate::stats::{LayerStats, WorkloadStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a node within one graph.
pub type NodeId = usize;

/// One operation instance in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Stable identifier (index into the graph's node list).
    pub id: NodeId,
    /// Human readable name ("conv1_1", "fc6", ...).
    pub name: String,
    /// The operator this node applies.
    pub op: Operator,
    /// Ids of the nodes whose outputs feed this node.
    pub inputs: Vec<NodeId>,
}

/// A directed acyclic graph of tensor operations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ComputationalGraph {
    /// Model name (e.g. "VGG16").
    pub name: String,
    nodes: Vec<Node>,
}

impl ComputationalGraph {
    /// Create an empty graph with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        ComputationalGraph {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Append a node and return its id.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        op: Operator,
        inputs: Vec<NodeId>,
    ) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            name: name.into(),
            op,
            inputs,
        });
        id
    }

    /// Convenience: add an input node.
    pub fn add_input(&mut self, name: impl Into<String>, shape: TensorShape) -> NodeId {
        self.add_node(name, Operator::Input { shape }, vec![])
    }

    /// All nodes in insertion order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Element count of the graph's first `Input` tensor — the feature
    /// width a request vector must have — or 0 for input-less graphs.
    pub fn input_elements(&self) -> usize {
        self.nodes
            .iter()
            .find_map(|node| match node.op {
                Operator::Input { shape } => Some(shape.elements()),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Look up a node by id.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownNode`] if the id is out of range.
    pub fn node(&self, id: NodeId) -> Result<&Node, NnError> {
        self.nodes.get(id).ok_or(NnError::UnknownNode { id })
    }

    /// Ids of nodes that consume the output of `id`.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// Ids of output nodes (nodes nobody consumes).
    pub fn outputs(&self) -> Vec<NodeId> {
        let mut consumed = vec![false; self.nodes.len()];
        for n in &self.nodes {
            for &i in &n.inputs {
                if let Some(slot) = consumed.get_mut(i) {
                    *slot = true;
                }
            }
        }
        (0..self.nodes.len()).filter(|&i| !consumed[i]).collect()
    }

    /// Topological order of the node ids.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CyclicGraph`] if the graph has a cycle and
    /// [`NnError::UnknownNode`] if an edge references a missing node.
    pub fn topological_order(&self) -> Result<Vec<NodeId>, NnError> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for node in &self.nodes {
            for &input in &node.inputs {
                if input >= n {
                    return Err(NnError::UnknownNode { id: input });
                }
                indegree[node.id] += 1;
            }
        }
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for consumer in self.consumers(id) {
                indegree[consumer] -= 1;
                if indegree[consumer] == 0 {
                    queue.push(consumer);
                }
            }
        }
        if order.len() != n {
            return Err(NnError::CyclicGraph);
        }
        Ok(order)
    }

    /// Infer the output shape of every node.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference and graph-structure errors.
    pub fn infer_shapes(&self) -> Result<HashMap<NodeId, TensorShape>, NnError> {
        let order = self.topological_order()?;
        let mut shapes: HashMap<NodeId, TensorShape> = HashMap::with_capacity(self.nodes.len());
        for id in order {
            let node = self.node(id)?;
            let input_shapes: Vec<TensorShape> = node
                .inputs
                .iter()
                .map(|i| {
                    shapes
                        .get(i)
                        .copied()
                        .ok_or(NnError::UnknownNode { id: *i })
                })
                .collect::<Result<_, _>>()?;
            let out = node.op.infer_shape(&node.name, &input_shapes)?;
            shapes.insert(id, out);
        }
        Ok(shapes)
    }

    /// Compute per-layer and aggregate workload statistics.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference errors.
    pub fn try_statistics(&self) -> Result<WorkloadStats, NnError> {
        let shapes = self.infer_shapes()?;
        let mut layers = Vec::new();
        for node in &self.nodes {
            let output = shapes[&node.id];
            let weights = node.op.weight_count() as u64;
            let macs = node.op.mac_count(output);
            let reuse = node.op.reuse_degree(output);
            if weights > 0 || macs > 0 {
                layers.push(LayerStats {
                    node_id: node.id,
                    name: node.name.clone(),
                    mnemonic: node.op.mnemonic().to_string(),
                    weights,
                    macs,
                    ops: 2 * macs,
                    reuse_degree: reuse,
                    output_elements: output.elements() as u64,
                });
            }
        }
        Ok(WorkloadStats::from_layers(self.name.clone(), layers))
    }

    /// Compute workload statistics, panicking on malformed graphs.
    ///
    /// The model-zoo graphs are known to be well formed, so this is the
    /// convenient entry point for callers that construct graphs from
    /// [`crate::zoo`].
    ///
    /// # Panics
    ///
    /// Panics if shape inference fails.
    pub fn statistics(&self) -> WorkloadStats {
        self.try_statistics()
            .expect("graph statistics require a well-formed graph")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mlp() -> ComputationalGraph {
        let mut g = ComputationalGraph::new("tiny");
        let input = g.add_input("input", TensorShape::Features(784));
        let fc1 = g.add_node(
            "fc1",
            Operator::Linear {
                in_features: 784,
                out_features: 100,
            },
            vec![input],
        );
        let relu = g.add_node("relu1", Operator::Relu, vec![fc1]);
        g.add_node(
            "fc2",
            Operator::Linear {
                in_features: 100,
                out_features: 10,
            },
            vec![relu],
        );
        g
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let g = small_mlp();
        let order = g.topological_order().unwrap();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for node in g.nodes() {
            for &input in &node.inputs {
                assert!(pos[&input] < pos[&node.id]);
            }
        }
    }

    #[test]
    fn cyclic_graph_is_rejected() {
        let mut g = ComputationalGraph::new("cycle");
        let a = g.add_node("a", Operator::Relu, vec![1]);
        let _b = g.add_node("b", Operator::Relu, vec![a]);
        assert_eq!(g.topological_order(), Err(NnError::CyclicGraph));
    }

    #[test]
    fn unknown_input_is_rejected() {
        let mut g = ComputationalGraph::new("bad");
        g.add_node("a", Operator::Relu, vec![42]);
        assert!(matches!(
            g.topological_order(),
            Err(NnError::UnknownNode { id: 42 })
        ));
    }

    #[test]
    fn shapes_flow_through_the_graph() {
        let g = small_mlp();
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(shapes[&3], TensorShape::Features(10));
    }

    #[test]
    fn outputs_are_unconsumed_nodes() {
        let g = small_mlp();
        assert_eq!(g.outputs(), vec![3]);
    }

    #[test]
    fn statistics_count_weights_and_ops() {
        let g = small_mlp();
        let stats = g.statistics();
        assert_eq!(stats.total_weights, 784 * 100 + 100 * 10);
        assert_eq!(stats.total_ops, 2 * (784 * 100 + 100 * 10) as u64);
        assert_eq!(stats.layers.len(), 2);
    }

    #[test]
    fn consumers_are_reported() {
        let g = small_mlp();
        assert_eq!(g.consumers(1), vec![2]);
        assert!(g.consumers(3).is_empty());
    }

    #[test]
    fn node_lookup_errors_for_bad_id() {
        let g = small_mlp();
        assert!(g.node(99).is_err());
        assert_eq!(g.node(0).unwrap().name, "input");
    }

    #[test]
    fn empty_graph_behaves() {
        let g = ComputationalGraph::new("empty");
        assert!(g.is_empty());
        assert!(g.topological_order().unwrap().is_empty());
        assert!(g.outputs().is_empty());
    }
}
