//! Error type for the NN front end.

use std::error::Error;
use std::fmt;

/// Errors produced while building or analysing computational graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A node referenced an input node id that does not exist.
    UnknownNode {
        /// The missing node id.
        id: usize,
    },
    /// Shapes of connected nodes are incompatible.
    ShapeMismatch {
        /// Name of the node where the mismatch was detected.
        node: String,
        /// Explanation of the mismatch.
        reason: String,
    },
    /// The graph contains a cycle and cannot be scheduled.
    CyclicGraph,
    /// An operator was configured with invalid parameters.
    InvalidOperator {
        /// Name of the node.
        node: String,
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::UnknownNode { id } => write!(f, "unknown node id {id}"),
            NnError::ShapeMismatch { node, reason } => {
                write!(f, "shape mismatch at node `{node}`: {reason}")
            }
            NnError::CyclicGraph => write!(f, "computational graph contains a cycle"),
            NnError::InvalidOperator { node, reason } => {
                write!(f, "invalid operator at node `{node}`: {reason}")
            }
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_useful_messages() {
        assert!(NnError::UnknownNode { id: 3 }.to_string().contains('3'));
        assert!(NnError::CyclicGraph.to_string().contains("cycle"));
        let e = NnError::ShapeMismatch {
            node: "conv1".into(),
            reason: "expected CHW input".into(),
        };
        assert!(e.to_string().contains("conv1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<NnError>();
    }
}
