//! Synthetic datasets.
//!
//! The performance experiments of the paper only need layer shapes, but the
//! Figure 9 device-variation experiment needs a network with a *real*
//! accuracy to degrade. Since ImageNet training is far outside the scope of a
//! simulator repository, we substitute small synthetic classification
//! problems (documented in DESIGN.md): Gaussian blobs and concentric rings,
//! which a small MLP learns to high accuracy and which expose the same
//! relative degradation between the splice and add weight representations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A labelled classification dataset with dense feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature vectors, one per sample.
    pub samples: Vec<Vec<f32>>,
    /// Class labels, one per sample.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of features per sample.
    pub fn features(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }

    /// Split into a training set and a test set; roughly `train_fraction` of
    /// the samples go to the former. The assignment is a deterministic hash
    /// of the sample index, so it is reproducible and does not systematically
    /// favour any class regardless of how the samples are ordered.
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        let threshold = (train_fraction.clamp(0.0, 1.0) * 1000.0) as usize;
        let mut train = Dataset {
            samples: vec![],
            labels: vec![],
            classes: self.classes,
        };
        let mut test = Dataset {
            samples: vec![],
            labels: vec![],
            classes: self.classes,
        };
        for (i, (x, y)) in self.samples.iter().zip(&self.labels).enumerate() {
            // Multiplicative hash spread over [0, 1000).
            let bucket = (i.wrapping_mul(2_654_435_761)) % 1000;
            if bucket < threshold {
                train.samples.push(x.clone());
                train.labels.push(*y);
            } else {
                test.samples.push(x.clone());
                test.labels.push(*y);
            }
        }
        (train, test)
    }

    /// Generate isotropic Gaussian blobs, one cluster per class, in a
    /// `features`-dimensional cube.
    pub fn gaussian_blobs(
        classes: usize,
        samples_per_class: usize,
        features: usize,
        noise: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f64>> = (0..classes)
            .map(|_| (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let mut samples = Vec::with_capacity(classes * samples_per_class);
        let mut labels = Vec::with_capacity(classes * samples_per_class);
        for (label, center) in centers.iter().enumerate() {
            for _ in 0..samples_per_class {
                let point: Vec<f32> = center
                    .iter()
                    .map(|c| (c + rng.gen_range(-noise..noise)) as f32)
                    .collect();
                samples.push(point);
                labels.push(label);
            }
        }
        // Interleave the classes so that sequential splits stay balanced.
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.sort_by_key(|&i| (i % samples_per_class, i / samples_per_class));
        Dataset {
            samples: order.iter().map(|&i| samples[i].clone()).collect(),
            labels: order.iter().map(|&i| labels[i]).collect(),
            classes,
        }
    }

    /// Generate concentric rings in 2-D, a mildly non-linear problem that
    /// needs the hidden layer to be solved.
    pub fn concentric_rings(classes: usize, samples_per_class: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for i in 0..samples_per_class {
            for class in 0..classes {
                let radius =
                    0.25 + class as f64 * 0.5 / classes as f64 + rng.gen_range(-0.05..0.05);
                let theta = (i as f64 / samples_per_class as f64) * std::f64::consts::TAU
                    + rng.gen_range(-0.1..0.1);
                samples.push(vec![
                    (radius * theta.cos()) as f32,
                    (radius * theta.sin()) as f32,
                ]);
                labels.push(class);
            }
        }
        Dataset {
            samples,
            labels,
            classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_have_requested_dimensions() {
        let d = Dataset::gaussian_blobs(4, 50, 8, 0.2, 1);
        assert_eq!(d.len(), 200);
        assert_eq!(d.features(), 8);
        assert_eq!(d.classes, 4);
        assert!(d.labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn blobs_are_deterministic_for_a_seed() {
        let a = Dataset::gaussian_blobs(3, 10, 4, 0.1, 7);
        let b = Dataset::gaussian_blobs(3, 10, 4, 0.1, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::gaussian_blobs(3, 10, 4, 0.1, 7);
        let b = Dataset::gaussian_blobs(3, 10, 4, 0.1, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = Dataset::gaussian_blobs(4, 50, 8, 0.2, 1);
        let (train, test) = d.split(0.8);
        assert_eq!(train.len() + test.len(), d.len());
        assert!(!test.is_empty());
        assert!(train.len() > test.len());
    }

    #[test]
    fn split_keeps_both_halves_multi_class() {
        let d = Dataset::gaussian_blobs(4, 50, 8, 0.2, 1);
        let (train, test) = d.split(0.75);
        let distinct = |labels: &[usize]| {
            let mut v: Vec<usize> = labels.to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert_eq!(distinct(&train.labels), 4);
        assert_eq!(distinct(&test.labels), 4);
    }

    #[test]
    fn rings_are_two_dimensional() {
        let d = Dataset::concentric_rings(3, 40, 2);
        assert_eq!(d.features(), 2);
        assert_eq!(d.len(), 120);
    }
}
