//! Neural-network front end for the FPSA reproduction.
//!
//! The FPSA software stack consumes neural networks expressed as
//! *computational graphs* (the programming model of mainstream deep-learning
//! frameworks). This crate provides:
//!
//! * a framework-neutral computational-graph IR ([`graph::ComputationalGraph`])
//!   with shape inference and workload statistics (weights, operations,
//!   weight-reuse degrees) — the quantities the mapper and the performance
//!   bounds of the paper are driven by;
//! * a model zoo ([`zoo`]) with the seven benchmark networks of the paper's
//!   evaluation (MLP-500-100, LeNet, CIFAR-VGG17, AlexNet, VGG16, GoogLeNet,
//!   ResNet-152), reproducing the published weight and operation counts of
//!   Table 3;
//! * a tiny, dependency-free training and inference engine ([`mlp`],
//!   [`dataset`]) used by the Figure 9 device-variation accuracy experiment;
//! * quantization helpers ([`quant`]) for the 8-bit weights / 6-bit
//!   activations used on the accelerator;
//! * numeric graph parameters ([`params`]) and the golden-model reference
//!   executor ([`reference`]) — float and integer-exact forward passes that
//!   the compiled-model execution engine is differentially tested against;
//! * the repository-wide seeded-RNG convention ([`seeds`]).
//!
//! # Example
//!
//! ```
//! use fpsa_nn::zoo;
//!
//! let vgg16 = zoo::vgg16();
//! let stats = vgg16.statistics();
//! // Table 3 reports 138.3M weights and 30.9G operations for VGG16.
//! assert!((stats.total_weights as f64 - 138.3e6).abs() / 138.3e6 < 0.02);
//! assert!((stats.total_ops as f64 - 30.9e9).abs() / 30.9e9 < 0.05);
//! ```

pub mod dataset;
pub mod error;
pub mod graph;
pub mod mlp;
pub mod ops;
pub mod params;
pub mod quant;
pub mod reference;
pub mod seeds;
pub mod shape;
pub mod stats;
pub mod zoo;

pub use error::NnError;
pub use graph::{ComputationalGraph, Node, NodeId};
pub use ops::Operator;
pub use params::{mlp_graph, GraphParameters};
pub use reference::{QuantizationPlan, Reference};
pub use shape::TensorShape;
pub use stats::{LayerStats, WorkloadStats};
