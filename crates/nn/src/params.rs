//! Numeric parameters for a computational graph.
//!
//! The graph IR ([`crate::graph`]) is purely structural — operators know
//! their shapes but carry no weight values. [`GraphParameters`] attaches an
//! actual weight tensor to every weighted node so the graph (and anything
//! compiled from it) can be *executed*, not just sized:
//!
//! * `Linear { in, out }` — a row-major `[out][in]` matrix
//!   (`w[o * in + i]`), with no bias term (the fabric stores weights only;
//!   biases would need a constant-input column, see
//!   [`GraphParameters::from_mlp`]).
//! * `Conv2d` — a `[out_channels][(in_channels/groups) * k * k]` matrix with
//!   the kernel flattened channel-major (`(c * k + ky) * k + kx`), matching
//!   the row layout the neural synthesizer tiles.
//! * `BatchNorm` — carried as *folded into the preceding layer* (inference
//!   mode); no tensor is generated and the reference executes it as
//!   identity, exactly like the synthesizer's lowering.
//!
//! Parameters are generated deterministically: node `n` of a graph seeded
//! with `base` draws from `StdRng(seeds::derive(base, STREAM_PARAMS, n))`,
//! so adding a node never reshuffles another node's weights.

use crate::graph::{ComputationalGraph, NodeId};
use crate::mlp::Mlp;
use crate::ops::Operator;
use crate::seeds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-node weight tensors for one computational graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphParameters {
    /// Flattened weight tensor per node id (`None` for weight-free nodes).
    tensors: Vec<Option<Vec<f32>>>,
}

/// The number of weights [`GraphParameters`] materializes for one operator
/// (`BatchNorm` folds to zero, unlike [`Operator::weight_count`] which
/// counts its parameters for capacity planning).
fn materialized_weight_count(op: &Operator) -> usize {
    match op {
        Operator::BatchNorm { .. } => 0,
        _ => op.weight_count(),
    }
}

impl GraphParameters {
    /// Deterministically initialize parameters for every weighted node of
    /// `graph`, He-scaled (`±sqrt(2 / fan_in)`) like [`crate::mlp::DenseLayer`].
    pub fn seeded(graph: &ComputationalGraph, base_seed: u64) -> Self {
        let tensors = graph
            .nodes()
            .iter()
            .map(|node| {
                let count = materialized_weight_count(&node.op);
                if count == 0 {
                    return None;
                }
                let fan_in = match node.op {
                    Operator::Linear { in_features, .. } => in_features,
                    Operator::Conv2d {
                        in_channels,
                        kernel,
                        groups,
                        ..
                    } => (in_channels / groups) * kernel * kernel,
                    _ => count,
                };
                let scale = (2.0 / fan_in.max(1) as f32).sqrt();
                let mut rng = StdRng::seed_from_u64(seeds::derive(
                    base_seed,
                    seeds::STREAM_PARAMS,
                    node.id as u64,
                ));
                Some((0..count).map(|_| rng.gen_range(-scale..scale)).collect())
            })
            .collect();
        GraphParameters { tensors }
    }

    /// Import the weights of a trained [`Mlp`] into parameters for `graph`,
    /// which must be the matching `Input → (Linear → Relu)* → Linear` chain
    /// (e.g. built by [`mlp_graph`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::ShapeMismatch`] if the layer shapes do not
    /// line up or the MLP carries non-zero biases (the graph IR has no bias
    /// term; train with [`Mlp::train_without_bias`]).
    pub fn from_mlp(graph: &ComputationalGraph, mlp: &Mlp) -> Result<Self, crate::NnError> {
        let mismatch = |reason: String| crate::NnError::ShapeMismatch {
            node: graph.name.clone(),
            reason,
        };
        let mut layers = mlp.layers.iter();
        let mut tensors = Vec::with_capacity(graph.len());
        for node in graph.nodes() {
            match node.op {
                Operator::Linear {
                    in_features,
                    out_features,
                } => {
                    let layer = layers
                        .next()
                        .ok_or_else(|| mismatch("more Linear nodes than MLP layers".into()))?;
                    if layer.inputs() != in_features || layer.outputs() != out_features {
                        return Err(mismatch(format!(
                            "layer {}x{} does not match node {}x{}",
                            layer.inputs(),
                            layer.outputs(),
                            in_features,
                            out_features
                        )));
                    }
                    if layer.bias.iter().any(|&b| b != 0.0) {
                        return Err(mismatch(
                            "MLP carries non-zero biases; use Mlp::train_without_bias".into(),
                        ));
                    }
                    let mut w = Vec::with_capacity(in_features * out_features);
                    for row in &layer.weights {
                        w.extend_from_slice(row);
                    }
                    tensors.push(Some(w));
                }
                _ => tensors.push(None),
            }
        }
        if layers.next().is_some() {
            return Err(mismatch("more MLP layers than Linear nodes".into()));
        }
        Ok(GraphParameters { tensors })
    }

    /// Assemble parameters directly from per-node tensors (`None` for
    /// weight-free nodes), indexed by node id. This is the hook the
    /// multi-fabric sharder uses to slice one model's parameters into
    /// per-stage parameter sets without retraining or reseeding.
    pub fn from_parts(tensors: Vec<Option<Vec<f32>>>) -> Self {
        GraphParameters { tensors }
    }

    /// The weight tensor of a node, if it has one.
    pub fn weights(&self, node: NodeId) -> Option<&[f32]> {
        self.tensors.get(node).and_then(|t| t.as_deref())
    }

    /// Number of nodes covered (the graph's length at generation time).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether no node is covered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Apply a transformation to every weight (quantization, noise), keeping
    /// the structure — the analogue of [`Mlp::map_weights`].
    pub fn map_weights<F: FnMut(f32) -> f32>(&self, mut f: F) -> GraphParameters {
        GraphParameters {
            tensors: self
                .tensors
                .iter()
                .map(|t| t.as_ref().map(|w| w.iter().map(|&v| f(v)).collect()))
                .collect(),
        }
    }

    /// The largest absolute weight of one node (0 for weight-free nodes) —
    /// the per-layer symmetric quantization range.
    pub fn max_abs_weight(&self, node: NodeId) -> f32 {
        self.weights(node)
            .map(|w| w.iter().fold(0.0f32, |m, &v| m.max(v.abs())))
            .unwrap_or(0.0)
    }

    /// Total number of materialized weights.
    pub fn weight_count(&self) -> usize {
        self.tensors
            .iter()
            .map(|t| t.as_ref().map_or(0, Vec::len))
            .sum()
    }
}

/// Build the `Input → (Linear → Relu)* → Linear` computational graph matching
/// an MLP with the given layer sizes (no softmax; the executor and reference
/// compare logits).
///
/// # Panics
///
/// Panics if fewer than two sizes are given.
pub fn mlp_graph(name: impl Into<String>, sizes: &[usize]) -> ComputationalGraph {
    assert!(sizes.len() >= 2, "an MLP needs input and output sizes");
    let mut g = ComputationalGraph::new(name);
    let mut prev = g.add_input("input", crate::TensorShape::Features(sizes[0]));
    for (i, pair) in sizes.windows(2).enumerate() {
        let fc = g.add_node(
            format!("fc{}", i + 1),
            Operator::Linear {
                in_features: pair[0],
                out_features: pair[1],
            },
            vec![prev],
        );
        prev = if i + 2 == sizes.len() {
            fc
        } else {
            g.add_node(format!("fc{}_relu", i + 1), Operator::Relu, vec![fc])
        };
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn seeded_parameters_cover_every_weighted_node() {
        let g = zoo::lenet();
        let p = GraphParameters::seeded(&g, 7);
        assert_eq!(p.len(), g.len());
        for node in g.nodes() {
            let expected = materialized_weight_count(&node.op);
            assert_eq!(
                p.weights(node.id).map_or(0, <[f32]>::len),
                expected,
                "node {}",
                node.name
            );
        }
        assert_eq!(p.weight_count() as u64, g.statistics().total_weights);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let g = zoo::mlp_500_100();
        assert_eq!(
            GraphParameters::seeded(&g, 3),
            GraphParameters::seeded(&g, 3)
        );
        assert_ne!(
            GraphParameters::seeded(&g, 3),
            GraphParameters::seeded(&g, 4)
        );
    }

    #[test]
    fn map_weights_transforms_in_place() {
        let g = zoo::mlp_500_100();
        let p = GraphParameters::seeded(&g, 1);
        let doubled = p.map_weights(|w| 2.0 * w);
        let node = g.nodes().iter().find(|n| n.op.has_weights()).unwrap().id;
        assert_eq!(
            2.0 * p.weights(node).unwrap()[0],
            doubled.weights(node).unwrap()[0]
        );
        assert_eq!(doubled.max_abs_weight(node), 2.0 * p.max_abs_weight(node));
    }

    #[test]
    fn mlp_graph_round_trips_through_from_mlp() {
        let sizes = [6, 12, 4];
        let g = mlp_graph("tiny", &sizes);
        let mlp = Mlp::new(&sizes, 5);
        let p = GraphParameters::from_mlp(&g, &mlp).unwrap();
        // fc1 is node 1; its first row must match the MLP's first layer.
        assert_eq!(p.weights(1).unwrap()[..6], mlp.layers[0].weights[0][..]);
        assert_eq!(p.weight_count(), mlp.weight_count());
    }

    #[test]
    fn from_mlp_rejects_nonzero_bias_and_shape_mismatch() {
        let g = mlp_graph("tiny", &[6, 12, 4]);
        let mut mlp = Mlp::new(&[6, 12, 4], 5);
        mlp.layers[0].bias[0] = 0.5;
        assert!(GraphParameters::from_mlp(&g, &mlp).is_err());
        let wrong = Mlp::new(&[6, 13, 4], 5);
        assert!(GraphParameters::from_mlp(&g, &wrong).is_err());
    }
}
