//! Tensor shapes used by the computational graph IR.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a tensor flowing along a graph edge.
///
/// The FPSA front end only needs to distinguish feature vectors (outputs of
/// fully connected layers) from channel-height-width feature maps (outputs of
/// convolutional layers); batch dimensions are implicit because the
/// accelerator pipelines one sample per invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorShape {
    /// A flat feature vector with the given number of elements.
    Features(usize),
    /// A feature map with `channels x height x width` elements.
    Chw {
        /// Number of channels.
        channels: usize,
        /// Spatial height.
        height: usize,
        /// Spatial width.
        width: usize,
    },
}

impl TensorShape {
    /// Construct a CHW shape.
    pub fn chw(channels: usize, height: usize, width: usize) -> Self {
        TensorShape::Chw {
            channels,
            height,
            width,
        }
    }

    /// Total number of elements.
    pub fn elements(&self) -> usize {
        match *self {
            TensorShape::Features(n) => n,
            TensorShape::Chw {
                channels,
                height,
                width,
            } => channels * height * width,
        }
    }

    /// The shape after flattening to a feature vector.
    pub fn flattened(&self) -> TensorShape {
        TensorShape::Features(self.elements())
    }

    /// The number of channels (feature count for flat vectors).
    pub fn channels(&self) -> usize {
        match *self {
            TensorShape::Features(n) => n,
            TensorShape::Chw { channels, .. } => channels,
        }
    }

    /// Spatial size `(height, width)`; `(1, 1)` for flat vectors.
    pub fn spatial(&self) -> (usize, usize) {
        match *self {
            TensorShape::Features(_) => (1, 1),
            TensorShape::Chw { height, width, .. } => (height, width),
        }
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TensorShape::Features(n) => write!(f, "[{n}]"),
            TensorShape::Chw {
                channels,
                height,
                width,
            } => write!(f, "[{channels}x{height}x{width}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_are_products() {
        assert_eq!(TensorShape::Features(10).elements(), 10);
        assert_eq!(TensorShape::chw(3, 224, 224).elements(), 3 * 224 * 224);
    }

    #[test]
    fn flatten_preserves_elements() {
        let s = TensorShape::chw(64, 7, 7);
        assert_eq!(s.flattened(), TensorShape::Features(64 * 49));
    }

    #[test]
    fn channels_and_spatial_accessors() {
        let s = TensorShape::chw(16, 8, 4);
        assert_eq!(s.channels(), 16);
        assert_eq!(s.spatial(), (8, 4));
        let v = TensorShape::Features(100);
        assert_eq!(v.channels(), 100);
        assert_eq!(v.spatial(), (1, 1));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TensorShape::Features(5).to_string(), "[5]");
        assert_eq!(TensorShape::chw(3, 2, 1).to_string(), "[3x2x1]");
    }
}
