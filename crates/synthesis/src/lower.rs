//! Per-operator lowering rules.
//!
//! Each rule turns one computational-graph node into a set of core-op groups
//! sized for the target crossbar. The rules follow Section 5.1 of the paper:
//! weight layers are tiled, oversized input dimensions get reduction tiles,
//! poolings and element-wise operations become dedicated small matrices, and
//! everything else is wiring.

use crate::coreop::{CoreOpGroup, CoreOpKind};
use fpsa_nn::{Operator, TensorShape};

/// Crossbar geometry the synthesizer lowers onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConstraints {
    /// Usable crossbar rows (logical inputs).
    pub rows: usize,
    /// Usable logical crossbar columns (outputs).
    pub cols: usize,
}

impl TileConstraints {
    /// The default FPSA constraint: a 256×256 logical crossbar.
    pub fn fpsa_256() -> Self {
        TileConstraints {
            rows: 256,
            cols: 256,
        }
    }
}

/// Split `total` into tile sizes of at most `tile`.
pub fn tile_sizes(total: usize, tile: usize) -> Vec<usize> {
    assert!(tile > 0, "tile size must be positive");
    if total == 0 {
        return Vec::new();
    }
    let full = total / tile;
    let rest = total % tile;
    let mut out = vec![tile; full];
    if rest > 0 {
        out.push(rest);
    }
    out
}

/// Split `total` into `(offset, size)` tiles of at most `tile` — the sizes
/// of [`tile_sizes`] paired with their running start offsets, which become
/// the tiles' [`CoreOpGroup::row_offset`]/[`CoreOpGroup::col_offset`].
pub fn tile_spans(total: usize, tile: usize) -> Vec<(usize, usize)> {
    let mut offset = 0;
    tile_sizes(total, tile)
        .into_iter()
        .map(|size| {
            let span = (offset, size);
            offset += size;
            span
        })
        .collect()
}

/// The result of lowering one computational-graph node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoweredNode {
    /// The produced groups (ids are assigned later by the synthesizer).
    pub groups: Vec<CoreOpGroup>,
    /// Index range (into `groups`) of the groups carrying the node's output.
    pub outputs: std::ops::Range<usize>,
    /// Dependencies internal to the node, as `(producer, consumer)` local
    /// indices into `groups` (e.g. VMM tile → the reduction tile summing it).
    pub intra_edges: Vec<(usize, usize)>,
}

impl LoweredNode {
    /// A node that lowers to nothing (pure wiring).
    pub fn empty() -> Self {
        LoweredNode::default()
    }

    /// Whether the node produced any groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The groups that receive the node's external inputs (everything that is
    /// not an output of an intra-node edge, or all groups when there are no
    /// intra-node stages).
    pub fn input_range(&self) -> std::ops::Range<usize> {
        if self.outputs.start == 0 {
            0..self.groups.len()
        } else {
            0..self.outputs.start
        }
    }
}

/// The parameters of one dense lowering: a weight matrix of
/// `input_dim x output_dim`, executed `reuse` times per sample.
#[derive(Debug, Clone, Copy)]
pub struct DenseSpec<'a> {
    /// Name prefix for the generated tiles.
    pub name: &'a str,
    /// The computational-graph node the tiles come from.
    pub source_node: usize,
    /// Weight-matrix rows (the layer's input dimension).
    pub input_dim: usize,
    /// Weight-matrix columns (the layer's output dimension).
    pub output_dim: usize,
    /// How many times the matrix is reused per sample.
    pub reuse: u64,
    /// Whether a ReLU follows (fused into the tiles when possible).
    pub relu: bool,
    /// The core-op kind of the VMM tiles.
    pub kind: CoreOpKind,
}

/// Lower a dense weight matrix into VMM tiles plus (if needed) reduction
/// tiles.
pub fn lower_dense(spec: DenseSpec<'_>, constraints: TileConstraints) -> LoweredNode {
    let DenseSpec {
        name,
        source_node,
        input_dim,
        output_dim,
        reuse,
        relu,
        kind,
    } = spec;
    let row_tiles = tile_spans(input_dim, constraints.rows);
    let col_tiles = tile_spans(output_dim, constraints.cols);
    let mut groups = Vec::new();
    for (ci, &(col_offset, cols)) in col_tiles.iter().enumerate() {
        for (ri, &(row_offset, rows)) in row_tiles.iter().enumerate() {
            groups.push(CoreOpGroup {
                id: 0,
                name: format!("{name}_t{ri}_{ci}"),
                source_node,
                kind,
                rows,
                cols,
                row_offset,
                col_offset,
                reuse_degree: reuse,
                // ReLU can only be fused when no reduction follows.
                relu: relu && row_tiles.len() == 1,
                layer_depth: 0,
            });
        }
    }
    let vmm_count = groups.len();
    if row_tiles.len() > 1 {
        // Partial sums from `row_tiles.len()` tiles must be added per output.
        let partials = row_tiles.len();
        let outputs_per_tile = (constraints.rows / partials).max(1).min(constraints.cols);
        let mut intra_edges = Vec::new();
        for (ci, &(col_offset, cols)) in col_tiles.iter().enumerate() {
            for (bi, &(block_offset, block)) in
                tile_spans(cols, outputs_per_tile).iter().enumerate()
            {
                let reduction_index = groups.len();
                groups.push(CoreOpGroup {
                    id: 0,
                    name: format!("{name}_red{ci}_{bi}"),
                    source_node,
                    kind: CoreOpKind::Reduction,
                    rows: (partials * block).min(constraints.rows),
                    cols: block,
                    row_offset: 0,
                    col_offset: col_offset + block_offset,
                    reuse_degree: reuse,
                    relu,
                    layer_depth: 0,
                });
                // Only the VMM tiles of this column tile feed this reduction.
                for ri in 0..row_tiles.len() {
                    intra_edges.push((ci * row_tiles.len() + ri, reduction_index));
                }
            }
        }
        LoweredNode {
            outputs: vmm_count..groups.len(),
            groups,
            intra_edges,
        }
    } else {
        let len = groups.len();
        LoweredNode {
            groups,
            outputs: 0..len,
            intra_edges: Vec::new(),
        }
    }
}

/// Lower one computational-graph node.
///
/// Returns the groups (possibly empty for pass-through operators), the range
/// of output-carrying groups within them, and any intra-node dependencies.
pub fn lower_node(
    node_id: usize,
    name: &str,
    op: &Operator,
    input_shapes: &[TensorShape],
    output_shape: TensorShape,
    fuse_relu: bool,
    constraints: TileConstraints,
) -> LoweredNode {
    match *op {
        Operator::Linear {
            in_features,
            out_features,
        } => lower_dense(
            DenseSpec {
                name,
                source_node: node_id,
                input_dim: in_features,
                output_dim: out_features,
                reuse: 1,
                relu: fuse_relu,
                kind: CoreOpKind::Vmm,
            },
            constraints,
        ),
        Operator::Conv2d {
            in_channels,
            out_channels,
            kernel,
            groups,
            ..
        } => {
            let (oh, ow) = output_shape.spatial();
            lower_dense(
                DenseSpec {
                    name,
                    source_node: node_id,
                    input_dim: (in_channels / groups) * kernel * kernel,
                    output_dim: out_channels / groups,
                    reuse: (oh * ow * groups) as u64,
                    relu: fuse_relu,
                    kind: CoreOpKind::Vmm,
                },
                constraints,
            )
        }
        Operator::AvgPool2d { kernel, .. } => {
            let channels = input_shapes.first().map_or(0, TensorShape::channels);
            let (oh, ow) = output_shape.spatial();
            lower_pooling(
                name,
                node_id,
                channels,
                kernel * kernel,
                (oh * ow) as u64,
                false,
                constraints,
            )
        }
        Operator::MaxPool2d { kernel, .. } => {
            let channels = input_shapes.first().map_or(0, TensorShape::channels);
            let (oh, ow) = output_shape.spatial();
            // Max pooling is approximated by a two-stage MLP construct
            // (Section 5.1 / Section 7.3), doubling the tile count.
            lower_pooling(
                name,
                node_id,
                channels,
                kernel * kernel,
                (oh * ow) as u64,
                true,
                constraints,
            )
        }
        Operator::GlobalAvgPool => {
            let input = input_shapes.first().copied().unwrap_or(output_shape);
            let (h, w) = input.spatial();
            lower_pooling(
                name,
                node_id,
                input.channels(),
                h * w,
                1,
                false,
                constraints,
            )
        }
        Operator::Add => {
            let channels = output_shape.channels();
            let (h, w) = output_shape.spatial();
            let per_tile = (constraints.rows / 2).min(constraints.cols).max(1);
            let mut groups = Vec::new();
            for (i, &(block_offset, block)) in tile_spans(channels, per_tile).iter().enumerate() {
                groups.push(CoreOpGroup {
                    id: 0,
                    name: format!("{name}_add{i}"),
                    source_node: node_id,
                    kind: CoreOpKind::Eltwise,
                    rows: 2 * block,
                    cols: block,
                    row_offset: 0,
                    col_offset: block_offset,
                    reuse_degree: (h * w) as u64,
                    relu: fuse_relu,
                    layer_depth: 0,
                });
            }
            let len = groups.len();
            LoweredNode {
                groups,
                outputs: 0..len,
                intra_edges: Vec::new(),
            }
        }
        // Pass-through / folded operators produce no core-ops.
        Operator::Input { .. }
        | Operator::Relu
        | Operator::Concat
        | Operator::Flatten
        | Operator::BatchNorm { .. }
        | Operator::LocalResponseNorm
        | Operator::Dropout
        | Operator::Softmax => LoweredNode::empty(),
    }
}

/// Lower a pooling over `channels` channels with `window` inputs per output
/// position into pooling tiles; `two_stage` adds the MLP approximation stage
/// used for max pooling.
fn lower_pooling(
    name: &str,
    source_node: usize,
    channels: usize,
    window: usize,
    reuse: u64,
    two_stage: bool,
    constraints: TileConstraints,
) -> LoweredNode {
    let per_tile = (constraints.rows / window.max(1))
        .max(1)
        .min(constraints.cols);
    let blocks = tile_spans(channels, per_tile);
    let mut groups = Vec::new();
    for (i, &(block_offset, block)) in blocks.iter().enumerate() {
        groups.push(CoreOpGroup {
            id: 0,
            name: format!("{name}_p{i}"),
            source_node,
            kind: CoreOpKind::Pooling,
            rows: (window * block).min(constraints.rows),
            cols: if two_stage {
                (2 * block).min(constraints.cols)
            } else {
                block
            },
            row_offset: 0,
            col_offset: block_offset,
            reuse_degree: reuse,
            relu: false,
            layer_depth: 0,
        });
    }
    if two_stage {
        let mut intra_edges = Vec::new();
        for (i, &(block_offset, block)) in blocks.iter().enumerate() {
            let stage2_index = groups.len();
            groups.push(CoreOpGroup {
                id: 0,
                name: format!("{name}_p{i}_stage2"),
                source_node,
                kind: CoreOpKind::Pooling,
                rows: (2 * block).min(constraints.rows),
                cols: block,
                row_offset: 0,
                col_offset: block_offset,
                reuse_degree: reuse,
                relu: false,
                layer_depth: 0,
            });
            intra_edges.push((i, stage2_index));
        }
        let start = blocks.len();
        let end = groups.len();
        LoweredNode {
            groups,
            outputs: start..end,
            intra_edges,
        }
    } else {
        let len = groups.len();
        LoweredNode {
            groups,
            outputs: 0..len,
            intra_edges: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_sizes_cover_the_total() {
        assert_eq!(tile_sizes(600, 256), vec![256, 256, 88]);
        assert_eq!(tile_sizes(256, 256), vec![256]);
        assert_eq!(tile_sizes(0, 256), Vec::<usize>::new());
        assert_eq!(tile_sizes(600, 256).iter().sum::<usize>(), 600);
    }

    #[test]
    #[should_panic(expected = "tile size must be positive")]
    fn tile_sizes_rejects_zero_tile() {
        let _ = tile_sizes(10, 0);
    }

    #[test]
    fn tile_spans_pair_offsets_with_sizes() {
        assert_eq!(tile_spans(600, 256), vec![(0, 256), (256, 256), (512, 88)]);
        assert_eq!(tile_spans(0, 256), Vec::<(usize, usize)>::new());
    }

    #[test]
    fn dense_tiles_carry_their_layer_coordinates() {
        let lowered = lower_dense(
            DenseSpec {
                name: "fc1",
                source_node: 0,
                input_dim: 784,
                output_dim: 500,
                reuse: 1,
                relu: true,
                kind: CoreOpKind::Vmm,
            },
            TileConstraints::fpsa_256(),
        );
        // VMM tile spans partition the 784 x 500 weight matrix.
        let mut covered = 0usize;
        for g in lowered.groups.iter().filter(|g| g.kind == CoreOpKind::Vmm) {
            assert!(g.row_offset + g.rows <= 784);
            assert!(g.col_offset + g.cols <= 500);
            covered += g.rows * g.cols;
        }
        assert_eq!(covered, 784 * 500);
        // Reduction tiles partition the 500 outputs exactly once.
        let mut out_covered = vec![false; 500];
        for g in &lowered.groups[lowered.outputs.clone()] {
            for c in 0..g.cols {
                assert!(!out_covered[g.col_offset + c]);
                out_covered[g.col_offset + c] = true;
            }
        }
        assert!(out_covered.iter().all(|&c| c));
    }

    #[test]
    fn small_dense_layer_is_one_tile_with_fused_relu() {
        let lowered = lower_dense(
            DenseSpec {
                name: "fc",
                source_node: 0,
                input_dim: 100,
                output_dim: 10,
                reuse: 1,
                relu: true,
                kind: CoreOpKind::Vmm,
            },
            TileConstraints::fpsa_256(),
        );
        assert_eq!(lowered.groups.len(), 1);
        assert_eq!(lowered.groups[0].rows, 100);
        assert_eq!(lowered.groups[0].cols, 10);
        assert!(lowered.groups[0].relu);
        assert_eq!(lowered.outputs, 0..1);
        assert!(lowered.intra_edges.is_empty());
    }

    #[test]
    fn large_dense_layer_gets_reduction_tiles() {
        // 784 inputs -> 4 row tiles; 500 outputs -> 2 col tiles.
        let lowered = lower_dense(
            DenseSpec {
                name: "fc1",
                source_node: 0,
                input_dim: 784,
                output_dim: 500,
                reuse: 1,
                relu: true,
                kind: CoreOpKind::Vmm,
            },
            TileConstraints::fpsa_256(),
        );
        let groups = &lowered.groups;
        let vmm = groups.iter().filter(|g| g.kind == CoreOpKind::Vmm).count();
        let red = groups
            .iter()
            .filter(|g| g.kind == CoreOpKind::Reduction)
            .count();
        assert_eq!(vmm, 4 * 2);
        assert!(red >= 2, "each column tile needs at least one reduction");
        // VMM tiles must not fuse ReLU when a reduction follows.
        assert!(groups
            .iter()
            .filter(|g| g.kind == CoreOpKind::Vmm)
            .all(|g| !g.relu));
        assert!(groups[lowered.outputs.clone()]
            .iter()
            .all(|g| g.kind == CoreOpKind::Reduction));
        assert!(groups[lowered.outputs.clone()].iter().all(|g| g.relu));
        // Every reduction tile is fed by exactly the 4 row tiles of its
        // column tile, not by every VMM tile.
        for (_, consumer) in &lowered.intra_edges {
            assert!(groups[*consumer].kind == CoreOpKind::Reduction);
        }
        let per_reduction = lowered.intra_edges.len() / red;
        assert_eq!(per_reduction, 4);
    }

    #[test]
    fn conv_lowering_uses_spatial_reuse() {
        let op = Operator::Conv2d {
            in_channels: 64,
            out_channels: 128,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        let input = TensorShape::chw(64, 56, 56);
        let output = op.infer_shape("c", &[input]).unwrap();
        let lowered = lower_node(
            3,
            "conv",
            &op,
            &[input],
            output,
            true,
            TileConstraints::fpsa_256(),
        );
        let groups = &lowered.groups;
        assert!(!groups.is_empty());
        assert!(groups.iter().all(|g| g.reuse_degree == 56 * 56));
        assert!(groups.iter().all(|g| g.rows <= 256 && g.cols <= 256));
        // 64*9 = 576 inputs -> 3 row tiles; 128 outputs -> 1 col tile.
        let vmm = groups.iter().filter(|g| g.kind == CoreOpKind::Vmm).count();
        assert_eq!(vmm, 3);
    }

    #[test]
    fn max_pooling_produces_two_stage_small_tiles() {
        let op = Operator::MaxPool2d {
            kernel: 2,
            stride: 2,
        };
        let input = TensorShape::chw(512, 14, 14);
        let output = op.infer_shape("p", &[input]).unwrap();
        let lowered = lower_node(
            1,
            "pool",
            &op,
            &[input],
            output,
            false,
            TileConstraints::fpsa_256(),
        );
        let groups = &lowered.groups;
        assert!(groups.iter().all(|g| g.kind == CoreOpKind::Pooling));
        // 2x2 window -> 64 channels per tile -> 8 tiles, doubled by the MLP stage.
        assert_eq!(groups.len(), 16);
        assert_eq!(lowered.outputs, 8..16);
        assert_eq!(lowered.intra_edges.len(), 8);
        assert!(groups.iter().all(|g| g.reuse_degree == 49));
    }

    #[test]
    fn avg_pooling_is_single_stage() {
        let op = Operator::AvgPool2d {
            kernel: 2,
            stride: 2,
        };
        let input = TensorShape::chw(128, 8, 8);
        let output = op.infer_shape("p", &[input]).unwrap();
        let lowered = lower_node(
            1,
            "pool",
            &op,
            &[input],
            output,
            false,
            TileConstraints::fpsa_256(),
        );
        assert_eq!(lowered.groups.len(), 2);
        assert_eq!(lowered.outputs, 0..2);
        assert!(lowered.intra_edges.is_empty());
    }

    #[test]
    fn global_average_pool_uses_spatial_window() {
        let op = Operator::GlobalAvgPool;
        let input = TensorShape::chw(1024, 7, 7);
        let output = op.infer_shape("g", &[input]).unwrap();
        let lowered = lower_node(
            2,
            "gap",
            &op,
            &[input],
            output,
            false,
            TileConstraints::fpsa_256(),
        );
        // 49-input window -> 5 channels per tile -> 205 tiles.
        assert_eq!(lowered.groups.len(), 205);
        assert!(lowered.groups.iter().all(|g| g.rows <= 256));
    }

    #[test]
    fn residual_add_produces_eltwise_tiles_with_spatial_reuse() {
        let op = Operator::Add;
        let shape = TensorShape::chw(256, 56, 56);
        let lowered = lower_node(
            4,
            "res",
            &op,
            &[shape, shape],
            shape,
            true,
            TileConstraints::fpsa_256(),
        );
        let groups = &lowered.groups;
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| g.kind == CoreOpKind::Eltwise));
        assert!(groups.iter().all(|g| g.reuse_degree == 56 * 56));
        assert!(groups.iter().all(|g| g.relu));
    }

    #[test]
    fn pass_through_operators_produce_no_groups() {
        for op in [
            Operator::Relu,
            Operator::Flatten,
            Operator::Dropout,
            Operator::Softmax,
            Operator::Concat,
            Operator::LocalResponseNorm,
        ] {
            let lowered = lower_node(
                0,
                "x",
                &op,
                &[TensorShape::Features(16)],
                TensorShape::Features(16),
                false,
                TileConstraints::fpsa_256(),
            );
            assert!(lowered.is_empty(), "{op:?} should not produce groups");
            assert_eq!(lowered.outputs, 0..0);
        }
    }
}
