//! The neural synthesizer: computational graph → core-op graph.
//!
//! The FPSA hardware executes exactly one operation efficiently: a
//! low-precision vector-matrix multiplication (≤ 256×256) followed by ReLU —
//! the *core-op*. The neural synthesizer (Section 5.1 of the paper, following
//! the NN-compiler line of work it cites) rewrites an arbitrary framework
//! computational graph into an equivalent graph of core-ops:
//!
//! * fully connected and convolutional layers are split into ≤ 256×256 weight
//!   tiles, with reduction core-ops summing partial results when the input
//!   dimension exceeds one crossbar;
//! * poolings, element-wise additions and global poolings are lowered to
//!   dedicated small matrices (max pooling via an MLP-style construct), which
//!   is why the paper observes pooling dominating PE counts in GoogLeNet;
//! * ReLU is fused into the producing core-op; normalization, dropout,
//!   softmax and reshapes disappear (folded or executed off-fabric).
//!
//! The synthesizer keeps the result in the compact *group* form: one
//! [`CoreOpGroup`] per distinct weight tile, annotated with its reuse degree
//! (how many per-position core-ops share those weights) and its
//! `row_offset`/`col_offset` coordinate inside the source layer. The
//! spatial-to-temporal mapper consumes the structure; the [`weights`] module
//! turns the coordinates into the actual crossbar matrices, giving core-ops
//! numeric evaluation semantics for the compiled-model execution engine.

pub mod coreop;
pub mod lower;
pub mod synthesizer;
pub mod weights;

pub use coreop::{CoreOp, CoreOpGraph, CoreOpGroup, CoreOpKind, GroupId};
pub use synthesizer::{NeuralSynthesizer, SynthesisConfig};
pub use weights::{vmm_tile_matrix, weight_input_dim};
