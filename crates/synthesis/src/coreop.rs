//! The core-op graph data model.
//!
//! A *core-op* is the single operation the FPSA PE supports: a vector-matrix
//! multiplication of at most crossbar size, optionally followed by ReLU. A
//! convolutional layer produces one core-op per output position and weight
//! tile; all core-ops sharing a weight tile form a [`CoreOpGroup`], and the
//! group's *reuse degree* is the number of such core-ops. Keeping the graph
//! in group form keeps even ImageNet-scale networks tractable (VGG16 has
//! millions of core-ops but only a few thousand groups).

use serde::{Deserialize, Serialize};

/// Identifier of a core-op group within one graph.
pub type GroupId = usize;

/// What a group of core-ops implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreOpKind {
    /// A weight tile of a fully connected or convolutional layer.
    Vmm,
    /// A partial-sum reduction tile (sums the outputs of several VMM tiles).
    Reduction,
    /// A pooling construct (average pooling matrix or max-pooling MLP).
    Pooling,
    /// An element-wise construct (residual addition).
    Eltwise,
}

impl CoreOpKind {
    /// Short mnemonic for reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CoreOpKind::Vmm => "vmm",
            CoreOpKind::Reduction => "reduce",
            CoreOpKind::Pooling => "pool",
            CoreOpKind::Eltwise => "eltwise",
        }
    }
}

/// A group of core-ops sharing one weight tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreOpGroup {
    /// Stable identifier (index into the graph's group list).
    pub id: GroupId,
    /// Human-readable name, derived from the source layer and tile indices.
    pub name: String,
    /// Source node id in the original computational graph.
    pub source_node: usize,
    /// What the group implements.
    pub kind: CoreOpKind,
    /// Rows of the weight tile (crossbar inputs used), ≤ crossbar rows.
    pub rows: usize,
    /// Columns of the weight tile (crossbar outputs used), ≤ crossbar columns.
    pub cols: usize,
    /// Row offset of the tile within its source construct: the first input
    /// index of the layer's logical input vector this tile consumes. Gives
    /// the tile *numeric* semantics — `fpsa_synthesis::weights` slices the
    /// layer's weight matrix at `[row_offset.., col_offset..]`. Zero for
    /// constructs without a row dimension (reductions, poolings).
    pub row_offset: usize,
    /// Column offset of the tile within its source construct's output
    /// vector: the first output feature (dense layers), output channel
    /// (convolutions) or channel-block start (poolings, element-wise adds)
    /// this tile produces.
    pub col_offset: usize,
    /// Number of core-ops that share this tile (1 for fully connected
    /// layers, `output_h x output_w` for convolutions).
    pub reuse_degree: u64,
    /// Whether ReLU is fused into the core-op.
    pub relu: bool,
    /// Pipeline depth position of the source layer (used for latency
    /// estimates; filled in by the synthesizer from the topological order).
    pub layer_depth: usize,
}

impl CoreOpGroup {
    /// Total core-ops represented by this group.
    pub fn core_op_count(&self) -> u64 {
        self.reuse_degree
    }

    /// Weight storage demand of the tile in weights.
    pub fn weight_count(&self) -> u64 {
        (self.rows * self.cols) as u64
    }

    /// Operations (multiply + add) performed by all core-ops of the group
    /// per network inference.
    pub fn ops(&self) -> u64 {
        2 * self.weight_count() * self.reuse_degree
    }
}

/// One individual core-op, materialized from a group (used by the functional
/// simulator and by tests on small networks).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreOp {
    /// The group this core-op belongs to.
    pub group: GroupId,
    /// Index of the core-op within its group (e.g. the output position).
    pub instance: u64,
}

/// The synthesized graph of core-op groups.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoreOpGraph {
    /// Model name, carried over from the computational graph.
    pub model: String,
    /// Crossbar rows the synthesizer targeted.
    pub crossbar_rows: usize,
    /// Logical crossbar columns the synthesizer targeted.
    pub crossbar_cols: usize,
    groups: Vec<CoreOpGroup>,
    edges: Vec<(GroupId, GroupId)>,
}

impl CoreOpGraph {
    /// Create an empty graph.
    pub fn new(model: impl Into<String>, crossbar_rows: usize, crossbar_cols: usize) -> Self {
        CoreOpGraph {
            model: model.into(),
            crossbar_rows,
            crossbar_cols,
            groups: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a group, assigning its id.
    pub fn add_group(&mut self, mut group: CoreOpGroup) -> GroupId {
        let id = self.groups.len();
        group.id = id;
        self.groups.push(group);
        id
    }

    /// Add a data dependency between two groups.
    pub fn add_edge(&mut self, from: GroupId, to: GroupId) {
        self.edges.push((from, to));
    }

    /// All groups.
    pub fn groups(&self) -> &[CoreOpGroup] {
        &self.groups
    }

    /// All dependency edges.
    pub fn edges(&self) -> &[(GroupId, GroupId)] {
        &self.edges
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the graph has no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Groups that feed `id`.
    pub fn predecessors(&self, id: GroupId) -> Vec<GroupId> {
        self.edges
            .iter()
            .filter(|(_, t)| *t == id)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Groups fed by `id`.
    pub fn successors(&self, id: GroupId) -> Vec<GroupId> {
        self.edges
            .iter()
            .filter(|(f, _)| *f == id)
            .map(|(_, t)| *t)
            .collect()
    }

    /// Total number of individual core-ops.
    pub fn total_core_ops(&self) -> u64 {
        self.groups.iter().map(CoreOpGroup::core_op_count).sum()
    }

    /// Total operations per inference.
    pub fn total_ops(&self) -> u64 {
        self.groups.iter().map(CoreOpGroup::ops).sum()
    }

    /// Total weights stored across all tiles.
    pub fn total_weights(&self) -> u64 {
        self.groups.iter().map(CoreOpGroup::weight_count).sum()
    }

    /// The minimum number of PEs needed to hold every weight tile once.
    pub fn minimum_pe_count(&self) -> usize {
        self.groups.len()
    }

    /// The maximum reuse degree over all groups (the paper's reference group
    /// for the model-level duplication degree).
    pub fn max_reuse_degree(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.reuse_degree)
            .max()
            .unwrap_or(1)
    }

    /// The spatial utilization: the compute-weighted fraction of crossbar
    /// cells actually used by the mapped tiles (Figure 8c's "Spatial
    /// Utilization Bound" relative to peak).
    pub fn spatial_utilization(&self) -> f64 {
        let capacity = (self.crossbar_rows * self.crossbar_cols) as f64;
        if capacity == 0.0 || self.groups.is_empty() {
            return 0.0;
        }
        let used: f64 = self
            .groups
            .iter()
            .map(|g| g.reuse_degree as f64 * (g.rows * g.cols) as f64)
            .sum();
        let allocated: f64 = self
            .groups
            .iter()
            .map(|g| g.reuse_degree as f64 * capacity)
            .sum();
        used / allocated
    }

    /// Fraction of groups (and therefore minimum PEs) devoted to a given
    /// kind of construct — reproduces the paper's observation that pooling
    /// occupies 67% of GoogLeNet's PEs after synthesis.
    pub fn group_share_of(&self, kind: CoreOpKind) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        self.groups.iter().filter(|g| g.kind == kind).count() as f64 / self.groups.len() as f64
    }

    /// The number of pipeline levels (maximum layer depth + 1).
    pub fn pipeline_depth(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.layer_depth + 1)
            .max()
            .unwrap_or(0)
    }

    /// Materialize individual core-ops, up to `limit` instances (returns
    /// `None` if the expansion would exceed the limit). Useful for
    /// functional simulation of small models.
    pub fn expand(&self, limit: u64) -> Option<Vec<CoreOp>> {
        if self.total_core_ops() > limit {
            return None;
        }
        let mut out = Vec::with_capacity(self.total_core_ops() as usize);
        for g in &self.groups {
            for instance in 0..g.reuse_degree {
                out.push(CoreOp {
                    group: g.id,
                    instance,
                });
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(kind: CoreOpKind, rows: usize, cols: usize, reuse: u64, depth: usize) -> CoreOpGroup {
        CoreOpGroup {
            id: 0,
            name: "g".into(),
            source_node: 0,
            kind,
            rows,
            cols,
            row_offset: 0,
            col_offset: 0,
            reuse_degree: reuse,
            relu: true,
            layer_depth: depth,
        }
    }

    fn sample_graph() -> CoreOpGraph {
        let mut g = CoreOpGraph::new("test", 256, 256);
        let a = g.add_group(group(CoreOpKind::Vmm, 256, 256, 100, 0));
        let b = g.add_group(group(CoreOpKind::Vmm, 128, 64, 1, 1));
        let c = g.add_group(group(CoreOpKind::Pooling, 32, 8, 100, 1));
        g.add_edge(a, b);
        g.add_edge(a, c);
        g
    }

    #[test]
    fn ids_are_assigned_sequentially() {
        let g = sample_graph();
        assert_eq!(g.groups()[0].id, 0);
        assert_eq!(g.groups()[2].id, 2);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn adjacency_queries_work() {
        let g = sample_graph();
        assert_eq!(g.successors(0), vec![1, 2]);
        assert_eq!(g.predecessors(2), vec![0]);
        assert!(g.predecessors(0).is_empty());
    }

    #[test]
    fn totals_aggregate_groups() {
        let g = sample_graph();
        assert_eq!(g.total_core_ops(), 100 + 1 + 100);
        assert_eq!(g.minimum_pe_count(), 3);
        assert_eq!(g.max_reuse_degree(), 100);
        assert_eq!(g.total_weights(), (256 * 256 + 128 * 64 + 32 * 8) as u64);
    }

    #[test]
    fn spatial_utilization_is_weighted_by_reuse() {
        let g = sample_graph();
        let cap = 256.0 * 256.0;
        let used = 100.0 * cap + 1.0 * (128.0 * 64.0) + 100.0 * (32.0 * 8.0);
        let alloc = 201.0 * cap;
        assert!((g.spatial_utilization() - used / alloc).abs() < 1e-12);
    }

    #[test]
    fn spatial_utilization_of_full_tiles_is_one() {
        let mut g = CoreOpGraph::new("full", 256, 256);
        g.add_group(group(CoreOpKind::Vmm, 256, 256, 10, 0));
        assert!((g.spatial_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn group_share_counts_kinds() {
        let g = sample_graph();
        assert!((g.group_share_of(CoreOpKind::Pooling) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.group_share_of(CoreOpKind::Reduction), 0.0);
    }

    #[test]
    fn expand_respects_limit() {
        let g = sample_graph();
        assert!(g.expand(10).is_none());
        let ops = g.expand(1000).unwrap();
        assert_eq!(ops.len(), 201);
        assert_eq!(
            ops[0],
            CoreOp {
                group: 0,
                instance: 0
            }
        );
    }

    #[test]
    fn pipeline_depth_is_max_layer_depth_plus_one() {
        let g = sample_graph();
        assert_eq!(g.pipeline_depth(), 2);
        assert_eq!(CoreOpGraph::new("e", 256, 256).pipeline_depth(), 0);
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = CoreOpGraph::new("empty", 256, 256);
        assert!(g.is_empty());
        assert_eq!(g.spatial_utilization(), 0.0);
        assert_eq!(g.total_core_ops(), 0);
        assert_eq!(g.group_share_of(CoreOpKind::Vmm), 0.0);
    }
}
