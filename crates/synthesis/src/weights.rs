//! Numeric weight materialization for core-op tiles.
//!
//! Lowering records *where* every VMM tile sits inside its source layer
//! ([`CoreOpGroup::row_offset`] / [`CoreOpGroup::col_offset`]); this module
//! turns that coordinate into the actual `rows × cols` weight matrix the PE's
//! crossbar is programmed with, sliced out of the layer's
//! [`fpsa_nn::GraphParameters`] tensor.
//!
//! Both dense layers and convolutions store their weights as an
//! `[output][input_dim]` matrix (`input_dim = in_features` for dense,
//! `(in_channels/groups)·k²` for convolutions, flattened channel-major), so
//! one slicing rule covers every VMM tile:
//!
//! ```text
//! tile[r][c] = layer_weights[(col_offset + c) * input_dim + row_offset + r]
//! ```
//!
//! Reduction, pooling and element-wise tiles hold fixed matrices (partial-sum
//! adders, `1/window` averaging stencils, max-approximation MLPs); the
//! execution engine interprets those constructs functionally, so they need no
//! materialized weights here.

use crate::coreop::{CoreOpGroup, CoreOpKind};
use fpsa_nn::Operator;

/// The logical input dimension of a weighted operator's weight matrix
/// (`None` for operators without a VMM weight matrix).
pub fn weight_input_dim(op: &Operator) -> Option<usize> {
    match *op {
        Operator::Linear { in_features, .. } => Some(in_features),
        Operator::Conv2d {
            in_channels,
            kernel,
            groups,
            ..
        } => Some((in_channels / groups) * kernel * kernel),
        _ => None,
    }
}

/// Slice the `rows × cols` crossbar matrix of a VMM tile out of its layer's
/// weight tensor (row-major `tile[r * cols + c]`).
///
/// # Panics
///
/// Panics if the group is not a VMM tile or its span exceeds the tensor —
/// both indicate a mismatch between the core-op graph and the parameters it
/// is being bound against (callers validate with [`tile_fits`]).
pub fn vmm_tile_matrix(group: &CoreOpGroup, layer_weights: &[f32], input_dim: usize) -> Vec<f32> {
    assert_eq!(
        group.kind,
        CoreOpKind::Vmm,
        "only VMM tiles carry layer weights"
    );
    assert!(
        tile_fits(group, layer_weights, input_dim),
        "tile {} [{}+{} x {}+{}] exceeds a {} x {} weight tensor",
        group.name,
        group.row_offset,
        group.rows,
        group.col_offset,
        group.cols,
        input_dim,
        layer_weights.len() / input_dim.max(1),
    );
    let mut tile = Vec::with_capacity(group.rows * group.cols);
    for r in 0..group.rows {
        for c in 0..group.cols {
            tile.push(layer_weights[(group.col_offset + c) * input_dim + group.row_offset + r]);
        }
    }
    tile
}

/// Whether a tile's span lies inside the layer's weight tensor.
pub fn tile_fits(group: &CoreOpGroup, layer_weights: &[f32], input_dim: usize) -> bool {
    if input_dim == 0 || !layer_weights.len().is_multiple_of(input_dim) {
        return false;
    }
    let output_dim = layer_weights.len() / input_dim;
    group.row_offset + group.rows <= input_dim && group.col_offset + group.cols <= output_dim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_dense, DenseSpec, TileConstraints};

    fn lowered_tiles(input_dim: usize, output_dim: usize) -> Vec<CoreOpGroup> {
        lower_dense(
            DenseSpec {
                name: "fc",
                source_node: 0,
                input_dim,
                output_dim,
                reuse: 1,
                relu: false,
                kind: CoreOpKind::Vmm,
            },
            TileConstraints::fpsa_256(),
        )
        .groups
    }

    /// A synthetic weight tensor whose value encodes its own coordinates.
    fn coordinate_weights(input_dim: usize, output_dim: usize) -> Vec<f32> {
        (0..output_dim)
            .flat_map(|o| (0..input_dim).map(move |i| (o * input_dim + i) as f32))
            .collect()
    }

    #[test]
    fn tiles_reassemble_the_full_weight_matrix() {
        let (input_dim, output_dim) = (600, 300);
        let w = coordinate_weights(input_dim, output_dim);
        let tiles = lowered_tiles(input_dim, output_dim);
        let mut seen = vec![false; w.len()];
        for g in tiles.iter().filter(|g| g.kind == CoreOpKind::Vmm) {
            let tile = vmm_tile_matrix(g, &w, input_dim);
            for r in 0..g.rows {
                for c in 0..g.cols {
                    let o = g.col_offset + c;
                    let i = g.row_offset + r;
                    assert_eq!(tile[r * g.cols + c], w[o * input_dim + i]);
                    assert!(!seen[o * input_dim + i], "weight ({o},{i}) covered twice");
                    seen[o * input_dim + i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every weight covered exactly once");
    }

    #[test]
    fn single_tile_layer_is_the_transposed_tensor() {
        let w = coordinate_weights(4, 3);
        let tiles = lowered_tiles(4, 3);
        assert_eq!(tiles.len(), 1);
        let tile = vmm_tile_matrix(&tiles[0], &w, 4);
        // tile[r * cols + c] = w[c * 4 + r]
        assert_eq!(tile[1], w[4]);
        assert_eq!(tile[2 * 3 + 2], w[2 * 4 + 2]);
    }

    #[test]
    fn conv_input_dim_folds_kernel_and_channels() {
        let conv = Operator::Conv2d {
            in_channels: 8,
            out_channels: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        assert_eq!(weight_input_dim(&conv), Some(72));
        assert_eq!(
            weight_input_dim(&Operator::Linear {
                in_features: 10,
                out_features: 2
            }),
            Some(10)
        );
        assert_eq!(weight_input_dim(&Operator::Relu), None);
    }

    #[test]
    fn tile_fits_rejects_out_of_range_spans() {
        let w = coordinate_weights(10, 4);
        let mut g = lowered_tiles(10, 4).remove(0);
        assert!(tile_fits(&g, &w, 10));
        g.row_offset = 5;
        assert!(!tile_fits(&g, &w, 10));
    }

    #[test]
    #[should_panic(expected = "only VMM tiles carry layer weights")]
    fn non_vmm_tiles_are_rejected() {
        let mut g = lowered_tiles(4, 3).remove(0);
        g.kind = CoreOpKind::Pooling;
        let w = coordinate_weights(4, 3);
        let _ = vmm_tile_matrix(&g, &w, 4);
    }
}
