//! The neural synthesizer driver.
//!
//! Walks a computational graph in topological order, lowers every node with
//! the rules in [`crate::lower`], fuses ReLU into producing tiles, assigns
//! pipeline depths, and wires group-level data dependencies.

use crate::coreop::{CoreOpGraph, GroupId};
use crate::lower::{lower_node, TileConstraints};
use fpsa_nn::{ComputationalGraph, NnError, Operator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the synthesis pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthesisConfig {
    /// Crossbar rows available per PE.
    pub crossbar_rows: usize,
    /// Logical crossbar columns available per PE.
    pub crossbar_cols: usize,
}

impl SynthesisConfig {
    /// The paper's configuration: a 256×256 logical crossbar.
    pub fn fpsa_default() -> Self {
        SynthesisConfig {
            crossbar_rows: 256,
            crossbar_cols: 256,
        }
    }
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self::fpsa_default()
    }
}

/// The neural synthesizer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NeuralSynthesizer {
    config: SynthesisConfig,
}

impl NeuralSynthesizer {
    /// Create a synthesizer with the given configuration.
    pub fn new(config: SynthesisConfig) -> Self {
        NeuralSynthesizer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> SynthesisConfig {
        self.config
    }

    /// Synthesize a computational graph into a core-op graph.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference and graph-structure errors from the source
    /// graph.
    pub fn synthesize(&self, graph: &ComputationalGraph) -> Result<CoreOpGraph, NnError> {
        let shapes = graph.infer_shapes()?;
        let order = graph.topological_order()?;
        let constraints = TileConstraints {
            rows: self.config.crossbar_rows,
            cols: self.config.crossbar_cols,
        };

        let mut out = CoreOpGraph::new(
            graph.name.clone(),
            self.config.crossbar_rows,
            self.config.crossbar_cols,
        );
        // For every source node: the groups that carry its output (for
        // pass-through nodes, the propagated producer groups), and its
        // pipeline depth.
        let mut node_outputs: HashMap<usize, Vec<GroupId>> = HashMap::new();
        let mut node_depth: HashMap<usize, usize> = HashMap::new();

        for id in order {
            let node = graph.node(id)?;
            let input_shapes: Vec<_> = node.inputs.iter().map(|i| shapes[i]).collect();
            let output_shape = shapes[&id];
            let fuse_relu = graph
                .consumers(id)
                .iter()
                .any(|&c| matches!(graph.node(c).map(|n| &n.op), Ok(Operator::Relu)));
            let input_depth = node
                .inputs
                .iter()
                .map(|i| node_depth.get(i).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);

            let mut lowered = lower_node(
                id,
                &node.name,
                &node.op,
                &input_shapes,
                output_shape,
                fuse_relu,
                constraints,
            );

            if lowered.is_empty() {
                // Pass-through: propagate the producers' groups and depth.
                let mut propagated = Vec::new();
                for input in &node.inputs {
                    propagated.extend(node_outputs.get(input).cloned().unwrap_or_default());
                }
                node_outputs.insert(id, propagated);
                node_depth.insert(id, input_depth);
                continue;
            }

            let depth = input_depth + 1;
            for g in &mut lowered.groups {
                g.layer_depth = depth - 1;
            }

            // Insert the groups, remembering local-index -> graph-id mapping.
            let input_range = lowered.input_range();
            let output_range = lowered.outputs.clone();
            let mut new_ids = Vec::with_capacity(lowered.groups.len());
            for g in lowered.groups {
                new_ids.push(out.add_group(g));
            }

            // Dependencies: every producer group of every input feeds every
            // input-stage group of this node; within the node, the lowering
            // rule already told us exactly which tiles feed which reduction
            // or second pooling stage.
            let first_stage: Vec<GroupId> = new_ids[input_range].to_vec();
            for input in &node.inputs {
                for &producer in node_outputs.get(input).into_iter().flatten() {
                    for &consumer in &first_stage {
                        out.add_edge(producer, consumer);
                    }
                }
            }
            for &(from, to) in &lowered.intra_edges {
                out.add_edge(new_ids[from], new_ids[to]);
            }

            node_outputs.insert(id, new_ids[output_range].to_vec());
            node_depth.insert(id, depth);
        }

        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coreop::CoreOpKind;
    use fpsa_nn::zoo;

    fn synth(graph: &ComputationalGraph) -> CoreOpGraph {
        NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(graph)
            .expect("synthesis succeeds on zoo models")
    }

    #[test]
    fn mlp_synthesis_preserves_operation_count() {
        let g = zoo::mlp_500_100();
        let stats = g.statistics();
        let core = synth(&g);
        // VMM tiles account for at least the original MACs; reductions add a
        // small overhead on top.
        let vmm_ops: u64 = core
            .groups()
            .iter()
            .filter(|gr| gr.kind == CoreOpKind::Vmm)
            .map(|gr| gr.ops())
            .sum();
        assert_eq!(vmm_ops, stats.total_ops);
        assert!(core.total_ops() >= stats.total_ops);
    }

    #[test]
    fn mlp_synthesis_reuse_degree_is_one() {
        let core = synth(&zoo::mlp_500_100());
        assert_eq!(core.max_reuse_degree(), 1);
    }

    #[test]
    fn lenet_synthesis_has_convolution_reuse() {
        let core = synth(&zoo::lenet());
        // conv1 runs over 24x24 output positions.
        assert_eq!(core.max_reuse_degree(), 576);
        assert!(core.total_core_ops() > core.len() as u64);
    }

    #[test]
    fn relu_is_fused_into_producing_tiles() {
        let core = synth(&zoo::mlp_500_100());
        // fc1 and fc2 are followed by ReLU, fc3 is not.
        let fused = core.groups().iter().filter(|g| g.relu).count();
        assert!(fused >= 2);
        assert!(core
            .groups()
            .iter()
            .filter(|g| g.name.starts_with("fc3"))
            .all(|g| !g.relu));
    }

    #[test]
    fn pipeline_depth_tracks_layer_count() {
        let core = synth(&zoo::mlp_500_100());
        // Three weight layers; reductions share their layer's depth.
        assert_eq!(core.pipeline_depth(), 3);
    }

    #[test]
    fn every_tile_fits_the_crossbar() {
        for graph in [zoo::lenet(), zoo::cifar_vgg17(), zoo::alexnet()] {
            let core = synth(&graph);
            assert!(core
                .groups()
                .iter()
                .all(|g| g.rows <= 256 && g.cols <= 256 && g.rows > 0 && g.cols > 0));
        }
    }

    #[test]
    fn edges_connect_consecutive_layers() {
        let core = synth(&zoo::mlp_500_100());
        // Every non-input group must have at least one predecessor.
        let depth0: Vec<_> = core
            .groups()
            .iter()
            .filter(|g| g.layer_depth > 0)
            .map(|g| g.id)
            .collect();
        for id in depth0 {
            assert!(
                !core.predecessors(id).is_empty(),
                "group {id} has no predecessors"
            );
        }
    }

    #[test]
    fn googlenet_pooling_dominates_pe_count() {
        let core = synth(&zoo::googlenet());
        let share = core.group_share_of(CoreOpKind::Pooling);
        // §7.3: after synthesis, pooling occupies ~67% of GoogLeNet's PEs.
        assert!(
            share > 0.55 && share < 0.80,
            "pooling share {share} out of expected band"
        );
    }

    #[test]
    fn vgg16_synthesis_is_compact_yet_complete() {
        let g = zoo::vgg16();
        let stats = g.statistics();
        let core = synth(&g);
        // Group count stays in the thousands even though there are millions
        // of core-ops.
        assert!(core.len() < 20_000, "groups = {}", core.len());
        // Hundreds of thousands of individual core-ops collapse into a few
        // thousand weight-sharing groups.
        assert!(core.total_core_ops() > 400_000);
        assert!(core.total_core_ops() > 50 * core.len() as u64);
        // The synthesized weight storage is at least the model's weights.
        assert!(core.total_weights() >= stats.total_weights / 2);
        // Spatial utilization is below 1 because tiles do not fill crossbars.
        let u = core.spatial_utilization();
        assert!(u > 0.3 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn resnet_synthesis_handles_residual_blocks() {
        let core = synth(&zoo::resnet152());
        assert!(core.group_share_of(CoreOpKind::Eltwise) > 0.0);
        assert!(core.pipeline_depth() > 100);
    }

    #[test]
    fn synthesizer_is_deterministic() {
        let g = zoo::lenet();
        let a = synth(&g);
        let b = synth(&g);
        assert_eq!(a, b);
    }
}
